"""Quadratic extension field F_p² = F_p[i] / (i² + 1).

Requires ``p ≡ 3 (mod 4)`` so that ``-1`` is a non-residue and the
polynomial ``i² + 1`` is irreducible. Elements are pairs ``(a, b)``
representing ``a + b·i``, stored as plain integer tuples for speed —
the Miller loop of the Tate pairing does all its extension-field work
through this module.

This is exactly the target-field structure of PBC's type-A curves
(embedding degree 2), which the paper's evaluation uses.
"""

from __future__ import annotations

import random

from repro.errors import MathError
from repro.math.field import PrimeField

Fp2Element = tuple  # (a, b) meaning a + b*i, with 0 <= a, b < p


class QuadraticExtension:
    """The field F_p² with i² = -1, as a context object over tuples."""

    __slots__ = ("base", "p", "one", "zero")

    def __init__(self, base: PrimeField):
        if base.p % 4 != 3:
            raise MathError("F_p[i] needs p ≡ 3 (mod 4) for i²+1 to be irreducible")
        self.base = base
        self.p = base.p
        self.one = (1, 0)
        self.zero = (0, 0)

    # -- arithmetic -----------------------------------------------------------

    def add(self, x: Fp2Element, y: Fp2Element) -> Fp2Element:
        p = self.p
        return ((x[0] + y[0]) % p, (x[1] + y[1]) % p)

    def sub(self, x: Fp2Element, y: Fp2Element) -> Fp2Element:
        p = self.p
        return ((x[0] - y[0]) % p, (x[1] - y[1]) % p)

    def neg(self, x: Fp2Element) -> Fp2Element:
        p = self.p
        return (-x[0] % p, -x[1] % p)

    def mul(self, x: Fp2Element, y: Fp2Element) -> Fp2Element:
        # Karatsuba-style: 3 base multiplications instead of 4.
        a, b = x
        c, d = y
        p = self.p
        ac = a * c
        bd = b * d
        cross = (a + b) * (c + d) - ac - bd
        return ((ac - bd) % p, cross % p)

    def square(self, x: Fp2Element) -> Fp2Element:
        # (a+bi)² = (a+b)(a-b) + 2ab·i — 2 base multiplications.
        a, b = x
        p = self.p
        return ((a + b) * (a - b) % p, 2 * a * b % p)

    def square_mul(self, x: Fp2Element, y: Fp2Element) -> Fp2Element:
        """Fused ``x² · y`` — the Miller doubling step's shape.

        One call, no intermediate tuple: the square's two components
        feed the Karatsuba multiply as locals. Bit-identical to
        ``mul(square(x), y)``; exists because per-step call overhead
        dominates F_p cost at 80-bit parameters.
        """
        a, b = x
        c, d = y
        p = self.p
        sa = (a + b) * (a - b) % p
        sb = 2 * a * b % p
        ac = sa * c
        bd = sb * d
        cross = (sa + sb) * (c + d) - ac - bd
        return ((ac - bd) % p, cross % p)

    def mul_scalar(self, x: Fp2Element, k: int) -> Fp2Element:
        p = self.p
        return (x[0] * k % p, x[1] * k % p)

    # -- Montgomery-domain variants ------------------------------------------
    # Components are Montgomery residues (a·R mod p); the Karatsuba
    # structure is unchanged because REDC(x̂·ŷ) keeps products in-domain
    # and addition/negation are linear in the a ↦ a·R map. Lazy
    # reduction: the (a+b)(c+d) cross term multiplies operands < 2p,
    # which the context's R > 4p headroom admits (see
    # :mod:`repro.math.montgomery`).

    def mul_mont(self, x: Fp2Element, y: Fp2Element, mont) -> Fp2Element:
        a, b = x
        c, d = y
        p = self.p
        redc = mont.redc
        ac = redc(a * c)
        bd = redc(b * d)
        cross = redc((a + b) * (c + d)) - ac - bd
        return ((ac - bd) % p, cross % p)

    def square_mont(self, x: Fp2Element, mont) -> Fp2Element:
        # (a - b + p) keeps the REDC input non-negative with operands
        # still < 2p — inside the context's lazy-reduction headroom.
        a, b = x
        p = self.p
        redc = mont.redc
        return (redc((a + b) * (a - b + p)), redc(2 * a * b))

    def square_mul_mont(self, x: Fp2Element, y: Fp2Element, mont) -> Fp2Element:
        """Montgomery-domain fused ``x² · y`` (Miller doubling step)."""
        a, b = x
        c, d = y
        p = self.p
        redc = mont.redc
        sa = redc((a + b) * (a - b + p))
        sb = redc(2 * a * b)
        ac = redc(sa * c)
        bd = redc(sb * d)
        cross = redc((sa + sb) * (c + d)) - ac - bd
        return ((ac - bd) % p, cross % p)

    def to_mont(self, x: Fp2Element, mont) -> Fp2Element:
        return (mont.to_mont(x[0]), mont.to_mont(x[1]))

    def from_mont(self, x: Fp2Element, mont) -> Fp2Element:
        return (mont.redc(x[0]), mont.redc(x[1]))

    def conjugate(self, x: Fp2Element) -> Fp2Element:
        return (x[0], -x[1] % self.p)

    def norm(self, x: Fp2Element) -> int:
        """The field norm N(a+bi) = a² + b² ∈ F_p."""
        return (x[0] * x[0] + x[1] * x[1]) % self.p

    def inv(self, x: Fp2Element) -> Fp2Element:
        n = self.norm(x)
        if n == 0:
            raise MathError("0 is not invertible in F_p²")
        ninv = self.base.inv(n)
        p = self.p
        return (x[0] * ninv % p, -x[1] * ninv % p)

    def div(self, x: Fp2Element, y: Fp2Element) -> Fp2Element:
        return self.mul(x, self.inv(y))

    def pow(self, x: Fp2Element, e: int) -> Fp2Element:
        if e < 0:
            return self.pow(self.inv(x), -e)
        if e.bit_length() <= 32:
            # Small exponents: plain square-and-multiply, no precomputation.
            result = self.one
            square = self.square
            mul = self.mul
            base = x
            while e:
                if e & 1:
                    result = mul(result, base)
                base = square(base)
                e >>= 1
            return result
        return self._pow_sliding_window(x, e)

    def _pow_sliding_window(self, x: Fp2Element, e: int) -> Fp2Element:
        """4-bit sliding-window exponentiation: ~bits/5 multiplications
        instead of ~bits/2, on top of the unavoidable bits squarings."""
        square = self.square
        mul = self.mul
        # odd powers x, x³, x⁵, ..., x¹⁵
        x2 = square(x)
        odd_powers = [x]
        for _ in range(7):
            odd_powers.append(mul(odd_powers[-1], x2))
        result = self.one
        bit_index = e.bit_length() - 1
        while bit_index >= 0:
            if not (e >> bit_index) & 1:
                result = square(result)
                bit_index -= 1
                continue
            # Take the longest window ending in a set bit, at most 4 wide.
            low = max(0, bit_index - 3)
            while not (e >> low) & 1:
                low += 1
            window = (e >> low) & ((1 << (bit_index - low + 1)) - 1)
            for _ in range(bit_index - low + 1):
                result = square(result)
            result = mul(result, odd_powers[window >> 1])
            bit_index = low - 1
        return result

    def frobenius(self, x: Fp2Element) -> Fp2Element:
        """x ↦ x^p. Since p ≡ 3 (mod 4), i^p = -i, so this is conjugation."""
        return self.conjugate(x)

    # -- predicates, sampling, encoding ----------------------------------------

    def is_zero(self, x: Fp2Element) -> bool:
        return x[0] == 0 and x[1] == 0

    def is_one(self, x: Fp2Element) -> bool:
        return x[0] == 1 and x[1] == 0

    def embed(self, a: int) -> Fp2Element:
        """Embed a base-field element into F_p²."""
        return (a % self.p, 0)

    def random(self, rng: random.Random) -> Fp2Element:
        return (rng.randrange(self.p), rng.randrange(self.p))

    def to_bytes(self, x: Fp2Element) -> bytes:
        return self.base.to_bytes(x[0]) + self.base.to_bytes(x[1])

    def from_bytes(self, data: bytes) -> Fp2Element:
        half = self.base.byte_length
        if len(data) != 2 * half:
            raise MathError("wrong encoding length for an F_p² element")
        return (self.base.from_bytes(data[:half]), self.base.from_bytes(data[half:]))

    def __eq__(self, other) -> bool:
        return isinstance(other, QuadraticExtension) and self.p == other.p

    def __hash__(self) -> int:
        return hash(("QuadraticExtension", self.p))

    def __repr__(self) -> str:
        return f"QuadraticExtension(p~2^{self.p.bit_length()})"

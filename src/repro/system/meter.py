"""Role-pair byte metering, shared by the simulation and the service.

The paper's communication-cost analysis (Table IV) counts the bytes that
travel between role pairs — AA↔User, AA↔Owner, Server↔User,
Server↔Owner. :class:`Meter` is the accounting object both deployment
modes share: the in-process simulation's :class:`repro.system.network.
Network` records every ``send`` through it, and the asyncio service
(:mod:`repro.service`) records every payload-bearing frame through an
identical instance — so the same workload produces the same counters
whether it runs in-process or over a real socket.

Payloads are measured with :mod:`repro.system.sizes`, i.e. in the
group-element byte units of Tables II–IV, not in raw frame bytes (frame
headers are transport bookkeeping both deployments share equally; the
service tracks raw frame bytes separately as ``wire_bytes``).
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass

from repro.pairing.group import PairingGroup
from repro.system.sizes import measure

# Canonical role names used by the Table IV aggregation.
ROLE_CA = "ca"
ROLE_AA = "aa"
ROLE_OWNER = "owner"
ROLE_USER = "user"
ROLE_SERVER = "server"


@dataclass(frozen=True)
class MessageLogEntry:
    """One recorded transfer."""

    sender: str
    sender_role: str
    recipient: str
    recipient_role: str
    kind: str
    size_bytes: int


@dataclass
class ChannelStats:
    """Aggregate traffic between one (unordered) pair of roles."""

    messages: int = 0
    bytes: int = 0

    def add(self, size: int) -> None:
        self.messages += 1
        self.bytes += size


def role_pair(role_a: str, role_b: str) -> tuple:
    """Unordered, canonical key for a role pair (AA↔User == User↔AA)."""
    return tuple(sorted((role_a, role_b)))


class Meter:
    """Append-only transfer log plus per-role-pair aggregates.

    Thread-safe: the service records transfers from the event loop, its
    offload thread, and benchmark harnesses concurrently, so every
    counter update (and every snapshot read) happens under one lock —
    ``log.append`` alone is atomic in CPython, but the log/channel/
    wire-byte triple must move together or aggregates drift from the
    log under contention.
    """

    def __init__(self, group: PairingGroup):
        self.group = group
        self.log = []
        self.channels = defaultdict(ChannelStats)
        self.wire_bytes = 0  # raw frame bytes (service deployments only)
        self.counters = defaultdict(int)  # named event tallies (bump)
        self._lock = threading.Lock()

    def bump(self, name: str, n: int = 1) -> None:
        """Count one named event (cache hits, pool refills, …).

        The byte channels above model the paper's Table IV; these
        free-form counters carry implementation telemetry — e.g. the
        policy layer's ``lsss-cache-hit``/``lsss-cache-miss`` — through
        the same thread-safe object the stats endpoints already expose.
        """
        with self._lock:
            self.counters[name] += n

    def counter(self, name: str) -> int:
        with self._lock:
            # .get, not [] — reading must not materialize a zero entry
            # in the defaultdict (keeps counter_summary() clean).
            return self.counters.get(name, 0)

    def counter_summary(self, prefix: str = None) -> dict:
        """Every named counter — or, with ``prefix``, just the ones
        under it (the cluster client names its per-node shard and
        replication counters ``cluster.<event>.<node>``, so
        ``counter_summary("cluster.")`` is the fleet's shard/replication
        story in one call)."""
        with self._lock:
            if prefix is None:
                return dict(self.counters)
            return {name: count for name, count in self.counters.items()
                    if name.startswith(prefix)}

    def record(self, sender: str, sender_role: str, recipient: str,
               recipient_role: str, kind: str, payload) -> int:
        """Measure one payload transfer and fold it into the counters.

        Returns the measured size so callers can reuse it.
        """
        return self.record_sized(sender, sender_role, recipient,
                                 recipient_role, kind,
                                 measure(payload, self.group))

    def record_sized(self, sender: str, sender_role: str, recipient: str,
                     recipient_role: str, kind: str, size: int) -> int:
        """Fold an already-measured transfer into the counters.

        For callers that know a payload's Table II size without holding
        the decoded object (the sweep meters update information from
        encoding headers; its elements only ever decode inside workers).
        """
        entry = MessageLogEntry(
            sender=sender,
            sender_role=sender_role,
            recipient=recipient,
            recipient_role=recipient_role,
            kind=kind,
            size_bytes=size,
        )
        with self._lock:
            self.log.append(entry)
            self.channels[role_pair(sender_role, recipient_role)].add(size)
        return size

    def record_wire(self, n_bytes: int) -> None:
        """Count raw transport bytes (frame headers included)."""
        with self._lock:
            self.wire_bytes += n_bytes

    # -- reporting -------------------------------------------------------------

    def bytes_between(self, role_a: str, role_b: str) -> int:
        with self._lock:
            return self.channels[role_pair(role_a, role_b)].bytes

    def messages_between(self, role_a: str, role_b: str) -> int:
        with self._lock:
            return self.channels[role_pair(role_a, role_b)].messages

    def bytes_by_kind(self) -> dict:
        totals = defaultdict(int)
        with self._lock:
            for entry in self.log:
                totals[entry.kind] += entry.size_bytes
        return dict(totals)

    def total_bytes(self) -> int:
        with self._lock:
            return sum(entry.size_bytes for entry in self.log)

    def channel_summary(self) -> dict:
        """JSON-friendly dump: ``"a<->b" -> {"messages": n, "bytes": n}``."""
        with self._lock:
            return {
                "<->".join(pair): {"messages": stats.messages,
                                   "bytes": stats.bytes}
                for pair, stats in sorted(self.channels.items())
            }

    def reset(self) -> None:
        """Clear counters (e.g. after setup, before the measured phase)."""
        with self._lock:
            self.log.clear()
            self.channels.clear()
            self.wire_bytes = 0
            self.counters.clear()


class LatencyRecorder:
    """A thread-safe sample sink with exact percentile readout.

    The adversarial harness uses one per traffic class (honest pings
    vs. spam uploads) to render graceful-degradation invariants —
    "honest p99 stays under the bound while the flood runs" — as
    machine-checkable numbers. Exact nearest-rank percentiles over the
    full sample set: scenario sample counts are small (hundreds), so
    there is no need for the usual streaming sketches.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._samples = []
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(float(seconds))

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (``q`` in [0, 100]) of the samples."""
        with self._lock:
            if not self._samples:
                raise ValueError(f"no samples recorded ({self.name!r})")
            ordered = sorted(self._samples)
        rank = max(1, -(-len(ordered) * q // 100))  # ceil without math
        return ordered[min(len(ordered), int(rank)) - 1]

    def summary(self) -> dict:
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return {"name": self.name, "count": 0}
        return {
            "name": self.name,
            "count": len(samples),
            "min": samples[0],
            "max": samples[-1],
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

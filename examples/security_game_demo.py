#!/usr/bin/env python3
"""The paper's security game (Section III-B), played out loud.

Walks through one run of the static-corruption IND game: the adversary
corrupts an authority, makes adaptive key queries, receives a challenge
ciphertext, and is stopped cold every time it tries to cross the
``span(V ∪ V_UID) ∌ (1,0,…,0)`` line. Ends with an empirical-advantage
measurement for a guessing adversary.

Run:  python examples/security_game_demo.py
"""

from repro.core.security_game import (
    GameError,
    SecurityGame,
    empirical_advantage,
)
from repro.ec import TOY80

LAYOUT = {"hospital": ["doctor", "nurse"], "trial": ["researcher"]}
POLICY = "hospital:doctor AND trial:researcher"


def main():
    print("=== Setup: adversary statically corrupts 'trial' ===")
    game = SecurityGame.setup(TOY80, LAYOUT, corrupted={"trial"}, seed=2012)
    view = game.corrupted_view()
    print(f"  adversary holds trial's version key "
          f"(alpha = {str(view['trial'].version_key.alpha)[:16]}...) and the "
          f"owner's SK_o")

    print("\n=== Phase 1: adaptive key queries ===")
    key = game.secret_key_query("adv", "hospital", ["nurse"])
    print(f"  query (adv, hospital, nurse)      -> issued "
          f"{sorted(key.attributes)}")

    print("\n=== Challenge ===")
    m0, m1 = game.group.random_gt(), game.group.random_gt()
    try:
        game.challenge(m0, m1, "trial:researcher")
    except GameError as exc:
        print(f"  challenge 'trial:researcher'      -> rejected: {exc}")
    ciphertext = game.challenge(m0, m1, POLICY)
    print(f"  challenge {POLICY!r} accepted; "
          f"CT has {ciphertext.n_rows} rows")

    print("\n=== Phase 2: the adversary pushes its luck ===")
    try:
        game.secret_key_query("adv", "hospital", ["doctor"])
    except GameError as exc:
        print(f"  query (adv, hospital, doctor)     -> rejected: {exc}")
    try:
        game.secret_key_query("other", "hospital", ["doctor"])
    except GameError as exc:
        print(f"  query (other, hospital, doctor)   -> rejected too: "
              f"corrupted-authority rows count for EVERY UID ({exc})")
    other = game.secret_key_query("other", "hospital", ["nurse"])
    print(f"  query (other, hospital, nurse)    -> issued "
          f"{sorted(other.attributes)} (cannot complete the challenge)")

    print("\n=== Guess ===")
    won = game.guess(0)
    print(f"  adversary guesses b' = 0          -> "
          f"{'correct (lucky coin)' if won else 'wrong'}")

    print("\n=== Empirical advantage of a guessing adversary ===")

    def guesser(run, trial):
        run.challenge(
            run.group.random_gt(), run.group.random_gt(), POLICY
        )
        return trial % 2

    advantage = empirical_advantage(
        TOY80, guesser, trials=40,
        authority_layout=LAYOUT, corrupted=frozenset(),
    )
    print(f"  |Pr[win] - 1/2| over 40 trials = {advantage:.3f} "
          f"(should be near 0)")


if __name__ == "__main__":
    main()

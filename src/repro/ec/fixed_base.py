"""Fixed-base windowed scalar multiplication.

Exponentiations of the *generator* dominate KeyGen and Encrypt (every
``g^x`` in the scheme). For a fixed base, precomputing the table
``T[i][j] = (j · W^i) · P`` for a window width ``w`` (``W = 2^w``)
reduces a scalar multiplication to at most ``ceil(bits/w)`` point
additions and no doublings — a 4-6× speedup over double-and-add in this
pure-Python setting.

The table costs ``(W - 1) · ceil(bits/w)`` precomputed points; for a
160-bit order and w = 4 that is 600 points (~75 KB at 512-bit p), built
once per base. Construction walks the whole table in Jacobian
coordinates and converts every entry to affine with ONE Montgomery batch
inversion; ``multiply`` accumulates the affine entries into a Jacobian
accumulator (inversion-free mixed additions) and pays a single inversion
at the end.
"""

from __future__ import annotations

from repro.ec.curve import (
    INFINITY,
    _JAC_INFINITY,
    SupersingularCurve,
    _jac_add,
    _jac_add_affine,
    _jac_double,
)
from repro.math.integers import batch_invmod, invmod


class FixedBaseTable:
    """Precomputed multiples of one point for windowed multiplication."""

    __slots__ = ("curve", "point", "window", "levels")

    def __init__(self, curve: SupersingularCurve, point, order: int,
                 window: int = 4):
        if not 1 <= window <= 8:
            raise ValueError("window width must be in [1, 8]")
        self.curve = curve
        self.point = point
        self.window = window
        width = 1 << window
        n_levels = (order.bit_length() + window - 1) // window
        p = curve.p
        # Walk every entry in Jacobian coordinates: row[j] = j·(W^i·P),
        # chained by additions; the next level's base W^(i+1)·P is one
        # more addition past the last row entry. One batch inversion at
        # the end converts the whole table to affine.
        flat = []
        base = (point[0], point[1], 1) if point is not INFINITY else _JAC_INFINITY
        for _ in range(n_levels):
            accumulator = base
            flat.append(accumulator)
            for _ in range(width - 2):
                accumulator = _jac_add(accumulator, base, p)
                flat.append(accumulator)
            base = _jac_add(accumulator, base, p)  # W · (level base)
        affine = curve.batch_normalize(flat)
        self.levels = []
        for level in range(n_levels):
            row = [INFINITY]
            row.extend(affine[level * (width - 1):(level + 1) * (width - 1)])
            self.levels.append(row)

    @classmethod
    def doubled_window(cls, table: "FixedBaseTable") -> "FixedBaseTable":
        """A window-``2w`` table composed from a window-``w`` table.

        Entry ``(d_lo + W·d_hi) · (W²)^k · P`` is ONE affine addition
        ``levels[2k][d_lo] + levels[2k+1][d_hi]`` of existing entries.
        Every such pair is an independent chord — the two operands are
        distinct nonzero multiples ``d_lo`` and ``W·d_hi`` (≤ ``W² - 1``
        apart, far below the group order) of the same order-``r``
        point, so neither equality nor negation can occur — which lets
        the ENTIRE build share a single modular inversion: ~4 field
        multiplications per entry, against ~11 for a from-scratch
        Jacobian build. Halving the digit count per walk only pays off
        for a heavily reused base (each walk saves ~``bits/(2w)``
        additions), so encryption sessions build this for the
        *generator* and amortize it across their offline refills, while
        one-shot bases keep the plain window table.

        Requires ``2w ≤ 8`` (the class invariant) and a base of prime
        order greater than ``W²`` — true for every group this library
        instantiates.
        """
        if 2 * table.window > 8:
            raise ValueError("doubled window would exceed the [1, 8] range")
        curve = table.curve
        p = curve.p
        width = 1 << table.window
        old = table.levels
        n_old = len(old)
        if table.point is INFINITY:
            doubled = cls.__new__(cls)
            doubled.curve = curve
            doubled.point = INFINITY
            doubled.window = 2 * table.window
            doubled.levels = [[INFINITY] * (width * width)
                              for _ in range((n_old + 1) // 2)]
            return doubled
        new_levels = []
        pend = []       # (row, index, ax, ay, ex, ey, denom)
        prefixes = []
        acc = 1
        for k in range(0, n_old, 2):
            lo = old[k]
            if k + 1 == n_old:
                # Odd level count: the top window-2w digit never
                # exceeds W - 1 (scalars are reduced below the order),
                # so the spill entries above it are never indexed.
                new_levels.append(
                    list(lo) + [INFINITY] * (width * width - width))
                continue
            hi = old[k + 1]
            row = [INFINITY] * (width * width)
            row[:width] = lo                    # d_hi == 0 (and row[0])
            for d_hi in range(1, width):
                base_index = width * d_hi
                entry = hi[d_hi]
                row[base_index] = entry         # d_lo == 0
                ax, ay = entry
                for d_lo in range(1, width):
                    ex, ey = lo[d_lo]
                    prefixes.append(acc)
                    denom = ex - ax
                    acc = acc * denom % p
                    pend.append((row, base_index + d_lo,
                                 ax, ay, ex, ey, denom))
            new_levels.append(row)
        if pend:
            acc_inv = invmod(acc, p)
            for (row, index, ax, ay, ex, ey, denom), prefix in zip(
                    reversed(pend), reversed(prefixes)):
                inv = prefix * acc_inv % p
                acc_inv = acc_inv * denom % p
                slope = (ey - ay) * inv % p
                nx = (slope * slope - ax - ex) % p
                row[index] = (nx, (slope * (ax - nx) - ay) % p)
        doubled = cls.__new__(cls)
        doubled.curve = curve
        doubled.point = table.point
        doubled.window = 2 * table.window
        doubled.levels = new_levels
        return doubled

    def multiply(self, scalar: int):
        """``scalar · P`` using the precomputed table."""
        return self.curve.to_affine(self.multiply_jacobian(scalar))

    def multiply_jacobian(self, scalar: int):
        """:meth:`multiply` without the final affine conversion.

        Lets callers (the multi-exponentiation fast path) combine several
        table-based partial results with a single shared inversion.
        """
        if scalar < 0:
            x, y, z = self.multiply_jacobian(-scalar)
            return (x, -y % self.curve.p, z)
        p = self.curve.p
        mask = (1 << self.window) - 1
        result = _JAC_INFINITY
        level = 0
        while scalar and level < len(self.levels):
            digit = scalar & mask
            if digit:
                result = _jac_add_affine(result, self.levels[level][digit], p)
            scalar >>= self.window
            level += 1
        if scalar:
            # Scalar exceeded the table (not reduced mod order): fall back
            # for the remaining high part.
            high = self.curve.mul(self.point, scalar << (self.window * level))
            result = _jac_add_affine(result, high, p)
        return result


def affine_doubling_chain(curve: SupersingularCurve, point,
                          length: int) -> list:
    """``[P, 2P, 4P, …]`` (``length`` entries) in affine, one inversion.

    The shared precomputation every :class:`BatchExponentiator` program
    walks. It depends only on the *point*, so callers serving several
    exponentiators with one base (joint multi-authority KeyGen) build
    it once at the longest required length and pass it to each
    :meth:`BatchExponentiator.powers_jacobian`.
    """
    if point is INFINITY or length <= 0:
        return [INFINITY] * max(length, 0)
    p = curve.p
    chain_jac = []
    current = (point[0], point[1], 1)
    for _ in range(length):
        chain_jac.append(current)
        current = _jac_double(current, p)
    return curve.batch_normalize(chain_jac)


def affine_doubling_chains(curve: SupersingularCurve, points,
                           length: int) -> list:
    """Doubling chains for *many* points, entirely in affine coordinates.

    The sequential dependency inside one chain (each level doubles the
    previous) rules out batching an inversion *within* it — that is why
    :func:`affine_doubling_chain` goes through Jacobian space and pays a
    final ``length``-entry normalization. Across *independent* points
    the levels line up, so each level doubles every live chain with ONE
    Montgomery batch inversion: an affine double costs 2M + 2S plus the
    amortized ~3M inversion share, beating the Jacobian build + final
    normalize whenever two or more chains are needed (the bulk
    onboarding loop in :func:`repro.fastpath.keygen.issue_joint`).
    """
    points = list(points)
    if length <= 0:
        return [[] for _ in points]
    p = curve.p
    current = list(points)
    chains = [[point] for point in current]
    for _ in range(length - 1):
        for index, point in enumerate(current):
            # A zero ordinate doubles to infinity (order-2 point); the
            # prime-order subgroups never hit this, but stay total.
            if point is not INFINITY and point[1] % p == 0:
                current[index] = INFINITY
        live = [i for i, point in enumerate(current) if point is not INFINITY]
        inverses = batch_invmod([2 * current[i][1] for i in live], p)
        for index, inverse in zip(live, inverses):
            x, y = current[index]
            slope = (3 * x * x + 1) * inverse % p  # a = 1
            nx = (slope * slope - 2 * x) % p
            current[index] = (nx, (slope * (x - nx) - y) % p)
        for chain, point in zip(chains, current):
            chain.append(point)
    return chains


def _naf_program(exponent: int) -> tuple:
    """2-NAF recoding of a non-negative exponent as (level, sign) pairs.

    ``scalar·P = Σ sign · 2^level · P`` with no two adjacent levels used,
    so an n-bit exponent averages n/3 nonzero terms — each one mixed
    addition against a shared doubling chain, with the negative terms
    costing only an affine negation.
    """
    program = []
    level = 0
    while exponent:
        if exponent & 1:
            if exponent & 3 == 3:
                program.append((level, -1))
                exponent += 1
            else:
                program.append((level, 1))
                exponent -= 1
        exponent >>= 1
        level += 1
    return tuple(program)


class BatchExponentiator:
    """Many *fixed* exponents applied to a *varying* base point.

    The dual of :class:`FixedBaseTable`: KeyGen raises each user's
    ``PK_UID`` (a fresh base every call) to the same ``|S| + 1``
    session-fixed exponents, so a per-base window table would cost more
    to build than it saves. Instead the exponents are recoded to 2-NAF
    *once* (at session setup), and each base pays one shared doubling
    chain ``P, 2P, 4P, …`` — normalized to affine with a single batch
    inversion — that every program then walks with ~bits/3 mixed
    additions. For ~10 exponents that replaces a table build (hundreds
    of additions) or 10 independent double-and-add runs with
    ``bits`` doublings + ``~bits/3`` additions per exponent.
    """

    __slots__ = ("curve", "order", "exponents", "programs", "chain_length")

    def __init__(self, curve: SupersingularCurve, order: int, exponents):
        self.curve = curve
        self.order = order
        self.exponents = tuple(e % order for e in exponents)
        self.programs = tuple(_naf_program(e) for e in self.exponents)
        # The NAF of e can carry one level past e.bit_length(); size the
        # chain to the highest level any program touches.
        self.chain_length = 1 + max(
            (prog[-1][0] for prog in self.programs if prog), default=0
        )

    def powers_jacobian(self, point, chain=None) -> list:
        """``[e·P for e in exponents]`` as Jacobian points (one inversion).

        ``chain`` is an optional precomputed
        :func:`affine_doubling_chain` of ``point`` with at least
        ``self.chain_length`` entries, letting several exponentiators
        over the same base (joint KeyGen across authorities) share the
        dominant doubling cost. Callers that post-process results
        (mixed-adding a constant, as KeyGen's ``K`` does) fold their own
        work in before normalizing everything with
        :meth:`SupersingularCurve.batch_normalize`.
        """
        if point is INFINITY:
            return [_JAC_INFINITY] * len(self.exponents)
        p = self.curve.p
        if chain is None:
            chain = affine_doubling_chain(self.curve, point, self.chain_length)
        elif len(chain) < self.chain_length:
            raise ValueError(
                f"doubling chain has {len(chain)} entries; "
                f"{self.chain_length} required"
            )
        results = []
        for program in self.programs:
            accumulator = _JAC_INFINITY
            for level, sign in program:
                doubled = chain[level]
                if sign < 0 and doubled is not INFINITY:
                    doubled = (doubled[0], -doubled[1] % p)
                accumulator = _jac_add_affine(accumulator, doubled, p)
            results.append(accumulator)
        return results

    def powers(self, point, chain=None) -> list:
        """``[e·P for e in exponents]`` in affine (two batch inversions)."""
        return self.curve.batch_normalize(self.powers_jacobian(point, chain))

"""End-to-end pairing pipeline on freshly generated parameters.

Guards the parameter *generator*: the frozen presets are re-validated at
import, but only this test proves that arbitrary generate_type_a output
yields a working pairing group and a working scheme.
"""

import pytest

from repro.core.scheme import MultiAuthorityABE
from repro.ec.params import generate_type_a
from repro.pairing.group import PairingGroup


@pytest.fixture(scope="module")
def fresh_params():
    return generate_type_a(32, 64, seed=271828)


class TestFreshParameters:
    def test_bilinearity(self, fresh_params):
        group = PairingGroup(fresh_params, seed=3)
        a, b = group.random_scalar(), group.random_scalar()
        assert group.pair(group.g ** a, group.g ** b) == group.gt ** (a * b)

    def test_non_degenerate(self, fresh_params):
        group = PairingGroup(fresh_params, seed=3)
        assert not group.pair(group.g, group.g).is_identity()

    def test_hash_to_g1_lands_in_subgroup(self, fresh_params):
        group = PairingGroup(fresh_params, seed=3)
        point = group.hash_to_g1("anything")
        assert (point ** group.order).is_identity()
        assert not point.is_identity()

    def test_full_scheme_on_fresh_params(self, fresh_params):
        scheme = MultiAuthorityABE(fresh_params, seed=4)
        authority = scheme.setup_authority("aa", ["x", "y"])
        owner = scheme.setup_owner("o", [authority])
        pk = scheme.register_user("u")
        keys = {"aa": authority.keygen(pk, ["x"], "o")}
        message = scheme.random_message()
        ciphertext = owner.encrypt(message, "aa:x")
        assert scheme.decrypt(ciphertext, pk, keys) == message

    def test_serialization_sizes_scale(self, fresh_params):
        group = PairingGroup(fresh_params, seed=5)
        assert group.g1_bytes == (fresh_params.p.bit_length() + 7) // 8 + 1
        assert group.gt_bytes == 2 * ((fresh_params.p.bit_length() + 7) // 8)
        element = group.g ** 12345
        assert group.decode_g1(group.encode_g1(element)) == element

"""Tests for the quadratic extension F_p²."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MathError
from repro.math.field import PrimeField
from repro.math.field_ext import QuadraticExtension

P = 0x82AB3A7FE43647067E8563A38CC0A04EC6E335B7  # ≡ 3 (mod 4)
BASE = PrimeField(P, check_prime=False)
EXT = QuadraticExtension(BASE)

coords = st.integers(0, P - 1)
elements = st.tuples(coords, coords)
nonzero = elements.filter(lambda x: x != (0, 0))


class TestConstruction:
    def test_requires_3_mod_4(self):
        with pytest.raises(MathError):
            QuadraticExtension(PrimeField(13))  # 13 ≡ 1 (mod 4)

    def test_i_squared_is_minus_one(self):
        i = (0, 1)
        assert EXT.square(i) == (P - 1, 0)


class TestFieldAxioms:
    @given(elements, elements, elements)
    def test_mul_associative(self, x, y, z):
        assert EXT.mul(EXT.mul(x, y), z) == EXT.mul(x, EXT.mul(y, z))

    @given(elements, elements)
    def test_mul_commutative(self, x, y):
        assert EXT.mul(x, y) == EXT.mul(y, x)

    @given(elements, elements, elements)
    def test_distributive(self, x, y, z):
        assert EXT.mul(x, EXT.add(y, z)) == EXT.add(EXT.mul(x, y), EXT.mul(x, z))

    @given(elements)
    def test_additive_inverse(self, x):
        assert EXT.add(x, EXT.neg(x)) == EXT.zero

    @given(nonzero)
    def test_multiplicative_inverse(self, x):
        assert EXT.mul(x, EXT.inv(x)) == EXT.one

    @given(elements)
    def test_square_matches_mul(self, x):
        assert EXT.square(x) == EXT.mul(x, x)

    @given(nonzero, nonzero)
    def test_div_roundtrip(self, x, y):
        assert EXT.mul(EXT.div(x, y), y) == x

    def test_zero_not_invertible(self):
        with pytest.raises(MathError):
            EXT.inv(EXT.zero)


class TestStructure:
    @given(elements, elements)
    def test_norm_multiplicative(self, x, y):
        assert EXT.norm(EXT.mul(x, y)) == BASE.mul(EXT.norm(x), EXT.norm(y))

    @given(elements)
    def test_conjugate_involution(self, x):
        assert EXT.conjugate(EXT.conjugate(x)) == x

    @given(elements)
    def test_frobenius_is_pth_power(self, x):
        assert EXT.frobenius(x) == EXT.pow(x, P)

    @given(elements)
    def test_conjugate_times_self_is_norm(self, x):
        assert EXT.mul(x, EXT.conjugate(x)) == EXT.embed(EXT.norm(x))

    @given(nonzero, st.integers(-50, 200))
    def test_pow_homomorphism(self, x, e):
        assert EXT.pow(x, e + 1) == EXT.mul(EXT.pow(x, e), x)

    @given(st.integers(0, P - 1))
    def test_embed_is_homomorphic(self, a):
        b = (a * a + 5) % P
        assert EXT.mul(EXT.embed(a), EXT.embed(b)) == EXT.embed(BASE.mul(a, b))


class TestCodec:
    @given(elements)
    def test_bytes_roundtrip(self, x):
        data = EXT.to_bytes(x)
        assert len(data) == 2 * BASE.byte_length
        assert EXT.from_bytes(data) == x

    def test_wrong_length_raises(self):
        with pytest.raises(MathError):
            EXT.from_bytes(b"\x00")

    def test_random_in_range(self):
        rng = random.Random(9)
        a, b = EXT.random(rng)
        assert 0 <= a < P and 0 <= b < P

"""Bilinear pairing groups over type-A supersingular curves."""

from repro.ec.params import PRESETS, SS512, TOY80, TypeAParams, generate_type_a
from repro.pairing.group import G1Element, GTElement, PairingGroup
from repro.pairing.serialize import ElementSizes, element_sizes

__all__ = [
    "PairingGroup",
    "G1Element",
    "GTElement",
    "TypeAParams",
    "generate_type_a",
    "TOY80",
    "SS512",
    "PRESETS",
    "ElementSizes",
    "element_sizes",
]

"""End-to-end service tests over real localhost sockets at TOY80."""

import asyncio
import io

import pytest

from repro.ec.params import TOY80
from repro.errors import (
    AuthorizationError,
    PolicyNotSatisfiedError,
    ProtocolError,
    StorageError,
    UnavailableError,
)
from repro.service import protocol
from repro.service.client import OwnerClient, ServiceConnection, UserClient
from repro.service.protocol import MessageType
from repro.service.smoke import run_smoke

from .conftest import run, start_service


async def connect(scenario, service, role, name) -> ServiceConnection:
    conn = ServiceConnection(
        scenario.group, service.host, service.port, role=role, name=name
    )
    return await conn.connect()


async def make_owner(scenario, service) -> OwnerClient:
    return OwnerClient(
        await connect(scenario, service, "owner", "owner:alice"),
        scenario.owner_core,
    )


async def make_user(scenario, service, uid, secret_key=None) -> UserClient:
    user = UserClient(
        await connect(scenario, service, "user", f"user:{uid}"), uid
    )
    user.receive_public_key(getattr(scenario, f"{uid}_pk"))
    if secret_key is not None:
        user.receive_secret_key(secret_key)
    return user


async def wait_for_sessions(service, count, deadline=2.0):
    """Poll until the server's live-session count drops to ``count``."""
    for _ in range(int(deadline / 0.01)):
        if service.connection_count == count:
            return
        await asyncio.sleep(0.01)
    raise AssertionError(
        f"server still tracks {service.connection_count} sessions"
    )


# -- the full lifecycle -------------------------------------------------------

def test_smoke_cycle_over_a_real_socket(group, store_root):
    """upload → read → revoke → re-encrypt → revoked read fails."""
    async def scenario():
        service = await start_service(group, store_root)
        out = io.StringIO()
        try:
            rc = await run_smoke(TOY80, service.host, service.port,
                                 out=out, seed=7)
        finally:
            await service.stop()
        return rc, out.getvalue()

    rc, transcript = run(scenario())
    assert rc == 0, transcript
    assert "smoke cycle passed" in transcript
    assert "revoked user's read now fails" in transcript


def test_upload_read_roundtrip(group, scenario, store_root):
    plaintext = b"exact plaintext bytes \x00\xff"

    async def body():
        service = await start_service(group, store_root)
        owner = await make_owner(scenario, service)
        bob = await make_user(scenario, service, "bob", scenario.bob_sk)
        try:
            await owner.upload(
                "r", {"note": (plaintext, "hospital:doctor")}
            )
            downloaded = await bob.read("r", "note")
            self_read = await owner.read_own("r", "note")
            listing = await bob.list_records()
        finally:
            await owner.close()
            await bob.close()
            await service.stop()
        return downloaded, self_read, listing

    downloaded, self_read, listing = run(body())
    assert downloaded == plaintext
    assert self_read == plaintext
    assert listing == ["r"]


def test_unauthorized_reads(group, scenario, store_root):
    async def body():
        service = await start_service(group, store_root)
        owner = await make_owner(scenario, service)
        # bob holds only 'doctor'; carol's client gets no keys at all.
        bob = await make_user(scenario, service, "bob", scenario.bob_sk)
        keyless = await make_user(scenario, service, "carol")
        try:
            await owner.upload(
                "r", {"nurse-note": (b"nurses only", "hospital:nurse")}
            )
            with pytest.raises(PolicyNotSatisfiedError):
                await bob.read("r", "nurse-note")
            with pytest.raises(AuthorizationError):
                await keyless.read("r", "nurse-note")
        finally:
            await owner.close()
            await bob.close()
            await keyless.close()
            await service.stop()

    run(body())


# -- error handling keeps sessions alive --------------------------------------

def test_missing_record_is_a_typed_error_not_a_hangup(group, scenario,
                                                      store_root):
    async def body():
        service = await start_service(group, store_root)
        bob = await make_user(scenario, service, "bob", scenario.bob_sk)
        try:
            with pytest.raises(StorageError, match="no record"):
                await bob.read("ghost", "note")
            # The connection survives the application error.
            assert await bob.ping()
            assert await bob.list_records() == []
        finally:
            await bob.close()
            await service.stop()

    run(body())


def test_duplicate_upload_is_rejected_server_side(group, scenario,
                                                  store_root):
    async def body():
        service = await start_service(group, store_root)
        owner = await make_owner(scenario, service)
        try:
            await owner.upload("r", {"note": (b"x", "hospital:doctor")})
            # Fresh ciphertexts, same record id: the server must refuse.
            with pytest.raises(StorageError, match="already exists"):
                await owner.upload("r", {"note2": (b"y", "hospital:doctor")})
            assert await owner.ping()
        finally:
            await owner.close()
            await service.stop()

    run(body())


# -- protocol violations ------------------------------------------------------

def test_hello_preset_mismatch_is_rejected(group, store_root):
    async def body():
        service = await start_service(group, store_root)
        reader, writer = await asyncio.open_connection(
            service.host, service.port
        )
        try:
            await protocol.write_frame(
                writer, MessageType.HELLO,
                protocol.hello_body("SS512", "user", "stranger"),
            )
            msg_type, frame_body = await protocol.read_frame(reader)
            assert msg_type is MessageType.ERROR
            with pytest.raises(ProtocolError, match="preset mismatch"):
                protocol.raise_error(frame_body)
        finally:
            writer.close()
            await service.stop()

    run(body())


def test_request_before_hello_is_rejected(group, store_root):
    async def body():
        service = await start_service(group, store_root)
        reader, writer = await asyncio.open_connection(
            service.host, service.port
        )
        try:
            await protocol.write_frame(writer, MessageType.PING, b"eager")
            msg_type, frame_body = await protocol.read_frame(reader)
            assert msg_type is MessageType.ERROR
            with pytest.raises(ProtocolError, match="HELLO frame first"):
                protocol.raise_error(frame_body)
        finally:
            writer.close()
            await service.stop()

    run(body())


def test_unknown_role_is_rejected(group, scenario, store_root):
    async def body():
        service = await start_service(group, store_root)
        conn = ServiceConnection(
            group, service.host, service.port, role="martian", name="zork"
        )
        try:
            with pytest.raises(ProtocolError, match="unknown client role"):
                await conn.connect()
        finally:
            await conn.close()
            await service.stop()

    run(body())


def test_oversized_frame_answers_error_and_closes(group, scenario,
                                                  store_root):
    async def body():
        service = await start_service(group, store_root, max_frame=256)
        bob = await make_user(scenario, service, "bob")
        try:
            with pytest.raises(ProtocolError, match="maximum"):
                await bob.connection.request(
                    MessageType.PING, b"x" * 1024, expect=MessageType.PONG
                )
            await wait_for_sessions(service, 0)
        finally:
            await bob.close()
            await service.stop()

    run(body())


# -- robustness ---------------------------------------------------------------

def test_server_survives_mid_request_disconnect(group, scenario, store_root):
    async def body():
        service = await start_service(group, store_root)
        owner = await make_owner(scenario, service)
        await owner.upload("r", {"note": (b"still here", "hospital:doctor")})

        # A rude client: finishes the hello, then dies mid-frame.
        reader, writer = await asyncio.open_connection(
            service.host, service.port
        )
        await protocol.write_frame(
            writer, MessageType.HELLO,
            protocol.hello_body(service.preset, "user", "rude"),
        )
        msg_type, _ = await protocol.read_frame(reader)
        assert msg_type is MessageType.HELLO_ACK
        writer.write((4096).to_bytes(4, "big") + b"\x10only-a-prefix")
        await writer.drain()
        writer.close()

        try:
            await wait_for_sessions(service, 1)  # only the owner remains
            # The server is unbothered: existing and new sessions work.
            assert await owner.ping()
            bob = await make_user(scenario, service, "bob", scenario.bob_sk)
            plaintext = await bob.read("r", "note")
            await bob.close()
        finally:
            await owner.close()
            await service.stop()
        return plaintext

    assert run(body()) == b"still here"


def test_concurrent_clients(group, scenario, store_root):
    async def body():
        service = await start_service(group, store_root)
        owner = await make_owner(scenario, service)
        await owner.upload("r", {
            "note": (b"shared note", "hospital:doctor"),
            "plan": (b"shared plan", "hospital:doctor OR hospital:nurse"),
        })
        users = [
            await make_user(scenario, service, "bob", scenario.bob_sk),
            await make_user(scenario, service, "carol", scenario.carol_sk),
        ]
        try:
            # One in-flight request per connection (the protocol is
            # strictly request/reply per session), three sessions at once.
            results = await asyncio.gather(
                users[0].read("r", "note"),
                users[1].read("r", "plan"),
                owner.read_own("r", "plan"),
            )
            results.append(await users[1].read("r", "note"))
            results.append(await users[0].list_records())
        finally:
            for user in users:
                await user.close()
            await owner.close()
            await service.stop()
        return results

    note0, plan1, own, note1, listing = run(body())
    assert note0 == note1 == b"shared note"
    assert plan1 == own == b"shared plan"
    assert listing == ["r"]


def test_restart_persistence(group, scenario, store_root):
    """Records survive a full server restart on the same store root."""
    async def body():
        service = await start_service(group, store_root)
        owner = await make_owner(scenario, service)
        await owner.upload("r", {"note": (b"durable", "hospital:doctor")})
        await owner.close()
        await service.stop()

        reborn = await start_service(group, store_root)
        bob = await make_user(scenario, reborn, "bob", scenario.bob_sk)
        try:
            stats = await bob.stats()
            plaintext = await bob.read("r", "note")
        finally:
            await bob.close()
            await reborn.stop()
        return stats, plaintext

    stats, plaintext = run(body())
    assert plaintext == b"durable"
    assert stats["records"] == 1


def test_idle_session_is_dropped(group, scenario, store_root):
    async def body():
        service = await start_service(group, store_root, idle_timeout=0.05)
        bob = await make_user(scenario, service, "bob")
        try:
            assert await bob.ping()
            await wait_for_sessions(service, 0)
            with pytest.raises((ConnectionError, EOFError, OSError)):
                await bob.ping()
        finally:
            await bob.close()
            await service.stop()

    run(body())


def test_stats_snapshot(group, scenario, store_root):
    async def body():
        service = await start_service(group, store_root, name="cumulus")
        owner = await make_owner(scenario, service)
        try:
            await owner.upload("r", {"note": (b"x", "hospital:doctor")})
            stats = await owner.stats()
        finally:
            await owner.close()
            await service.stop()
        return stats

    stats = run(body())
    assert stats["server"] == "cumulus"
    assert stats["preset"] == "TOY80"
    assert stats["records"] == 1
    assert stats["storage_bytes"] > 0
    assert stats["wire_bytes"] > 0
    assert stats["by_kind"]["store-record"] > 0
    assert stats["channels"]["owner<->server"]["messages"] > 0


# -- digest probes & repair over the socket -----------------------------------

def test_record_digest_verify_and_repair_round_trip(group, scenario,
                                                    store_root):
    """The three cluster-repair primitives end to end: a verified digest
    probe flags the corrupted copy, FETCH_RECORD serves the healthy raw
    bytes, and REPAIR_RECORD force-puts them back digest-identical."""
    async def flow():
        service = await start_service(group, store_root)
        owner = await make_owner(scenario, service)
        try:
            await owner.upload("r", {"note": (b"body", "hospital:doctor")})
            probe = await owner.record_digest("r", verify=True)
            digest = service.store.digest("r")
            assert probe == {"record": "r", "digest": digest, "ok": True}

            blob = (await owner.fetch_record("r")).to_bytes()
            assert blob == service.store.get_record_bytes("r")

            # Rot the blob on disk; the verified probe must notice even
            # though the ref (and the unverified digest) look fine.
            path = service.store.blobs._path(digest)
            path.write_bytes(b"bit rot" + path.read_bytes()[7:])
            service.store.blobs._cache_drop(digest)
            damaged = await owner.record_digest("r", verify=True)
            assert damaged == {"record": "r", "digest": digest,
                               "ok": False}
            unverified = await owner.record_digest("r")
            assert unverified["ok"] is True  # no disk read, no verdict

            await owner.repair_record(blob)
            repaired = await owner.record_digest("r", verify=True)
            assert repaired["ok"] is True
            assert service.store.get_record_bytes("r") == blob
        finally:
            await owner.close()
            await service.stop()

    run(flow())


def test_record_digest_of_unknown_record_is_a_storage_error(group, scenario,
                                                            store_root):
    async def flow():
        service = await start_service(group, store_root)
        owner = await make_owner(scenario, service)
        try:
            with pytest.raises(StorageError):
                await owner.record_digest("ghost")
        finally:
            await owner.close()
            await service.stop()

    run(flow())


def test_repair_record_rejects_garbage_and_read_only(group, scenario,
                                                     store_root):
    async def flow():
        service = await start_service(group, store_root)
        owner = await make_owner(scenario, service)
        try:
            await owner.upload("r", {"note": (b"body", "hospital:doctor")})
            blob = (await owner.fetch_record("r")).to_bytes()
            with pytest.raises(StorageError):
                await owner.repair_record(b"\x00" * 32)
            # Configured read-only (policy, not damage) — a bare
            # read_only=True would now self-heal via the recovery probe.
            service.read_only = service._configured_read_only = True
            with pytest.raises(UnavailableError):
                await owner.repair_record(blob)
        finally:
            await owner.close()
            await service.stop()

    run(flow())

"""Decryption (Phase 4) — faithful and optimized variants.

:func:`decrypt` follows the paper's Eq. (1) literally: for each involved
authority one numerator pairing ``e(C', K_{UID,AID_k})``, and for each
used LSSS row the pair ``e(C_i, PK_UID) · e(C', K_{ρ(i)})`` raised to
``w_i · n_A``. This is the variant whose cost profile Figures 3(b)/4(b)
measure.

:func:`decrypt_fast` is an ablation: by bilinearity the whole denominator
collapses to two pairings (``e(∏ C_i^{w_i·n_A}, PK_UID)`` and
``e(C', ∏ K_{ρ(i)}^{w_i·n_A})``) and the numerator to one
(``e(C', ∏_k K_k)``), trading per-row pairings for per-row G
exponentiations. The paper does not apply this optimization; the
benchmark ``bench_ablation_revocation`` quantifies what it would buy.

Both variants validate versions and ownership eagerly so stale keys
produce a :class:`SchemeError` instead of silently wrong plaintext.
"""

from __future__ import annotations

from repro.core.attributes import authority_of
from repro.core.ciphertext import Ciphertext
from repro.core.keys import UserPublicKey, UserSecretKey
from repro.errors import PolicyNotSatisfiedError, SchemeError
from repro.pairing.group import GTElement, PairingGroup


def _validate_inputs(ciphertext: Ciphertext, user_public_key: UserPublicKey,
                     secret_keys: dict) -> None:
    for aid in ciphertext.involved_aids:
        key = secret_keys.get(aid)
        if key is None:
            raise SchemeError(
                f"decryption needs a secret key from every involved authority; "
                f"missing {aid!r}"
            )
        if key.uid != user_public_key.uid:
            raise SchemeError(
                f"secret key from {aid!r} belongs to {key.uid!r}, "
                f"not {user_public_key.uid!r}"
            )
        if key.owner_id != ciphertext.owner_id:
            raise SchemeError(
                f"secret key from {aid!r} is scoped to owner {key.owner_id!r}; "
                f"the ciphertext was produced by {ciphertext.owner_id!r}"
            )
        if key.version != ciphertext.version_of(aid):
            raise SchemeError(
                f"secret key from {aid!r} is at version {key.version}, "
                f"ciphertext expects {ciphertext.version_of(aid)}; "
                f"apply the pending update keys"
            )


def _held_attributes(ciphertext: Ciphertext, secret_keys: dict) -> set:
    held = set()
    for aid in ciphertext.involved_aids:
        held |= set(secret_keys[aid].attribute_keys)
    return held


def decrypt(group: PairingGroup, ciphertext: Ciphertext,
            user_public_key: UserPublicKey, secret_keys: dict) -> GTElement:
    """Recover the GT message exactly as in the paper's Eq. (1).

    ``secret_keys`` maps AID → :class:`UserSecretKey`; one key per
    authority involved in the ciphertext is required (the numerator
    product runs over *all* of I_A, a structural property of the scheme).
    Raises :class:`PolicyNotSatisfiedError` if the user's attributes do
    not satisfy the access structure.
    """
    _validate_inputs(ciphertext, user_public_key, secret_keys)
    return decrypt_unchecked(group, ciphertext, user_public_key, secret_keys)


def decrypt_unchecked(group: PairingGroup, ciphertext: Ciphertext,
                      user_public_key: UserPublicKey,
                      secret_keys: dict) -> GTElement:
    """Eq. (1) with the eager key/version validation *skipped*.

    This is the attacker's view of decryption: the adversarial
    harness (:mod:`repro.adversary`) uses it to prove that stale,
    pooled, or forged keys fail *cryptographically* — the pairing
    product recovers a wrong GT blinding and authenticated decryption
    rejects the session — rather than merely being turned away by
    :func:`_validate_inputs`' bookkeeping. Production callers must use
    :func:`decrypt`; skipping validation never recovers plaintext for
    an unauthorized key set, it just moves the failure from a typed
    :class:`SchemeError` to garbage output.

    Still raises :class:`PolicyNotSatisfiedError` when the pooled
    attribute set cannot reconstruct the LSSS secret at all, and
    :class:`KeyError`-free operation requires one key per involved
    authority (the numerator runs over all of I_A).
    """
    order = group.order
    matrix = ciphertext.matrix
    coefficients = matrix.reconstruction_coefficients(
        _held_attributes(ciphertext, secret_keys), order
    )
    n_involved = len(ciphertext.involved_aids)
    pk_uid = user_public_key.element

    # C' appears in every pairing of Eq. (1) and PK_UID in every row
    # term: cache their Miller-loop line coefficients once, so each of
    # the n_A + 2l pairings below replays stored lines instead of
    # walking the chain. Counters are unchanged — the work per pairing
    # shrinks, not the number of pairings.
    group.prepare_pairing(ciphertext.c_prime)
    group.prepare_pairing(pk_uid)

    # Numerator: ∏_k e(C', K_{UID,AID_k}) — one shared final exponentiation.
    numerator = group.pair_prod(
        [(ciphertext.c_prime, secret_keys[aid].k)
         for aid in ciphertext.involved_aids]
    )

    # Denominator: ∏_k ∏_i (e(C_i, PK_UID) · e(C', K_{ρ(i)}))^{w_i·n_A};
    # each row's two pairings share a final exponentiation before the
    # per-row GT exponentiation the paper's equation requires.
    denominator = group.identity_gt()
    for index, w in coefficients.items():
        label = matrix.row_labels[index]
        key = secret_keys[authority_of(label)]
        term = group.pair_prod(
            [
                (ciphertext.c_rows[index], pk_uid),
                (ciphertext.c_prime, key.attribute_keys[label]),
            ]
        )
        denominator = denominator * (term ** (w * n_involved % order))

    blinding = numerator / denominator
    return ciphertext.c / blinding


def decrypt_fast(group: PairingGroup, ciphertext: Ciphertext,
                 user_public_key: UserPublicKey, secret_keys: dict) -> GTElement:
    """Optimized decryption: 3 pairings total via bilinearity (ablation)."""
    _validate_inputs(ciphertext, user_public_key, secret_keys)
    order = group.order
    matrix = ciphertext.matrix
    coefficients = matrix.reconstruction_coefficients(
        _held_attributes(ciphertext, secret_keys), order
    )
    n_involved = len(ciphertext.involved_aids)

    k_product = group.identity_g1()
    for aid in ciphertext.involved_aids:
        k_product = k_product * secret_keys[aid].k

    # Both combined points are multi-exponentiations over the used rows:
    # one interleaved doubling chain each (Pippenger buckets for wide
    # policies) instead of a scalar multiplication per row. Counted as
    # one G exponentiation per row, exactly like the naive loop.
    used = sorted(coefficients.items())
    exponents = [w * n_involved % order for _, w in used]
    c_combined = group.multiexp_g1(
        [ciphertext.c_rows[index] for index, _ in used], exponents
    )
    key_combined = group.multiexp_g1(
        [
            secret_keys[authority_of(matrix.row_labels[index])]
            .attribute_keys[matrix.row_labels[index]]
            for index, _ in used
        ],
        exponents,
    )

    # e(C', ∏K_k) / (e(∏C_i^{w_i·n_A}, PK_UID) · e(C', ∏K_x^{w_i·n_A}))
    # computed as a 3-way multi-pairing with one final exponentiation.
    blinding = group.pair_prod(
        [
            (ciphertext.c_prime, k_product),
            (c_combined.inverse(), user_public_key.element),
            (ciphertext.c_prime, key_combined.inverse()),
        ]
    )
    return ciphertext.c / blinding


def can_decrypt(group: PairingGroup, ciphertext: Ciphertext,
                secret_keys: dict) -> bool:
    """Cheap predicate: does this key bundle satisfy the access structure?

    Ignores version mismatches (those raise at decryption); useful for
    the system layer to route requests.
    """
    if any(aid not in secret_keys for aid in ciphertext.involved_aids):
        return False
    held = set()
    for key in secret_keys.values():
        held |= set(key.attribute_keys)
    return ciphertext.matrix.is_satisfied_by(held, group.order)

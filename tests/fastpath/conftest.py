"""Fastpath fixtures: a two-authority deployment with one keyed reader."""

import pytest

from repro.core.scheme import MultiAuthorityABE
from repro.ec.params import TOY80

_COUNTER = [0]


class Fabric:
    """Scheme + two authorities + owner + a reader holding every attribute."""

    def __init__(self, seed):
        self.scheme = MultiAuthorityABE(TOY80, seed=seed)
        self.hospital = self.scheme.setup_authority(
            "hospital", ["doctor", "nurse", "surgeon"]
        )
        self.trial = self.scheme.setup_authority(
            "trial", ["researcher", "pi"]
        )
        self.owner = self.scheme.setup_owner(
            "alice", [self.hospital, self.trial]
        )
        self.bob_pk = self.scheme.register_user("bob")
        self.bob_keys = {
            "hospital": self.hospital.keygen(
                self.bob_pk, ["doctor", "nurse", "surgeon"], "alice"
            ),
            "trial": self.trial.keygen(
                self.bob_pk, ["researcher", "pi"], "alice"
            ),
        }

    def decrypt(self, ciphertext):
        return self.scheme.decrypt(ciphertext, self.bob_pk, self.bob_keys)


@pytest.fixture()
def fabric():
    _COUNTER[0] += 1
    return Fabric(7000 + _COUNTER[0])

"""Tests for linear algebra over Z_r."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MathError
from repro.math.linalg import (
    dot,
    in_span,
    mat_vec,
    rank,
    rref,
    solve,
    solve_combination,
)

MOD = 0x8BE5EA5F01D1943560CD  # TOY80 group order (prime)

small_dims = st.integers(1, 5)


def _random_matrix(rng, rows, cols, mod=MOD):
    return [[rng.randrange(mod) for _ in range(cols)] for _ in range(rows)]


class TestRref:
    def test_identity_stays(self):
        eye = [[1, 0], [0, 1]]
        reduced, pivots = rref(eye, MOD)
        assert reduced == eye
        assert pivots == [0, 1]

    def test_pivot_columns_are_unit(self):
        rng = random.Random(2)
        matrix = _random_matrix(rng, 4, 6)
        reduced, pivots = rref(matrix, MOD)
        for row_index, col in enumerate(pivots):
            column = [reduced[i][col] for i in range(len(reduced))]
            expected = [0] * len(reduced)
            expected[row_index] = 1
            assert column == expected

    def test_empty(self):
        assert rref([], MOD) == ([], [])

    def test_rank_of_duplicated_rows(self):
        matrix = [[1, 2, 3], [2, 4, 6], [1, 0, 1]]
        assert rank(matrix, MOD) == 2


class TestSolve:
    @given(st.integers(0, 2**31), small_dims, small_dims)
    def test_solution_satisfies_system(self, seed, rows, cols):
        rng = random.Random(seed)
        matrix = _random_matrix(rng, rows, cols)
        x_true = [rng.randrange(MOD) for _ in range(cols)]
        rhs = mat_vec(matrix, x_true, MOD)
        solution = solve(matrix, rhs, MOD)
        assert solution is not None
        assert mat_vec(matrix, solution, MOD) == rhs

    def test_inconsistent_returns_none(self):
        matrix = [[1, 0], [1, 0]]
        assert solve(matrix, [1, 2], MOD) is None

    def test_dimension_mismatch_raises(self):
        with pytest.raises(MathError):
            solve([[1, 2]], [1, 2], MOD)

    def test_empty_matrix(self):
        assert solve([], [], MOD) == []


class TestSolveCombination:
    @given(st.integers(0, 2**31), small_dims, small_dims)
    def test_combination_hits_target(self, seed, n_rows, n_cols):
        rng = random.Random(seed)
        rows = _random_matrix(rng, n_rows, n_cols)
        weights_true = [rng.randrange(MOD) for _ in range(n_rows)]
        target = [
            sum(weights_true[i] * rows[i][j] for i in range(n_rows)) % MOD
            for j in range(n_cols)
        ]
        weights = solve_combination(rows, target, MOD)
        assert weights is not None
        for j in range(n_cols):
            combo = sum(weights[i] * rows[i][j] for i in range(n_rows)) % MOD
            assert combo == target[j]

    def test_unreachable_target(self):
        rows = [[1, 0, 0], [0, 1, 0]]
        assert solve_combination(rows, [0, 0, 1], MOD) is None

    def test_ragged_rows_raise(self):
        with pytest.raises(MathError):
            solve_combination([[1, 2], [1]], [1, 1], MOD)

    def test_empty_rows(self):
        assert solve_combination([], [0, 0], MOD) == []
        assert solve_combination([], [1, 0], MOD) is None


class TestHelpers:
    def test_dot(self):
        assert dot([1, 2, 3], [4, 5, 6], 100) == 32

    def test_dot_dimension_mismatch(self):
        with pytest.raises(MathError):
            dot([1], [1, 2], MOD)

    def test_in_span(self):
        rows = [[1, 1], [0, 2]]
        assert in_span(rows, [1, 0], MOD)
        assert not in_span([[1, 0]], [0, 1], MOD)

    def test_mat_vec_mismatch(self):
        with pytest.raises(MathError):
            mat_vec([[1, 2]], [1], MOD)

"""Figure 4(b): decryption time vs attributes the user holds per authority.

Paper setup: the number of authorities is fixed at 5; the x-axis sweeps
the per-authority attribute count. Expected: linear in used rows, ours
slightly above Lewko's.
"""

import pytest

from benchmarks.conftest import (
    ATTRIBUTE_SWEEP,
    FIXED_AUTHORITIES,
    lewko_ciphertext,
    lewko_workload,
    ours_ciphertext,
    ours_workload,
    run_once,
)


@pytest.mark.parametrize("attrs", ATTRIBUTE_SWEEP)
def test_ours_decrypt(benchmark, attrs):
    workload = ours_workload(FIXED_AUTHORITIES, attrs)
    ciphertext = ours_ciphertext(FIXED_AUTHORITIES, attrs)
    benchmark.group = f"fig4b decrypt attrs/AA={attrs}"
    message = run_once(benchmark, workload.decrypt, ciphertext)
    assert message == workload.message


@pytest.mark.parametrize("attrs", ATTRIBUTE_SWEEP)
def test_lewko_decrypt(benchmark, attrs):
    workload = lewko_workload(FIXED_AUTHORITIES, attrs)
    ciphertext = lewko_ciphertext(FIXED_AUTHORITIES, attrs)
    benchmark.group = f"fig4b decrypt attrs/AA={attrs}"
    message = run_once(benchmark, workload.decrypt, ciphertext)
    assert message == workload.message

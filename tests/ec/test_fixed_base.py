"""The fixed-base table must agree with plain double-and-add everywhere."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ec.curve import INFINITY, SupersingularCurve
from repro.ec.fixed_base import FixedBaseTable
from repro.ec.params import TOY80
from repro.math.field import PrimeField

FIELD = PrimeField(TOY80.p, check_prime=False)
CURVE = SupersingularCurve(FIELD)
TABLE = FixedBaseTable(CURVE, TOY80.generator, TOY80.r)


class TestCorrectness:
    @given(st.integers(0, TOY80.r - 1))
    def test_matches_double_and_add(self, scalar):
        assert TABLE.multiply(scalar) == CURVE.mul(TOY80.generator, scalar)

    def test_zero(self):
        assert TABLE.multiply(0) is INFINITY

    def test_one(self):
        assert TABLE.multiply(1) == TOY80.generator

    def test_order_kills(self):
        assert TABLE.multiply(TOY80.r) is INFINITY

    @given(st.integers(1, TOY80.r - 1))
    def test_negative_scalar(self, scalar):
        assert TABLE.multiply(-scalar) == CURVE.neg(TABLE.multiply(scalar))

    def test_oversized_scalar_falls_back(self):
        big = TOY80.r * 3 + 12345
        assert TABLE.multiply(big) == CURVE.mul(TOY80.generator, big)

    @pytest.mark.parametrize("window", [1, 2, 3, 5, 8])
    def test_other_window_widths(self, window):
        table = FixedBaseTable(CURVE, TOY80.generator, TOY80.r, window=window)
        for scalar in (1, 2, 255, 256, TOY80.r - 1, TOY80.r // 3):
            assert table.multiply(scalar) == CURVE.mul(
                TOY80.generator, scalar
            ), (window, scalar)

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            FixedBaseTable(CURVE, TOY80.generator, TOY80.r, window=0)
        with pytest.raises(ValueError):
            FixedBaseTable(CURVE, TOY80.generator, TOY80.r, window=9)


class TestGroupIntegration:
    def test_generator_pow_uses_table(self, group):
        table = group.generator_table()
        assert group.generator_table() is table  # cached
        scalar = 0x1234567890ABCDEF
        assert (group.g ** scalar).point == group.curve.mul(
            group.params.generator, scalar
        )

    def test_non_generator_pow_unaffected(self, group):
        element = group.g ** 7
        assert (element ** 3) == group.g ** 21

"""Symmetric cryptography: KDF and the authenticated DEM."""

from repro.crypto.kdf import derive_content_key, hkdf
from repro.crypto.symmetric import (
    KEY_LEN,
    SymmetricCiphertext,
    decrypt,
    encrypt,
    generate_content_key,
)

__all__ = [
    "hkdf",
    "derive_content_key",
    "KEY_LEN",
    "SymmetricCiphertext",
    "encrypt",
    "decrypt",
    "generate_content_key",
]

"""Figure 4(a): encryption time vs attributes per authority.

Paper setup: the number of involved authorities is fixed at 5; the
x-axis sweeps attributes per authority. Same expected shape as Fig 3(a)
— linear, ours cheaper — since both axes only change the total LSSS row
count l = n_A · n_k.
"""

import pytest

from benchmarks.conftest import (
    ATTRIBUTE_SWEEP,
    FIXED_AUTHORITIES,
    lewko_workload,
    ours_workload,
    run_once,
)


@pytest.mark.parametrize("attrs", ATTRIBUTE_SWEEP)
def test_ours_encrypt(benchmark, attrs):
    workload = ours_workload(FIXED_AUTHORITIES, attrs)
    benchmark.group = f"fig4a encrypt attrs/AA={attrs}"
    ciphertext = run_once(benchmark, workload.encrypt)
    assert ciphertext.n_rows == FIXED_AUTHORITIES * attrs


@pytest.mark.parametrize("attrs", ATTRIBUTE_SWEEP)
def test_lewko_encrypt(benchmark, attrs):
    workload = lewko_workload(FIXED_AUTHORITIES, attrs)
    benchmark.group = f"fig4a encrypt attrs/AA={attrs}"
    ciphertext = run_once(benchmark, workload.encrypt)
    assert ciphertext.n_rows == FIXED_AUTHORITIES * attrs

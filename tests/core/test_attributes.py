"""Tests for attribute naming."""

import pytest

from repro.core.attributes import (
    authority_of,
    involved_authorities,
    qualify,
    split_attribute,
    validate_identifier,
)
from repro.errors import PolicyError


class TestQualify:
    def test_roundtrip(self):
        name = qualify("hospital", "doctor")
        assert name == "hospital:doctor"
        assert split_attribute(name) == ("hospital", "doctor")

    def test_authority_of(self):
        assert authority_of("trial:pi") == "trial"

    def test_unqualified_rejected(self):
        with pytest.raises(PolicyError):
            split_attribute("doctor")

    def test_bad_fragments_rejected(self):
        with pytest.raises(PolicyError):
            qualify("ho spital", "doctor")
        with pytest.raises(PolicyError):
            qualify("hospital", "doc tor")

    def test_involved_authorities(self):
        names = ["a:x", "a:y", "b:z"]
        assert involved_authorities(names) == frozenset({"a", "b"})
        assert involved_authorities([]) == frozenset()


class TestValidateIdentifier:
    @pytest.mark.parametrize("good", ["abc", "a-b_c.d", "x@y", "A1+B/2"])
    def test_accepts(self, good):
        assert validate_identifier(good) == good

    @pytest.mark.parametrize("bad", ["", "a b", "a:b!", None, 42, "tab\tname"])
    def test_rejects(self, bad):
        with pytest.raises(PolicyError):
            validate_identifier(bad)

"""The KEM/DEM glue: GT session element → content key → sealed payload.

Both deployments (the reproduced scheme's and the Lewko baseline's)
store data as ``(ABE-encrypted session, sealed body)``; this module owns
the two steps every reader/writer shares so the derivation logic exists
exactly once:

* ``seal(session, context, plaintext)`` — derive the content key from
  the serialized session element bound to ``context`` (the ciphertext
  id) and produce the authenticated body;
* ``open(session, context, body)`` — the reverse; raises
  :class:`repro.errors.IntegrityError` on any mismatch, which is also
  what a wrong session element (wrong ABE decryption) produces.
"""

from __future__ import annotations

from repro.crypto import symmetric
from repro.crypto.kdf import derive_content_key
from repro.pairing.group import GTElement


def content_key_for(session: GTElement, context: str) -> bytes:
    """The symmetric content key for one (session, ciphertext id) pair."""
    return derive_content_key(
        session.to_bytes(), context=context.encode("utf-8")
    )


def seal(session: GTElement, context: str,
         plaintext: bytes) -> symmetric.SymmetricCiphertext:
    """Encrypt one data component under a session element."""
    return symmetric.encrypt(content_key_for(session, context), plaintext)


def encrypt_with_session(encryption_session, ciphertext_id: str,
                         plaintext: bytes) -> tuple:
    """The full KEM/DEM write path through one encryption session.

    Draws a fresh GT session element, ABE-encrypts it via the
    per-policy :class:`repro.fastpath.session.EncryptionSession` (no
    re-parse, no per-call LSSS conversion — the historical hybrid path
    re-parsed the policy string on every component), and seals the
    plaintext under the derived content key. Returns
    ``(abe_ciphertext, sealed_body)``.
    """
    session_element = encryption_session.group.random_gt()
    abe_ciphertext = encryption_session.encrypt(
        session_element, ciphertext_id=ciphertext_id
    )
    return abe_ciphertext, seal(session_element, ciphertext_id, plaintext)


def open_sealed(session: GTElement, context: str,
                body: symmetric.SymmetricCiphertext) -> bytes:
    """Decrypt one data component; IntegrityError on any mismatch."""
    return symmetric.decrypt(content_key_for(session, context), body)


def decrypt_with_session(decryption_session, abe_ciphertext,
                         body: symmetric.SymmetricCiphertext) -> bytes:
    """The full KEM/DEM read path through one decryption session.

    The read-side mirror of :func:`encrypt_with_session`: recover the
    GT session element via a per-policy-shape
    :class:`repro.fastpath.decrypt.DecryptionSession` (no re-parse, no
    per-call coefficient solve, prepared Miller loops — the historical
    hybrid read path re-derived all of that on every component), then
    open the sealed body under the derived content key.
    """
    session_element = decryption_session.decrypt(abe_ciphertext)
    return open_sealed(
        session_element, abe_ciphertext.ciphertext_id, body
    )


def decrypt_many_with_session(decryption_session, components) -> list:
    """Batch :func:`decrypt_with_session` over one session.

    ``components`` is a sequence of ``(abe_ciphertext, sealed_body)``
    pairs sharing the session's policy shape; all N ABE decryptions
    ride one batched final exponentiation
    (:meth:`~repro.fastpath.decrypt.DecryptionSession.decrypt_many`).
    """
    components = list(components)
    session_elements = decryption_session.decrypt_many(
        [abe_ciphertext for abe_ciphertext, _ in components]
    )
    return [
        open_sealed(element, abe_ciphertext.ciphertext_id, body)
        for element, (abe_ciphertext, body)
        in zip(session_elements, components)
    ]

"""Byte-size measurement of protocol payloads.

Every object that crosses a channel in the simulated deployment gets a
size here, in the same units the paper's Tables II-IV use: group-element
payload bytes (identifiers and framing are bookkeeping both compared
schemes share equally, so they are counted at their UTF-8 length and
dwarfed by the crypto payload).

Unknown payload types raise instead of guessing — a silent 0 would
corrupt the communication-cost tables.
"""

from __future__ import annotations

from repro.baselines.bsw import BswCiphertext, BswPublicKey, BswUserKey
from repro.baselines.hur import AttributeGroupHeader, HurCiphertext
from repro.baselines.lewko import (
    LewkoAttributePublicKey,
    LewkoAuthorityPublicKey,
    LewkoCiphertext,
    LewkoUserKey,
)
from repro.core.ciphertext import Ciphertext
from repro.core.keys import (
    AuthorityPublicKey,
    CiphertextUpdateInfo,
    OwnerSecretKey,
    PublicAttributeKeys,
    UpdateKey,
    UserPublicKey,
    UserSecretKey,
    VersionKey,
)
from repro.core.outsourcing import TransformKey
from repro.crypto.symmetric import SymmetricCiphertext
from repro.errors import ReproError
from repro.pairing.group import G1Element, GTElement, PairingGroup


class UnmeasurablePayload(ReproError):
    """A payload type the size model does not know about."""


def measure(payload, group: PairingGroup) -> int:
    """Size in bytes of a payload as it would travel on the wire."""
    g1, gt, zr = group.g1_bytes, group.gt_bytes, group.scalar_bytes

    if payload is None:
        return 0
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, int):
        return zr
    if isinstance(payload, G1Element):
        return g1
    if isinstance(payload, GTElement):
        return gt
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(measure(item, group) for item in payload)
    if isinstance(payload, dict):
        return sum(
            measure(key, group) + measure(value, group)
            for key, value in payload.items()
        )

    # --- core scheme payloads -------------------------------------------------
    if isinstance(payload, UserPublicKey):
        return g1 + measure(payload.uid, group)
    if isinstance(payload, OwnerSecretKey):
        return g1 + zr + measure(payload.owner_id, group)
    if isinstance(payload, AuthorityPublicKey):
        return gt
    if isinstance(payload, PublicAttributeKeys):
        return len(payload.elements) * g1
    if isinstance(payload, UserSecretKey):
        return (1 + len(payload.attribute_keys)) * g1
    if isinstance(payload, VersionKey):
        return zr
    if isinstance(payload, UpdateKey):
        return len(payload.uk1) * g1 + zr
    if isinstance(payload, CiphertextUpdateInfo):
        return len(payload.elements) * g1
    if isinstance(payload, Ciphertext):
        return payload.element_size_bytes(group)
    if isinstance(payload, TransformKey):
        return g1 + sum(
            measure(key, group)
            for key in payload.transformed_secret.values()
        )
    if isinstance(payload, SymmetricCiphertext):
        return len(payload)

    # --- baseline payloads --------------------------------------------------------
    if isinstance(payload, LewkoAttributePublicKey):
        return gt + g1
    if isinstance(payload, LewkoAuthorityPublicKey):
        return len(payload.elements) * (gt + g1)
    if isinstance(payload, LewkoUserKey):
        return len(payload.elements) * g1
    if isinstance(payload, LewkoCiphertext):
        return payload.element_size_bytes(group)
    if isinstance(payload, BswPublicKey):
        return g1 + gt
    if isinstance(payload, BswUserKey):
        return (1 + 2 * len(payload.components)) * g1
    if isinstance(payload, BswCiphertext):
        return gt + (1 + 2 * payload.n_leaves) * g1
    if isinstance(payload, HurCiphertext):
        return measure(payload.base, group)
    if isinstance(payload, AttributeGroupHeader):
        return sum(len(ct) for ct in payload.wrapped.values())

    # --- storage records (duck-typed to avoid an import cycle) ----------------------
    if hasattr(payload, "payload_size_bytes"):
        return payload.payload_size_bytes(group)

    raise UnmeasurablePayload(
        f"no size model for payload type {type(payload).__name__}"
    )

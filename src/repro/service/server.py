"""The asyncio TCP server hosting the paper's cloud-server role.

One :class:`StorageService` is the Fig. 1 "Server" box made real: it
stores Fig. 2 records in a persistent :class:`repro.service.store.
RecordStore`, serves component downloads, acts as the public-key
directory authorities publish into, and executes the Section V-C proxy
``ReEncrypt`` on stored ciphertexts when an owner pushes an update key
plus update information — all without ever holding a decryption key or
content key, exactly like the simulated :class:`repro.system.entities.
ServerEntity`.

Connections are concurrent (one coroutine per client), each protected
by a hello timeout and a per-request idle timeout. Application errors
travel back as typed ERROR frames and leave the connection open;
protocol violations answer with an ERROR frame and close it; a peer
that disconnects mid-frame just gets cleaned up. ``stop()`` shuts the
listener and every live session down gracefully.

Fault tolerance (protocol version 2): replies echo the request's
sequence number so clients can discard stale frames; mutating requests
carry idempotency keys deduplicated through a bounded
:class:`repro.service.retry.IdempotencyTable`, making a retry across a
reconnect apply exactly once; and when a storage *write* fails at the
OS level (disk full, permission loss) the server degrades to
**read-only mode** — fetches keep serving while every write answers a
typed, retryable ``unavailable`` ERROR. A ``HEALTH`` heartbeat reports
the current mode.

Every payload-bearing frame is metered through a
:class:`repro.system.meter.Meter` with the *same role-pair/kind
vocabulary the in-process simulation uses*, so a workload replayed over
this server reproduces the simulation's Table IV counters exactly
(frame headers are tallied separately as ``meter.wire_bytes``).

Parallel execution: pairing-heavy work never runs on the event loop.
Single-record operations (ReEncrypt, record decodes) run on a
one-thread **offload executor** — one thread, so store mutations stay
serialized with each other while PING/HEALTH latency stays bounded by
the interpreter's thread-switch interval instead of by a multi-second
pairing burst. The v2 ``REENCRYPT_SWEEP`` op re-encrypts every matched
ciphertext in one request: update information is matched to the store's
ciphertext-id index by header peek (no group math), records are fanned
out chunk-by-chunk to a :class:`repro.parallel.pool.CryptoPool`
(``workers=0`` routes chunks through the offload thread instead — same
code, same bytes), each finished chunk is applied with the crash-safe
:meth:`repro.service.store.RecordStore.replace_record_bytes` ordering,
and a ``SWEEP_PROGRESS`` frame streams back per chunk before the final
``SWEEP_DONE`` summary.

Pipelined dispatch (protocol version 2): a v2 session no longer serves
one frame at a time. The read loop keeps pulling frames and spawns each
request as its own task — up to ``max_inflight`` concurrently per
session, a window enforced by a semaphore so a flooding client blocks
on the socket instead of ballooning server memory. Every reply (and
every sweep progress frame) is tagged with *its* request's sequence
number, so replies may legally overtake each other on the wire: a slow
``FETCH_RECORD`` no longer head-of-line-blocks the cheap ``PING``
behind it. Ordering and exactly-once invariants survive because (a)
all store mutations still run on the single offload thread, (b) one
session's mutating requests additionally serialize through a
per-session mutation lock in arrival order, and (c) a mutation key
already being applied parks its duplicate until the original resolves
(the in-flight table), then replays the deduplicated reply. v1
sessions — and servers started with ``max_inflight=1`` — keep the
strict serial loop.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from concurrent.futures import BrokenExecutor, ThreadPoolExecutor

from repro.core.outsourcing import server_transform, server_transform_many
from repro.core.reencrypt import reencrypt as abe_reencrypt
from repro.core.serialize import (
    decode_authority_public_key,
    decode_public_attribute_keys,
    decode_transform_key,
    decode_update_info,
    decode_update_key,
    peek_update_info,
)
from repro.errors import (
    AuthorizationError,
    ProtocolError,
    ReproError,
    SchemeError,
    StorageError,
    UnavailableError,
)
from repro.pairing.group import PairingGroup
from repro.parallel.batch import ALREADY_CURRENT, UPDATED, reencrypt_records_raw
from repro.parallel.pool import CryptoPool, chunked
from repro.service import protocol
from repro.service.protocol import MessageType
from repro.service.retry import IdempotencyTable
from repro.service.store import RecordStore
from repro.system.meter import ROLE_SERVER, Meter
from repro.system.records import StoredComponent, StoredRecord

#: Roles a client may claim in its hello.
_CLIENT_ROLES = frozenset({"owner", "user", "aa", "ca"})


class _Session:
    """Per-connection state: negotiated identity plus the streams."""

    __slots__ = ("reader", "writer", "peer_name", "peer_role", "version",
                 "write_lock", "mutation_lock", "window")

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        self.peer_name = "?"
        self.peer_role = "?"
        self.version = None
        # Created inside the event loop by _accept: frame writes are
        # atomic under write_lock (pipelined replies interleave, frames
        # must not); one session's mutations serialize in arrival order
        # under mutation_lock; window bounds concurrent requests.
        self.write_lock = None
        self.mutation_lock = None
        self.window = None


class StorageService:
    """The networked cloud server: storage, key directory, ReEncrypt."""

    def __init__(self, group: PairingGroup, store: RecordStore, *,
                 name: str = "cloud", host: str = "127.0.0.1", port: int = 0,
                 meter: Meter = None, idle_timeout: float = 30.0,
                 hello_timeout: float = 10.0,
                 max_frame: int = protocol.MAX_FRAME_BYTES,
                 read_only: bool = False, dedup_entries: int = 4096,
                 workers=0, sweep_chunk: int = 16,
                 probe_interval: float = 1.0, inline_crypto: bool = False,
                 max_inflight: int = 32,
                 evict_transform_keys: bool = True):
        if sweep_chunk <= 0:
            raise ValueError("sweep_chunk must be positive")
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self.group = group
        self.store = store
        self.name = name
        self.role = ROLE_SERVER
        self.host = host
        self.port = port
        self.preset = group.params.name
        self.meter = meter if meter is not None else Meter(group)
        self.idle_timeout = idle_timeout
        self.hello_timeout = hello_timeout
        self.max_frame = max_frame
        self.read_only = read_only
        # Operator-configured read-only (`serve --read-only`) is a
        # policy and never auto-recovers; read-only entered because a
        # write FAILED is a degradation, and the server probes its way
        # back to writable once the fault clears (see _maybe_recover).
        self._configured_read_only = read_only
        self.degraded_reason = None
        self.probe_interval = probe_interval
        self._last_probe = None
        # Adversarial-control knob only: run crypto/storage jobs inline
        # on the event loop instead of the offload thread. This is the
        # "defense disabled" leg of the spam-flood scenario — never set
        # it in production.
        self.inline_crypto = inline_crypto
        self.dedup = IdempotencyTable(dedup_entries)
        self.pool = CryptoPool(workers)
        self.sweep_chunk = sweep_chunk
        #: Per-session concurrent-request window (1 = serial dispatch).
        self.max_inflight = max_inflight
        # Mutations whose apply is in flight right now, keyed by
        # idempotency key: a pipelined (or cross-connection) duplicate
        # parks on the future instead of double-applying.
        self._inflight_keys = {}
        # digest -> Table-II payload size of the record blob, so the hot
        # raw-byte fetch path meters without re-decoding group elements.
        self._fetch_sizes = OrderedDict()
        # (uid, owner id) -> registered TransformKey. In-memory only (a
        # transform key is rebuildable client-side in one request) and
        # epoch-coupled: every REENCRYPT/REENCRYPT_SWEEP that rolls an
        # authority version evicts the entries built against the old
        # version, so a revoked user's cached token can never outlive
        # the re-encryption that revoked it (server_transform's version
        # validation is the second line of defense).
        self._transform_keys = OrderedDict()
        self.max_transform_keys = 1024
        # Adversarial-control knob only: keep pre-revocation transform
        # keys registered across epoch rolls. This is the "defense
        # disabled" leg of the stale-transform-token scenario — never
        # set it in production.
        self.evict_transform_keys = evict_transform_keys
        # Pipelined in-flight TRANSFORM_FETCHes funnel through one
        # micro-batching drain task so concurrent transforms share
        # prepared pairings and one final exponentiation per batch.
        self._transform_queue = []
        self._transform_task = None
        if hasattr(store, "attach_meter"):
            store.attach_meter(self.meter)
        # One thread: store mutations serialize with each other, and
        # pairing bursts leave the event loop free for PING/HEALTH.
        self._cpu = ThreadPoolExecutor(max_workers=1,
                                       thread_name_prefix="repro-crypto")
        self._server = None
        self._sessions = set()
        self._tasks = set()

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections (port 0 → ephemeral)."""
        if not self.pool.inline:
            # Boot the pool's workers before traffic arrives: spawning
            # them lazily would bill forkserver start-up, per-worker
            # library imports, and the per-process group rebuild to the
            # first sweep.
            await self._offload(self.pool.warm, 0.05, self.group)
        self._server = await asyncio.start_server(
            self._accept, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, close every live session."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for session in list(self._sessions):
            session.writer.close()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._sessions.clear()
        self._tasks.clear()
        self.pool.shutdown()
        self._cpu.shutdown(wait=False, cancel_futures=True)

    @property
    def connection_count(self) -> int:
        return len(self._sessions)

    # -- connection handling ----------------------------------------------

    async def _accept(self, reader, writer):
        session = _Session(reader, writer)
        session.write_lock = asyncio.Lock()
        session.mutation_lock = asyncio.Lock()
        session.window = asyncio.Semaphore(self.max_inflight)
        task = asyncio.current_task()
        self._sessions.add(session)
        self._tasks.add(task)
        try:
            await self._run_session(session)
        except (asyncio.IncompleteReadError, ConnectionError,
                asyncio.TimeoutError, TimeoutError):
            pass  # peer vanished or went idle: drop the session quietly
        except asyncio.CancelledError:  # server shutting down
            pass
        finally:
            self._sessions.discard(session)
            self._tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _run_session(self, session: _Session) -> None:
        try:
            await asyncio.wait_for(self._handshake(session),
                                   self.hello_timeout)
        except ProtocolError as exc:
            await self._send(session, MessageType.ERROR,
                             protocol.encode_error(exc))
            return
        seq_frames = session.version is not None and session.version >= 2
        if seq_frames and self.max_inflight > 1:
            await self._run_pipelined(session)
            return
        while True:
            seq = None
            try:
                if seq_frames:
                    msg_type, seq, body = await asyncio.wait_for(
                        protocol.read_seq_frame(session.reader,
                                                self.max_frame),
                        self.idle_timeout,
                    )
                else:
                    msg_type, body = await asyncio.wait_for(
                        protocol.read_frame(session.reader, self.max_frame),
                        self.idle_timeout,
                    )
            except ProtocolError as exc:
                # Oversized/garbled framing: answer, then drop the peer.
                # The request's seq is unknowable, so broadcast.
                await self._send(session, MessageType.ERROR,
                                 protocol.encode_error(exc),
                                 seq=(protocol.SEQ_BROADCAST if seq_frames
                                      else None))
                return
            self.meter.record_wire(5 + (4 if seq_frames else 0) + len(body))
            try:
                await self._dispatch(session, msg_type, seq, body)
            except ProtocolError as exc:
                await self._send(session, MessageType.ERROR,
                                 protocol.encode_error(exc), seq=seq)
                return  # protocol violations end the session
            except ReproError as exc:
                # Application errors are answered, not fatal.
                await self._send(session, MessageType.ERROR,
                                 protocol.encode_error(exc), seq=seq)

    async def _run_pipelined(self, session: _Session) -> None:
        """The v2 concurrent frame loop: read, spawn, keep reading.

        Each request runs as its own task; the session window semaphore
        (acquired *before* spawning) bounds in-flight requests, so a
        client pushing faster than the server serves parks here — the
        kernel's receive buffer, not the server's heap, absorbs the
        burst. The idle timeout only fires when nothing is in flight:
        a connection waiting on its own slow sweep is busy, not idle.
        """
        loop = asyncio.get_running_loop()
        inflight = set()
        read_task = None
        try:
            while True:
                if read_task is None:
                    read_task = loop.create_task(protocol.read_seq_frame(
                        session.reader, self.max_frame
                    ))
                # wait (unlike wait_for) never cancels the read on
                # timeout, so a frame header already consumed from the
                # stream is never lost to an idle check.
                done, _ = await asyncio.wait({read_task},
                                             timeout=self.idle_timeout)
                if not done:
                    if any(not task.done() for task in inflight):
                        continue  # busy serving, not idle
                    raise TimeoutError("session idle timeout")
                frame_task, read_task = read_task, None
                try:
                    msg_type, seq, body = frame_task.result()
                except ProtocolError as exc:
                    # Garbled framing: the stream is unusable and the
                    # request's seq unknowable — broadcast and drop.
                    await self._send(session, MessageType.ERROR,
                                     protocol.encode_error(exc),
                                     seq=protocol.SEQ_BROADCAST)
                    return
                self.meter.record_wire(9 + len(body))
                await session.window.acquire()
                task = loop.create_task(
                    self._serve_one(session, msg_type, seq, body)
                )
                inflight.add(task)
                task.add_done_callback(inflight.discard)
        except asyncio.CancelledError:  # server shutdown
            for task in inflight:
                task.cancel()
            raise
        finally:
            if read_task is not None:
                read_task.cancel()
                await asyncio.gather(read_task, return_exceptions=True)
            if inflight:
                # Graceful ends (peer EOF, idle, protocol error) let
                # in-flight requests finish: a mutation past its apply
                # must still record its dedup reply, or a retry on a
                # fresh connection would double-apply it.
                await asyncio.gather(*list(inflight),
                                     return_exceptions=True)

    async def _serve_one(self, session: _Session, msg_type: MessageType,
                         seq: int, body: bytes) -> None:
        """One pipelined request, as its own task."""
        try:
            try:
                if msg_type in protocol.WRITE_TYPES:
                    # One session's mutations apply in arrival order
                    # (reads flow around them freely).
                    async with session.mutation_lock:
                        await self._dispatch(session, msg_type, seq, body)
                else:
                    await self._dispatch(session, msg_type, seq, body)
            except ProtocolError as exc:
                await self._send(session, MessageType.ERROR,
                                 protocol.encode_error(exc), seq=seq)
                # Protocol violations end the session: closing the
                # transport wakes the read loop.
                session.writer.close()
            except ReproError as exc:
                await self._send(session, MessageType.ERROR,
                                 protocol.encode_error(exc), seq=seq)
        finally:
            session.window.release()

    async def _handshake(self, session: _Session) -> None:
        # The hello is capped well below max_frame: nothing is allocated
        # for the session until negotiation succeeds, and an oversized
        # hello earns a typed ERROR (drained first), not a silent drop.
        msg_type, body = await protocol.read_frame(
            session.reader, min(self.max_frame, protocol.HELLO_MAX_BYTES),
            drain_oversized=True,
        )
        self.meter.record_wire(5 + len(body))
        if msg_type is not MessageType.HELLO:
            raise ProtocolError("expected a HELLO frame first")
        hello = protocol.decode_json(body)
        session.version = protocol.negotiate(hello, self.preset)
        role = protocol.json_str(hello, "role")
        if role not in _CLIENT_ROLES:
            raise ProtocolError(f"unknown client role {role!r}")
        session.peer_role = role
        session.peer_name = protocol.json_str(hello, "name")
        await self._send(session, MessageType.HELLO_ACK, protocol.encode_json(
            {"version": session.version, "preset": self.preset,
             "server": self.name}
        ))

    async def _send(self, session: _Session, msg_type: MessageType,
                    body: bytes = b"", seq: int = None) -> None:
        """Write one reply frame, tagged with its request's seq.

        The write lock keeps pipelined replies frame-atomic: concurrent
        tasks may interleave *frames* on the wire in any order, but
        never bytes within one frame. ``seq=None`` writes a v1 frame.
        """
        try:
            async with session.write_lock:
                sent = await protocol.write_frame(session.writer, msg_type,
                                                  body, seq=seq)
        except (ConnectionError, OSError):
            return  # peer already gone; the read side will notice
        self.meter.record_wire(sent)

    # -- metering ---------------------------------------------------------

    def _meter_in(self, session: _Session, kind: str, payload) -> None:
        """A payload the peer sent us (peer → server)."""
        self.meter.record(session.peer_name, session.peer_role,
                          self.name, self.role, kind, payload)

    def _meter_out(self, session: _Session, kind: str, payload) -> None:
        """A payload we send the peer (server → peer)."""
        self.meter.record(self.name, self.role,
                          session.peer_name, session.peer_role, kind, payload)

    # -- request dispatch -------------------------------------------------

    async def _dispatch(self, session: _Session, msg_type: MessageType,
                        seq: int, body: bytes) -> None:
        handler = self._HANDLERS.get(msg_type)
        if handler is None:
            raise ProtocolError(
                f"unexpected frame type {msg_type.name} in a session"
            )
        if msg_type in protocol.WRITE_TYPES and self.read_only:
            if not await self._maybe_recover():
                raise UnavailableError(
                    "server is in read-only mode; writes are refused but "
                    "reads keep serving — retry later"
                )
        key = None
        inflight_future = None
        if (msg_type in protocol.MUTATION_TYPES
                and session.version is not None and session.version >= 2):
            key, body = protocol.unwrap_idempotency(body)
            while True:
                cached = self.dedup.get(key)
                if cached is not None:
                    # A retried mutation: replay the reply the lost
                    # original earned, without applying it again.
                    await self._send(session, cached[0], cached[1], seq=seq)
                    return
                inflight = self._inflight_keys.get(key)
                if inflight is None:
                    break
                # The original is mid-apply on another task (a retry
                # racing its own first attempt across connections):
                # park until it resolves, then replay its cached reply —
                # or fall through and apply, if the original failed
                # uncachably (e.g. the disk degraded mid-write).
                await asyncio.wait({inflight})
            inflight_future = asyncio.get_running_loop().create_future()
            self._inflight_keys[key] = inflight_future
        try:
            try:
                reply = await handler(self, session, seq, body)
            except ProtocolError:
                raise  # ends the session; nothing worth caching
            except UnavailableError:
                raise  # transient by definition: the retry must re-attempt
            except ReproError as exc:
                if key is not None:
                    self.dedup.put(
                        key, (MessageType.ERROR, protocol.encode_error(exc))
                    )
                raise
            except OSError as exc:
                if msg_type in protocol.WRITE_TYPES:
                    # The disk stopped accepting writes: degrade instead
                    # of corrupting state or hanging up. Not cached —
                    # once the disk recovers, the same key must be
                    # applicable.
                    self.read_only = True
                    self.degraded_reason = str(exc)
                    raise UnavailableError(
                        f"storage write failed ({exc}); server is now "
                        f"read-only — retry later"
                    ) from exc
                raise StorageError(f"storage read failed: {exc}") from exc
            else:
                # A mutating handler may return the (type, body) it
                # answered with, so a deduplicated retry replays that
                # exact reply (the sweep caches its SWEEP_DONE summary
                # this way); plain handlers return None and cache the
                # empty OK.
                if key is not None:
                    self.dedup.put(
                        key,
                        reply if reply is not None else (MessageType.OK, b""),
                    )
        finally:
            if inflight_future is not None:
                if self._inflight_keys.get(key) is inflight_future:
                    del self._inflight_keys[key]
                if not inflight_future.done():
                    inflight_future.set_result(None)

    async def _maybe_recover(self) -> bool:
        """Probe the way back from *degraded* read-only to writable.

        Configured read-only is policy, not damage: never recover from
        it. Degraded read-only probes the store's write path at most
        once per ``probe_interval`` (a refused-write stampede must not
        become a probe stampede); the first probe that succeeds flips
        the server back to writable and lets the refused write proceed.
        A retried mutation that degraded the server is therefore
        applied exactly once after recovery — its UnavailableError was
        never cached in the dedup table, so the retry's idempotency key
        is still fresh.
        """
        if self._configured_read_only:
            return False
        now = time.monotonic()
        if (self._last_probe is not None
                and now - self._last_probe < self.probe_interval):
            return False
        self._last_probe = now
        if not await self._offload(self.store.probe_writable):
            return False
        self.read_only = False
        self.degraded_reason = None
        self.meter.bump("server.readonly-recovered")
        return True

    async def _offload(self, fn, *args):
        """Run one blocking crypto/storage job on the offload thread."""
        if self.inline_crypto:
            return fn(*args)
        return await asyncio.get_running_loop().run_in_executor(
            self._cpu, fn, *args
        )

    async def _handle_ping(self, session, seq, body):
        await self._send(session, MessageType.PONG, body, seq=seq)

    async def _handle_health(self, session, seq, body):
        await self._send(session, MessageType.HEALTH_REPLY,
                         protocol.encode_json(self.health()), seq=seq)

    async def _handle_store_record(self, session, seq, body):
        # Decoding a multi-row record is pairing-substrate work (one
        # subgroup check per element): off the loop.
        record = await self._offload(StoredRecord.from_bytes, self.group,
                                     body)
        self._meter_in(session, "store-record", record)
        await self._offload(self.store.put, record)
        await self._send(session, MessageType.OK, seq=seq)

    async def _handle_fetch_record(self, session, seq, body):
        request = protocol.decode_json(body)
        record_id = protocol.json_str(request, "record")
        self._meter_in(session, "read-request", record_id)
        blob, size = await self._offload(self._fetch_record_blob, record_id)
        self.meter.record_sized(self.name, self.role, session.peer_name,
                                session.peer_role, "record-download", size)
        await self._send(session, MessageType.RECORD, blob, seq=seq)

    def _fetch_record_blob(self, record_id):
        """The fetch hot path (offload thread): serve the digest-verified
        raw blob, no per-element decode.

        The stored blob IS the served representation (``to_bytes`` round-
        trips byte-identically — the cluster's digest-based read-repair
        already depends on it), so the pairing-heavy subgroup-checked
        decode the old path paid per fetch is dropped entirely. Metering
        still needs the record's Table-II payload size, which only a
        decode knows — so the first fetch of a digest measures it via
        the *trusted* (no subgroup checks) decode and caches it; the hot
        Zipf head never decodes again.
        """
        digest = self.store.digest(record_id)
        blob = self.store.blobs.get(digest)
        size = self._fetch_sizes.get(digest)
        if size is None:
            size = StoredRecord.from_bytes(
                self.group, blob, validate=False
            ).payload_size_bytes(self.group)
            self._fetch_sizes[digest] = size
            while len(self._fetch_sizes) > 4096:
                self._fetch_sizes.popitem(last=False)
        else:
            self._fetch_sizes.move_to_end(digest)
        return blob, size

    async def _handle_fetch_component(self, session, seq, body):
        request = protocol.decode_json(body)
        record_id = protocol.json_str(request, "record")
        component_name = protocol.json_str(request, "component")
        # Same metered request string as the simulation's read path.
        self._meter_in(session, "read-request",
                       f"{record_id}/{component_name}")
        record = await self._offload(self.store.get, record_id)
        component = record.component(component_name)
        self._meter_out(session, "component-download", component)
        await self._send(session, MessageType.COMPONENT,
                         component.to_bytes(), seq=seq)

    async def _handle_list_records(self, session, seq, body):
        await self._send(session, MessageType.RECORD_IDS,
                         protocol.encode_json(
                             {"records": self.store.record_ids()}
                         ), seq=seq)

    async def _handle_delete_record(self, session, seq, body):
        request = protocol.decode_json(body)
        record_id = protocol.json_str(request, "record")
        self._meter_in(session, "delete-record", record_id)
        await self._offload(self.store.delete, record_id)
        await self._send(session, MessageType.OK, seq=seq)

    async def _handle_replace_component(self, session, seq, body):
        header_raw, component_raw = protocol.unpack_parts(body, 2)
        request = protocol.decode_json(header_raw)
        record_id = protocol.json_str(request, "record")
        component = await self._offload(StoredComponent.from_bytes,
                                        self.group, component_raw)
        self._meter_in(session, "update-component", component)
        await self._offload(self.store.replace_component, record_id,
                            component)
        await self._send(session, MessageType.OK, seq=seq)

    async def _handle_record_digest(self, session, seq, body):
        """Report a record's content digest (cluster scrub/repair probe).

        With ``verify`` the blob bytes are read back and checked against
        the digest (off the loop — it is a disk read), so ``ok: false``
        means "this replica cannot serve verified bytes and needs
        repair", while the digest itself names the version this node
        believes it holds.
        """
        request = protocol.decode_json(body)
        record_id = protocol.json_str(request, "record")
        digest = self.store.digest(record_id)
        ok = True
        if request.get("verify"):
            ok = await self._offload(self.store.verify_record, record_id)
        await self._send(session, MessageType.RECORD_DIGEST_REPLY,
                         protocol.encode_json(
                             {"record": record_id, "digest": digest,
                              "ok": ok}
                         ), seq=seq)

    async def _handle_repair_record(self, session, seq, body):
        """Accept known-good record bytes over a broken/missing copy.

        The body is raw :meth:`StoredRecord.to_bytes` — decoded (and
        subgroup-checked) off the loop before anything touches disk,
        then stored byte-preserving so the repaired replica lands
        digest-identical to its source.
        """
        record = await self._offload(StoredRecord.from_bytes, self.group,
                                     body)
        self._meter_in(session, "repair-record", record)
        await self._offload(self.store.put_record_bytes, record.record_id,
                            body)
        await self._send(session, MessageType.OK, seq=seq)

    async def _handle_put_authority_keys(self, session, seq, body):
        header_raw, apk_raw, pak_raw = protocol.unpack_parts(body, 3)
        request = protocol.decode_json(header_raw)
        aid = protocol.json_str(request, "aid")
        # Decode to validate and meter in simulation units; store raw.
        apk = decode_authority_public_key(self.group, apk_raw)
        pak = decode_public_attribute_keys(self.group, pak_raw)
        if apk.aid != aid or pak.aid != aid:
            raise ProtocolError("published keys disagree on the AID")
        self._meter_in(session, "authority-public-key", apk)
        self._meter_in(session, "public-attribute-keys", pak)
        self.store.put_authority_keys(
            aid, protocol.pack_parts(apk_raw, pak_raw)
        )
        await self._send(session, MessageType.OK, seq=seq)

    async def _handle_get_authority_keys(self, session, seq, body):
        request = protocol.decode_json(body)
        aid = protocol.json_str(request, "aid")
        blob = self.store.get_authority_keys(aid)
        apk_raw, pak_raw = protocol.unpack_parts(blob, 2)
        self._meter_out(session, "authority-public-key",
                        decode_authority_public_key(self.group, apk_raw))
        self._meter_out(session, "public-attribute-keys",
                        decode_public_attribute_keys(self.group, pak_raw))
        await self._send(session, MessageType.AUTHORITY_KEYS, blob, seq=seq)

    async def _handle_put_transform_key(self, session, seq, body):
        """Register a user's outsourced-decryption token.

        A naturally idempotent overwrite of the (uid, owner) slot — no
        idempotency envelope, no write gating (the registry is
        in-memory, so it works on read-only servers).
        """
        header_raw, key_raw = protocol.unpack_parts(body, 2)
        request = protocol.decode_json(header_raw)
        uid = protocol.json_str(request, "uid")
        # Decode (and subgroup-check) off the loop; transform keys are
        # the size of a full user key bundle.
        transform_key = await self._offload(decode_transform_key,
                                            self.group, key_raw)
        if transform_key.uid != uid:
            raise ProtocolError("transform key disagrees on the UID")
        self._meter_in(session, "transform-key", transform_key)
        cache_key = (transform_key.uid, transform_key.owner_id)
        self._transform_keys[cache_key] = transform_key
        self._transform_keys.move_to_end(cache_key)
        while len(self._transform_keys) > self.max_transform_keys:
            self._transform_keys.popitem(last=False)
            self.meter.bump("transform.cache.evict")
        self.meter.bump("transform.cache.put")
        await self._send(session, MessageType.OK, seq=seq)

    async def _handle_transform_fetch(self, session, seq, body):
        """Serve a component partially decrypted under a registered
        transform key: all the pairings happen here, the user finishes
        with one GT exponentiation and zero pairings.

        The reply carries only what finalization needs — the
        ciphertext's ``C`` component, the partial, and the sealed body —
        never the LSSS rows the transform already consumed.
        """
        request = protocol.decode_json(body)
        record_id = protocol.json_str(request, "record")
        component_name = protocol.json_str(request, "component")
        uid = protocol.json_str(request, "uid")
        self._meter_in(session, "read-request",
                       f"{record_id}/{component_name}")
        record = await self._offload(self.store.get, record_id)
        component = record.component(component_name)
        transform_key = self._transform_keys.get((uid, record.owner_id))
        if transform_key is None:
            self.meter.bump("transform.cache.miss")
            raise AuthorizationError(
                f"no transform key registered for user {uid!r} under "
                f"owner {record.owner_id!r}; send PUT_TRANSFORM_KEY first"
            )
        self.meter.bump("transform.cache.hit")
        self._transform_keys.move_to_end((uid, record.owner_id))
        ciphertext = component.abe_ciphertext
        partial = await self._transform_partial(ciphertext, transform_key)
        reply = protocol.pack_parts(
            protocol.encode_json({
                "record": record_id,
                "component": component_name,
                "id": ciphertext.ciphertext_id,
                "owner": record.owner_id,
            }),
            ciphertext.c.to_bytes(),
            partial.to_bytes(),
            component.data_ciphertext.to_bytes(),
        )
        self.meter.record_sized(
            self.name, self.role, session.peer_name, session.peer_role,
            "transformed-download",
            2 * self.group.gt_bytes + len(component.data_ciphertext),
        )
        await self._send(session, MessageType.TRANSFORMED, reply, seq=seq)

    async def _transform_partial(self, ciphertext, transform_key):
        """Queue one transform and await its partial decryption.

        Requests that pile up while a batch is on the offload thread
        drain as the *next* batch: concurrent in-flight transforms under
        one key share prepared pairings and a single batched final
        exponentiation (:func:`repro.core.outsourcing.
        server_transform_many`) instead of paying per-request pairing
        reductions.
        """
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._transform_queue.append((ciphertext, transform_key, future))
        if self._transform_task is None or self._transform_task.done():
            self._transform_task = loop.create_task(self._drain_transforms())
        return await future

    async def _drain_transforms(self):
        while self._transform_queue:
            batch, self._transform_queue = self._transform_queue, []
            by_key = {}
            for ciphertext, transform_key, future in batch:
                by_key.setdefault(id(transform_key), (transform_key, []))[
                    1
                ].append((ciphertext, future))
            for transform_key, items in by_key.values():
                pending = [(ciphertext, future) for ciphertext, future
                           in items if not future.done()]
                if not pending:
                    continue
                if len(pending) > 1:
                    self.meter.bump("transform.batch.amortized",
                                    len(pending) - 1)
                try:
                    partials = await self._offload(
                        server_transform_many, self.group,
                        [ciphertext for ciphertext, _ in pending],
                        transform_key,
                    )
                except ReproError:
                    # One bad ciphertext (e.g. a stale version) fails the
                    # whole batch call: re-run per item so its siblings
                    # still get their partials and only the bad request
                    # earns the typed error.
                    for ciphertext, future in pending:
                        try:
                            partial = await self._offload(
                                server_transform, self.group, ciphertext,
                                transform_key,
                            )
                        except BaseException as exc:
                            if not future.done():
                                future.set_exception(exc)
                        else:
                            if not future.done():
                                future.set_result(partial)
                    continue
                except BaseException as exc:
                    for _, future in pending:
                        if not future.done():
                            future.set_exception(exc)
                    continue
                for (_, future), partial in zip(pending, partials):
                    if not future.done():
                        future.set_result(partial)

    def _evict_stale_transform_keys(self, aid: str, to_version: int) -> None:
        """Drop every registered transform key the epoch roll outran.

        Called after any successful REENCRYPT/REENCRYPT_SWEEP: a key
        carrying a version below ``to_version`` for the re-keyed
        authority belongs to the pre-revocation epoch and must not be
        applied to re-encrypted ciphertexts (it would fail version
        validation anyway — eviction keeps the registry from serving
        guaranteed-stale tokens and forces revoked users back through
        key issuance).
        """
        if not self.evict_transform_keys:
            return
        stale = [
            cache_key
            for cache_key, transform_key in self._transform_keys.items()
            if aid in transform_key.transformed_secret
            and transform_key.transformed_secret[aid].version < to_version
        ]
        for cache_key in stale:
            del self._transform_keys[cache_key]
            self.meter.bump("transform.cache.evict")

    async def _handle_reencrypt(self, session, seq, body):
        id_raw, key_raw, info_raw = protocol.unpack_parts(body, 3)
        try:
            ciphertext_id = id_raw.decode("utf-8")
        except UnicodeDecodeError:
            raise ProtocolError("ciphertext id is not valid UTF-8") from None
        update_key, update_info = await self._offload(
            self._reencrypt_one, ciphertext_id, key_raw, info_raw
        )
        self._meter_in(session, "update-key", update_key)
        self._meter_in(session, "update-info", update_info)
        self._evict_stale_transform_keys(update_key.aid,
                                         update_key.to_version)
        await self._send(session, MessageType.OK, seq=seq)

    def _reencrypt_one(self, ciphertext_id, key_raw, info_raw):
        """The synchronous single-record ReEncrypt (offload thread)."""
        update_key = decode_update_key(self.group, key_raw)
        update_info = decode_update_info(self.group, info_raw)
        record_id, component_name = self.store.locate_ciphertext(
            ciphertext_id
        )
        record = self.store.get(record_id)
        component = record.component(component_name)
        updated = abe_reencrypt(
            self.group, component.abe_ciphertext, update_key, update_info
        )
        self.store.replace_component(record_id, StoredComponent(
            name=component_name,
            abe_ciphertext=updated,
            data_ciphertext=component.data_ciphertext,
        ))
        return update_key, update_info

    async def _handle_reencrypt_sweep(self, session, seq, body):
        """Bulk revocation: one UK, many UIs, chunked through the pool.

        Matching is by encoding-header peek against the ciphertext-id
        index — no group element decodes on the loop. Each chunk's
        output is applied with the no-decode ``replace_record_bytes``
        ordering (valid because ReEncrypt preserves every ciphertext id
        and component name), then a progress frame streams back. The
        final summary is both sent and returned, so a deduplicated
        retry replays it verbatim.
        """
        parts = protocol.unpack_all_parts(body)
        if len(parts) < 2:
            raise ProtocolError(
                "sweep body needs a header and an update key"
            )
        request = protocol.decode_json(parts[0])
        declared = request.get("n")
        uk_raw, ui_raws = parts[1], parts[2:]
        if (isinstance(declared, bool) or not isinstance(declared, int)
                or declared != len(ui_raws)):
            raise ProtocolError(
                "sweep header disagrees with the update-information count"
            )
        # Validate the update key once, off the loop; the workers then
        # decode it trusted (and cache it per process).
        update_key = await self._offload(decode_update_key, self.group,
                                         uk_raw)
        self._meter_in(session, "update-key", update_key)
        matched = {}   # record id -> [(component name, ui raw)]
        missing, errors = [], {}
        for index, ui_raw in enumerate(ui_raws):
            try:
                head = peek_update_info(ui_raw)
            except SchemeError as exc:
                errors[f"ui[{index}]"] = {"code": "scheme",
                                          "message": str(exc)}
                continue
            try:
                record_id, component_name = self.store.locate_ciphertext(
                    head["ct"]
                )
            except StorageError:
                missing.append(head["ct"])
                continue
            matched.setdefault(record_id, []).append((component_name,
                                                      ui_raw))
            self.meter.record_sized(
                session.peer_name, session.peer_role, self.name, self.role,
                "update-info", len(head["attrs"]) * self.group.g1_bytes,
            )
        record_ids = sorted(matched)
        loop = asyncio.get_running_loop()
        executor = self._cpu if self.pool.inline else self.pool.executor
        # Every chunk runs read → re-encrypt → write-back as its own
        # task: the store legs go through the offload thread (the one
        # thread ALL store mutations run on — see __init__) while the
        # pairing-heavy middle leg goes to the pool, so chunks pipeline
        # without ever touching the store from the event-loop thread.
        pending = [
            (chunk_ids, asyncio.ensure_future(self._sweep_chunk(
                loop, executor, uk_raw, chunk_ids, matched
            )))
            for chunk_ids in chunked(record_ids, self.sweep_chunk)
        ]
        updated, already_current = [], []
        done = 0
        try:
            for chunk_ids, future in pending:
                try:
                    results = await future
                except BrokenExecutor as exc:
                    raise UnavailableError(
                        f"crypto pool failed mid-sweep ({exc}); retry later"
                    ) from exc
                for _, item_results in results:
                    for ciphertext_id, status, code, message in item_results:
                        if status == UPDATED:
                            updated.append(ciphertext_id)
                        elif status == ALREADY_CURRENT:
                            already_current.append(ciphertext_id)
                        else:
                            errors[ciphertext_id] = {"code": code,
                                                     "message": message}
                done += len(chunk_ids)
                await self._send(
                    session, MessageType.SWEEP_PROGRESS,
                    protocol.encode_json({
                        "done": done,
                        "total": len(record_ids),
                        "updated": len(updated),
                        "already_current": len(already_current),
                        "errors": len(errors),
                        "missing": len(missing),
                    }),
                    seq=seq,
                )
        except BaseException:
            # Don't leave chunk tasks running (or their exceptions
            # unretrieved) behind a failed sweep.
            for _, future in pending:
                future.cancel()
            await asyncio.gather(*(future for _, future in pending),
                                 return_exceptions=True)
            raise
        # The durability barrier the per-chunk applies deferred: every
        # repoint lands on disk before SWEEP_DONE acknowledges the
        # sweep (a failed sweep leaves old blobs for gc instead).
        await self._offload(self.store.commit_replacements)
        self._evict_stale_transform_keys(update_key.aid,
                                         update_key.to_version)
        summary = protocol.encode_json({
            "requested": declared,
            "records": len(record_ids),
            "updated": sorted(updated),
            "already_current": sorted(already_current),
            "missing": sorted(missing),
            "errors": errors,
        })
        await self._send(session, MessageType.SWEEP_DONE, summary, seq=seq)
        return MessageType.SWEEP_DONE, summary

    async def _sweep_chunk(self, loop, executor, uk_raw, chunk_ids, matched):
        """Read, re-encrypt, and write back one sweep chunk.

        Both store legs run on the offload thread via :meth:`_offload`,
        keeping every store mutation in the process on that single
        thread (and the fsync-heavy replace off the event loop); only
        the pairing-heavy middle leg runs in the pool executor.
        """
        tasks = await self._offload(self._sweep_read_chunk, chunk_ids,
                                    matched)
        results = await loop.run_in_executor(
            executor, reencrypt_records_raw, self.group, uk_raw, tasks
        )
        await self._offload(self._sweep_apply_chunk, chunk_ids, results)
        return results

    def _sweep_read_chunk(self, chunk_ids, matched):
        return [
            (self.store.get_record_bytes(record_id), matched[record_id])
            for record_id in chunk_ids
        ]

    def _sweep_apply_chunk(self, chunk_ids, results):
        # Deferred group-commit: chunks rename into place with no sync
        # barrier; the sweep runs commit_replacements once before the
        # final summary, so SWEEP_DONE still means durable.
        self.store.replace_record_bytes_many(
            [
                (record_id, new_blob)
                for record_id, (new_blob, _) in zip(chunk_ids, results)
                if new_blob is not None
            ],
            durable=False,
        )

    async def _handle_stats(self, session, seq, body):
        await self._send(session, MessageType.STATS_REPLY,
                         protocol.encode_json(self.stats()), seq=seq)

    def health(self) -> dict:
        """The heartbeat payload: current mode and coarse liveness."""
        return {
            "server": self.name,
            "status": "read-only" if self.read_only else "ok",
            "read_only": self.read_only,
            "degraded": self.read_only and not self._configured_read_only,
            "records": len(self.store),
            "connections": self.connection_count,
            "workers": self.pool.workers,
        }

    def stats(self) -> dict:
        """A JSON-friendly snapshot of storage and traffic counters."""
        return {
            "server": self.name,
            "preset": self.preset,
            "records": len(self.store),
            "authorities": self.store.authority_ids(),
            "storage_bytes": self.store.storage_bytes(),
            "connections": self.connection_count,
            "read_only": self.read_only,
            "workers": self.pool.workers,
            "max_inflight": self.max_inflight,
            "dedup_entries": len(self.dedup),
            "dedup_hits": self.dedup.hits,
            "cache": (self.store.cache_stats()
                      if hasattr(self.store, "cache_stats") else {}),
            "transform_keys": len(self._transform_keys),
            "counters": {
                **self.meter.counter_summary("store."),
                **self.meter.counter_summary("transform."),
                **self.meter.counter_summary("decrypt."),
            },
            "wire_bytes": self.meter.wire_bytes,
            "channels": self.meter.channel_summary(),
            "by_kind": self.meter.bytes_by_kind(),
        }

    _HANDLERS = {
        MessageType.PING: _handle_ping,
        MessageType.HEALTH: _handle_health,
        MessageType.STORE_RECORD: _handle_store_record,
        MessageType.FETCH_RECORD: _handle_fetch_record,
        MessageType.FETCH_COMPONENT: _handle_fetch_component,
        MessageType.LIST_RECORDS: _handle_list_records,
        MessageType.DELETE_RECORD: _handle_delete_record,
        MessageType.REPLACE_COMPONENT: _handle_replace_component,
        MessageType.RECORD_DIGEST: _handle_record_digest,
        MessageType.REPAIR_RECORD: _handle_repair_record,
        MessageType.PUT_AUTHORITY_KEYS: _handle_put_authority_keys,
        MessageType.GET_AUTHORITY_KEYS: _handle_get_authority_keys,
        MessageType.PUT_TRANSFORM_KEY: _handle_put_transform_key,
        MessageType.TRANSFORM_FETCH: _handle_transform_fetch,
        MessageType.REENCRYPT: _handle_reencrypt,
        MessageType.REENCRYPT_SWEEP: _handle_reencrypt_sweep,
        MessageType.STATS: _handle_stats,
    }

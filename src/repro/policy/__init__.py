"""Access-policy language: AST, parser, LSSS matrices, threshold trees."""

from repro.policy.ast import And, Attribute, Or, PolicyNode, Threshold
from repro.policy.estimate import (
    PolicyEstimate,
    cheapest_threshold_method,
    estimate_policy,
)
from repro.policy.lsss import LsssMatrix, lsss_from_policy
from repro.policy.parser import parse

__all__ = [
    "PolicyNode",
    "Attribute",
    "And",
    "Or",
    "Threshold",
    "parse",
    "LsssMatrix",
    "lsss_from_policy",
    "PolicyEstimate",
    "estimate_policy",
    "cheapest_threshold_method",
]

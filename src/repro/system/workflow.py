"""End-to-end orchestration of the multi-authority cloud-storage system.

:class:`CloudStorageSystem` assembles the five entity types over one
byte-metered network and exposes the lifecycle operations of the paper:

* setup — add authorities, owners (key exchange with every AA) and users;
* key issuance — an AA verifies a user's attributes and sends a key;
* upload — an owner hybrid-encrypts a record and stores it (Fig. 2);
* read — a user downloads a component and decrypts it;
* revocation — the full two-phase protocol of Section V-C: ReKey at the
  AA, key distribution (update keys to survivors in the paper's variant,
  re-issued keys in the hardened variant), owner update information, and
  server-side ReEncrypt of every affected ciphertext.

This is the object the integration tests and the communication-cost
benchmark (Table IV) drive.
"""

from __future__ import annotations

from repro.core.authority import AttributeAuthority
from repro.core.ca import CertificateAuthority
from repro.core.owner import DataOwner
from repro.core.revocation import RekeyResult, rekey_hardened, rekey_standard
from repro.ec.params import TOY80, TypeAParams
from repro.errors import SchemeError
from repro.pairing.group import PairingGroup
from repro.system.entities import (
    AuthorityEntity,
    CaEntity,
    OwnerEntity,
    ServerEntity,
    UserEntity,
)
from repro.system.network import Network


class CloudStorageSystem:
    """One deployment: CA + server + any number of AAs, owners, users."""

    def __init__(self, params: TypeAParams = TOY80, seed=None):
        self.group = PairingGroup(params, seed=seed)
        self.network = Network(self.group)
        self.ca = CaEntity("CA", self.network, CertificateAuthority(self.group))
        self.server = ServerEntity("cloud", self.network)
        self.authorities = {}   # aid -> AuthorityEntity
        self.owners = {}        # owner id -> OwnerEntity
        self.users = {}         # uid -> UserEntity

    # -- setup ------------------------------------------------------------------

    def add_authority(self, aid: str, attributes) -> AuthorityEntity:
        core = AttributeAuthority(self.group, aid, attributes)
        entity = AuthorityEntity(f"AA:{aid}", self.network, core)
        self.ca.register_authority(entity)
        self.authorities[aid] = entity
        # Existing owners exchange keys with the new authority too.
        for owner in self.owners.values():
            entity.accept_owner_secret(owner)
            entity.publish_to_owner(owner)
        return entity

    def add_owner(self, owner_id: str) -> OwnerEntity:
        entity = OwnerEntity(
            f"owner:{owner_id}", self.network, DataOwner(self.group, owner_id)
        )
        self.ca.register_owner(entity)
        for authority in self.authorities.values():
            authority.accept_owner_secret(entity)
            authority.publish_to_owner(entity)
        self.owners[owner_id] = entity
        return entity

    def add_user(self, uid: str) -> UserEntity:
        entity = UserEntity(f"user:{uid}", self.network, uid)
        self.ca.register_user(entity)
        self.users[uid] = entity
        return entity

    # -- key issuance ----------------------------------------------------------------

    def issue_keys(self, uid: str, aid: str, attributes, owner_id: str):
        """The AA authenticates the user's attributes and sends a key."""
        user = self._user(uid)
        authority = self._authority(aid)
        if owner_id not in self.owners:
            raise SchemeError(f"unknown owner {owner_id!r}")
        return authority.issue_key(user, attributes, owner_id)

    def add_attribute(self, aid: str, attribute: str) -> str:
        """Extend an authority's attribute universe and republish keys."""
        authority = self._authority(aid)
        qualified = authority.core.add_attribute(attribute)
        for owner in self.owners.values():
            authority.publish_to_owner(owner)
        return qualified

    # -- data path ---------------------------------------------------------------------

    def upload(self, owner_id: str, record_id: str, components: dict):
        """Owner-side hybrid encryption and upload; see OwnerEntity.upload."""
        return self._owner(owner_id).upload(self.server, record_id, components)

    def read(self, uid: str, record_id: str, component_name: str) -> bytes:
        """User-side download + decryption of one component."""
        return self._user(uid).read(self.server, record_id, component_name)

    def update_component(self, owner_id: str, record_id: str,
                         component_name: str, plaintext: bytes, policy):
        """Owner replaces one component's data (fresh keys throughout)."""
        return self._owner(owner_id).update_component(
            self.server, record_id, component_name, plaintext, policy
        )

    def read_own(self, owner_id: str, record_id: str,
                 component_name: str) -> bytes:
        """Owner reads its own data via the ledger (no ABE keys)."""
        return self._owner(owner_id).read_own(
            self.server, record_id, component_name
        )

    def delete_record(self, owner_id: str, record_id: str) -> None:
        """Owner removes one of its records from the cloud."""
        self._owner(owner_id).delete_record(self.server, record_id)

    # -- revocation -----------------------------------------------------------------------

    def revoke(self, aid: str, revoked_uid: str, revoked_attributes,
               hardened: bool = False) -> RekeyResult:
        """Run the complete attribute-revocation protocol.

        Phase 1 (key update): ReKey at the AA; the revoked user receives
        its reduced keys; every other key-holding user receives the
        update key (paper) or a re-issued key (hardened); owners receive
        the update key.

        Phase 2 (data re-encryption): every owner computes update
        information for each affected ciphertext and the server runs
        ReEncrypt. Owners roll their cached public keys forward.
        """
        authority = self._authority(aid)
        revoked_user = self._user(revoked_uid)
        if hardened:
            result = rekey_hardened(authority.core, revoked_uid,
                                    revoked_attributes)
        else:
            result = rekey_standard(authority.core, revoked_uid,
                                    revoked_attributes)
        update_key = result.update_key

        # Revoked user: new (reduced) secret keys, or loss of the key.
        for owner_id, new_key in result.revoked_user_keys.items():
            authority.send(revoked_user, "user-secret-key", new_key)
            revoked_user.receive_secret_key(new_key)
        for owner_id in list(self.owners):
            if owner_id not in result.revoked_user_keys:
                revoked_user.drop_keys(aid, owner_id)

        # Survivors.
        if hardened:
            for (uid, owner_id), new_key in result.reissued_keys.items():
                survivor = self._user(uid)
                authority.send(survivor, "user-secret-key", new_key)
                survivor.receive_secret_key(new_key)
        else:
            for uid, user in self.users.items():
                if uid == revoked_uid or not user.has_keys_from(aid):
                    continue
                authority.send(user, "update-key", update_key)
                user.apply_update_key(update_key)

        # Owners + server (phase 2).
        for owner in self.owners.values():
            authority.send(owner, "update-key", update_key)
            owner.push_revocation_updates(
                self.server, update_key, include_uk2=not hardened
            )
        return result

    # -- lookups -------------------------------------------------------------------------------

    def _authority(self, aid: str) -> AuthorityEntity:
        try:
            return self.authorities[aid]
        except KeyError:
            raise SchemeError(f"unknown authority {aid!r}") from None

    def _owner(self, owner_id: str) -> OwnerEntity:
        try:
            return self.owners[owner_id]
        except KeyError:
            raise SchemeError(f"unknown owner {owner_id!r}") from None

    def _user(self, uid: str) -> UserEntity:
        try:
            return self.users[uid]
        except KeyError:
            raise SchemeError(f"unknown user {uid!r}") from None

"""Unit tests for the framed wire protocol."""

import asyncio

import pytest

from repro.errors import (
    AuthorizationError,
    IntegrityError,
    MathError,
    PolicyError,
    PolicyNotSatisfiedError,
    ProtocolError,
    RevocationError,
    SchemeError,
    StorageError,
)
from repro.service import protocol
from repro.service.protocol import (
    MessageType,
    code_for_exception,
    decode_frame_type,
    encode_error,
    encode_frame,
    hello_body,
    negotiate,
    pack_parts,
    read_frame,
    unpack_parts,
)

from .conftest import run


def read_framed(data: bytes, count: int = 1, **kwargs):
    """Feed raw bytes to a fresh StreamReader and read ``count`` frames."""
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        frames = [await read_frame(reader, **kwargs) for _ in range(count)]
        return frames[0] if count == 1 else frames

    return run(scenario())


# -- framing ------------------------------------------------------------------

def test_frame_roundtrip():
    msg_type, body = read_framed(
        encode_frame(MessageType.STORE_RECORD, b"payload bytes")
    )
    assert msg_type is MessageType.STORE_RECORD
    assert body == b"payload bytes"


def test_empty_body_frame_has_length_one():
    frame = encode_frame(MessageType.PING)
    assert frame[:4] == (1).to_bytes(4, "big")
    msg_type, body = read_framed(frame)
    assert msg_type is MessageType.PING
    assert body == b""


def test_read_frame_rejects_zero_length():
    with pytest.raises(ProtocolError, match="type byte"):
        read_framed((0).to_bytes(4, "big"))


def test_read_frame_rejects_oversized_frame():
    frame = encode_frame(MessageType.PING, b"x" * 100)
    with pytest.raises(ProtocolError, match="maximum"):
        read_framed(frame, max_frame=16)


def test_encode_frame_enforces_size_cap(monkeypatch):
    monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 8)
    with pytest.raises(ProtocolError, match="exceeds"):
        encode_frame(MessageType.PING, b"x" * 8)


def test_read_frame_rejects_unknown_type():
    frame = (2).to_bytes(4, "big") + bytes([0xEE]) + b"x"
    with pytest.raises(ProtocolError, match="unknown frame type"):
        read_framed(frame)


def test_decode_frame_type_known():
    assert decode_frame_type(0x11) is MessageType.FETCH_RECORD


def test_truncated_frame_raises_incomplete_read():
    frame = encode_frame(MessageType.RECORD, b"long body here")
    with pytest.raises(asyncio.IncompleteReadError):
        read_framed(frame[:7])


def test_two_frames_back_to_back():
    first, second = read_framed(
        encode_frame(MessageType.PING, b"a")
        + encode_frame(MessageType.PONG, b"b"),
        count=2,
    )
    assert first == (MessageType.PING, b"a")
    assert second == (MessageType.PONG, b"b")


# -- multi-part bodies --------------------------------------------------------

def test_pack_unpack_parts_roundtrip():
    parts = [b"", b"one", b"\x00" * 17]
    assert unpack_parts(pack_parts(*parts), 3) == parts


def test_unpack_parts_rejects_truncated_length_prefix():
    with pytest.raises(ProtocolError, match="truncated"):
        unpack_parts(b"\x00\x00", 1)


def test_unpack_parts_rejects_truncated_part():
    body = (10).to_bytes(4, "big") + b"short"
    with pytest.raises(ProtocolError, match="truncated"):
        unpack_parts(body, 1)


def test_unpack_parts_rejects_trailing_bytes():
    body = pack_parts(b"one") + b"extra"
    with pytest.raises(ProtocolError, match="trailing"):
        unpack_parts(body, 1)


def test_unpack_parts_rejects_missing_part():
    with pytest.raises(ProtocolError, match="truncated"):
        unpack_parts(pack_parts(b"only"), 2)


# -- JSON bodies --------------------------------------------------------------

def test_decode_json_rejects_non_object():
    with pytest.raises(ProtocolError, match="JSON object"):
        protocol.decode_json(b"[1,2]")


def test_decode_json_rejects_invalid_utf8():
    with pytest.raises(ProtocolError, match="not valid JSON"):
        protocol.decode_json(b"\xff\xfe")


def test_json_str_rejects_missing_and_wrong_type():
    with pytest.raises(ProtocolError, match="'record'"):
        protocol.json_str({}, "record")
    with pytest.raises(ProtocolError, match="'record'"):
        protocol.json_str({"record": 7}, "record")


# -- error frames -------------------------------------------------------------

@pytest.mark.parametrize("exc, code", [
    (StorageError("x"), "storage"),
    (SchemeError("x"), "scheme"),
    # RevocationError subclasses SchemeError; must keep its own code.
    (RevocationError("x"), "revocation"),
    (PolicyError("x"), "policy"),
    (PolicyNotSatisfiedError("x"), "policy-not-satisfied"),
    (AuthorizationError("x"), "authorization"),
    (IntegrityError("x"), "integrity"),
    (MathError("x"), "math"),
    (ProtocolError("x"), "protocol"),
])
def test_error_code_roundtrip(exc, code):
    assert code_for_exception(exc) == code
    with pytest.raises(type(exc), match="boom"):
        protocol.raise_error(encode_error(type(exc)("boom")))


def test_unknown_error_code_falls_back_to_protocol_error():
    body = protocol.encode_json({"code": "from-the-future", "message": "m"})
    with pytest.raises(ProtocolError, match="m"):
        protocol.raise_error(body)


def test_error_frame_with_garbage_body():
    with pytest.raises(ProtocolError):
        protocol.raise_error(b"not json at all")


# -- hello negotiation --------------------------------------------------------

def test_negotiate_picks_highest_common_version():
    hello = protocol.decode_json(
        hello_body("TOY80", "user", "bob", versions=(1, 2, 9))
    )
    assert negotiate(hello, "TOY80", supported=(1, 2)) == 2


def test_negotiate_rejects_no_common_version():
    hello = protocol.decode_json(
        hello_body("TOY80", "user", "bob", versions=(99,))
    )
    with pytest.raises(ProtocolError, match="no common protocol version"):
        negotiate(hello, "TOY80", supported=(1,))


def test_negotiate_rejects_preset_mismatch():
    hello = protocol.decode_json(hello_body("SS512", "user", "bob"))
    with pytest.raises(ProtocolError, match="preset mismatch"):
        negotiate(hello, "TOY80")


def test_negotiate_rejects_malformed_version_list():
    for versions in ({}, "1", [True], ["1"]):
        with pytest.raises(ProtocolError, match="versions"):
            negotiate({"versions": versions, "preset": "TOY80"}, "TOY80")


# -- v2 sequenced frames ------------------------------------------------------

def read_seq_framed(data: bytes, **kwargs):
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await protocol.read_seq_frame(reader, **kwargs)

    return run(scenario())


def test_seq_frame_roundtrip():
    frame = encode_frame(MessageType.PONG, b"body", seq=7)
    msg_type, seq, body = read_seq_framed(frame)
    assert msg_type is MessageType.PONG
    assert seq == 7
    assert body == b"body"


def test_seq_frame_broadcast_sentinel_roundtrips():
    frame = encode_frame(MessageType.ERROR, b"", seq=protocol.SEQ_BROADCAST)
    _, seq, _ = read_seq_framed(frame)
    assert seq == protocol.SEQ_BROADCAST


def test_seq_frame_too_short_for_sequence():
    # A v1 frame (no seq) read through the v2 parser must not crash
    # with an index error but raise a typed protocol error.
    with pytest.raises(ProtocolError, match="sequence"):
        read_seq_framed(encode_frame(MessageType.PING, b"ab"))


def test_seq_is_masked_to_32_bits():
    frame = encode_frame(MessageType.PING, b"", seq=0x1_0000_0003)
    _, seq, _ = read_seq_framed(frame)
    assert seq == 3


# -- idempotency envelope -----------------------------------------------------

def test_idempotency_envelope_roundtrip():
    key, inner = protocol.unwrap_idempotency(
        protocol.wrap_idempotency("abc123", b"\x00payload")
    )
    assert key == "abc123"
    assert inner == b"\x00payload"


def test_idempotency_rejects_bad_keys():
    with pytest.raises(ProtocolError, match="empty or oversized"):
        protocol.unwrap_idempotency(protocol.wrap_idempotency("", b"x"))
    with pytest.raises(ProtocolError, match="empty or oversized"):
        protocol.unwrap_idempotency(
            protocol.wrap_idempotency("k" * 201, b"x")
        )
    with pytest.raises(ProtocolError, match="UTF-8"):
        protocol.unwrap_idempotency(pack_parts(b"\xff\xfe", b"x"))


def test_idempotency_rejects_truncated_envelope():
    with pytest.raises(ProtocolError, match="truncated"):
        protocol.unwrap_idempotency(b"\x00\x00\x00\x09abc")


# -- oversized-frame draining -------------------------------------------------

def test_drain_oversized_leaves_stream_aligned():
    """With drain_oversized the declared payload is consumed, so the
    next frame on the stream is still readable after the error."""
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(encode_frame(MessageType.PING, b"x" * 100)
                         + encode_frame(MessageType.PONG, b"next"))
        reader.feed_eof()
        with pytest.raises(ProtocolError, match="maximum"):
            await read_frame(reader, 16, drain_oversized=True)
        return await read_frame(reader)

    assert run(scenario()) == (MessageType.PONG, b"next")


# -- unavailable error code ---------------------------------------------------

def test_unavailable_error_code_roundtrip():
    from repro.errors import StorageError, UnavailableError

    # UnavailableError subclasses StorageError but must keep its own
    # code so clients classify it as retryable.
    assert code_for_exception(UnavailableError("x")) == "unavailable"
    assert code_for_exception(StorageError("x")) == "storage"
    with pytest.raises(UnavailableError, match="read-only"):
        protocol.raise_error(encode_error(UnavailableError("read-only")))

"""Revocation orchestration: the paper's protocol and a hardened variant.

The paper's ReKey (implemented in
:meth:`repro.core.authority.AttributeAuthority.rekey`) broadcasts the
update key ``UK = (UK1, UK2 = α̃/α)`` to every non-revoked user and to
the server. Later analyses of this design observed that ``UK2`` is a
*global* secret ratio: a revoked user colluding with any non-revoked
user — or with the server, which also receives ``UK2`` in the paper's
protocol even though ReEncrypt only ever uses ``UK1`` and ``UI`` — can
raise its stale attribute keys to ``UK2`` and fully recover revoked
capabilities (see DESIGN.md §3).

:func:`rekey_hardened` is the natural repair at an explicit cost:

* non-revoked users receive freshly re-issued attribute-key components
  from the AA instead of ``UK2`` (O(affected users) exponentiations at
  the AA instead of an O(1) broadcast);
* the server receives only ``UK1`` and the update information, which is
  all ReEncrypt needs;
* ``UK2`` travels only to owners (over the same secure channel as
  ``SK_o``), who need it to roll their cached public keys forward.

``bench_ablation_revocation`` quantifies the trade.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.authority import AttributeAuthority
from repro.core.keys import UpdateKey


@dataclass(frozen=True)
class RekeyResult:
    """Everything one revocation produces, ready for distribution.

    ``revoked_user_keys``: owner id → the revoked user's new (reduced)
    secret key; empty for owners where no attributes remain.
    ``update_key``: the full ``(UK1, UK2)`` bundle. In the paper's
    protocol it goes to every non-revoked user, every owner, and the
    server; in the hardened protocol only to owners (and ``UK1``+``UI``
    to the server).
    ``reissued_keys``: ``None`` for the paper's protocol; for the
    hardened protocol, {(uid, owner id): fresh secret key} for every
    non-revoked holder.
    """

    aid: str
    revoked_uid: str
    revoked_user_keys: dict
    update_key: UpdateKey
    reissued_keys: dict = None

    @property
    def is_hardened(self) -> bool:
        return self.reissued_keys is not None


def rekey_standard(authority: AttributeAuthority, revoked_uid: str,
                   revoked_attributes) -> RekeyResult:
    """The paper's revocation exactly (Section V-C, Phase 1)."""
    new_keys, update_key = authority.rekey(revoked_uid, revoked_attributes)
    return RekeyResult(
        aid=authority.aid,
        revoked_uid=revoked_uid,
        revoked_user_keys=new_keys,
        update_key=update_key,
    )


def rekey_hardened(authority: AttributeAuthority, revoked_uid: str,
                   revoked_attributes) -> RekeyResult:
    """Revocation without handing ``UK2`` to users or the server.

    Runs the standard ReKey, then re-issues every other holder's secret
    key under the new version key directly. The returned
    ``reissued_keys`` replace the users' old keys wholesale; no client-
    side update step is needed (or possible — users never see ``UK2``).
    """
    new_keys, update_key = authority.rekey(revoked_uid, revoked_attributes)
    reissued = {}
    for (uid, owner_id), held in authority.issued_registry().items():
        if uid == revoked_uid:
            continue
        unqualified = {name.split(":", 1)[1] for name in held}
        public_key = authority.user_public_key_on_file(uid)
        reissued[(uid, owner_id)] = authority.keygen(
            public_key, unqualified, owner_id
        )
    return RekeyResult(
        aid=authority.aid,
        revoked_uid=revoked_uid,
        revoked_user_keys=new_keys,
        update_key=update_key,
        reissued_keys=reissued,
    )


def strip_uk2(update_key: UpdateKey) -> UpdateKey:
    """The server's view of the update key in the hardened protocol.

    ReEncrypt only uses ``UK1``; setting ``UK2 = 1`` documents that the
    server received no usable ratio (1 is the multiplicative identity,
    not the real α̃/α, which is ≠ 1 whenever α̃ ≠ α).
    """
    return UpdateKey(
        aid=update_key.aid,
        uk1=dict(update_key.uk1),
        uk2=1,
        from_version=update_key.from_version,
        to_version=update_key.to_version,
    )

"""Benchmark: the parallel batch engine vs the sequential ReEncrypt path.

Two phases, both gated on bit-identical outputs:

* **Phase A — amortized pairing, no pool.** The same batch of
  ciphertexts re-encrypted (a) the paper's way, one cold
  ``e(UK1, C')`` Tate pairing per ciphertext, and (b) through
  :func:`repro.parallel.batch.batch_outcomes`, which prepares the
  Miller lines of the fixed ``UK1`` argument once, replays them per
  ciphertext and batches the final exponentiations behind one modular
  inversion. Every output byte must match; the speedup is pure
  amortization (pool size 0).

* **Phase B — bulk sweep over a live service.** A ≥200-record TOY80
  store revoked from identical starting states: with the sequential
  per-ciphertext ``REENCRYPT`` loop
  (:meth:`OwnerClient.push_revocation_updates`, one fully-validated
  round trip per ciphertext) and with a single ``REENCRYPT_SWEEP``
  request against an auto-sized service pool. Each leg runs cold and
  warm; the stores are file-copies of each other and the owner ledger
  is restored between runs, so the resulting record files must be
  byte-identical, and the warm sweep must be ≥6x faster than the warm
  sequential loop (gate skipped with ``--smoke``).

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_sweep.py
    PYTHONPATH=src python benchmarks/bench_parallel_sweep.py --smoke \
        --out /tmp/smoke.json

Writes ``BENCH_parallel_sweep.json`` (or ``--out``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.core.reencrypt import reencrypt
from repro.core.revocation import rekey_standard
from repro.core.scheme import MultiAuthorityABE
from repro.ec.params import TOY80
from repro.parallel.batch import UPDATED, batch_outcomes

from bench_common import arith_metadata, counter_summary

SPEEDUP_GATE = 6.0
# One service-side chunk per sweep at the bench's record count: the
# chunked pipeline exists for progress reporting and bounded memory on
# big stores, but every extra chunk costs offload hops and batch-call
# constants, so the bench runs the whole sweep as a single batch.
SWEEP_CHUNK = 256


# -- phase A: amortized pairing at pool size 0 --------------------------------

def phase_a(n_ciphertexts: int) -> dict:
    scheme = MultiAuthorityABE(TOY80, seed=0xA3A)
    hospital = scheme.setup_authority("hospital", ["doctor", "nurse"])
    owner = scheme.setup_owner("alice", [hospital])
    victim = scheme.register_user("victim")
    hospital.keygen(victim, ["doctor"], "alice")

    ciphertexts = [
        owner.encrypt(scheme.random_message(), "hospital:doctor",
                      ciphertext_id=f"ct-{index:04d}")
        for index in range(n_ciphertexts)
    ]
    update_key = rekey_standard(hospital, "victim", ["doctor"]).update_key
    update_infos = [owner.update_info(ct, update_key) for ct in ciphertexts]
    group = scheme.group

    start = time.perf_counter()
    naive = [
        reencrypt(group, ct, update_key, ui).to_bytes()
        for ct, ui in zip(ciphertexts, update_infos)
    ]
    naive_seconds = time.perf_counter() - start

    start = time.perf_counter()
    outcomes = batch_outcomes(group, ciphertexts, update_key, update_infos)
    amortized_seconds = time.perf_counter() - start

    assert all(o.status == UPDATED for o in outcomes)
    identical = [o.ciphertext.to_bytes() for o in outcomes] == naive
    return {
        "ciphertexts": n_ciphertexts,
        "naive_seconds": round(naive_seconds, 6),
        "amortized_pool0_seconds": round(amortized_seconds, 6),
        "amortized_speedup_pool0": round(naive_seconds / amortized_seconds, 3),
        "outputs_bit_identical": identical,
    }


# -- phase B: sequential REENCRYPT loop vs one pooled sweep -------------------

def _snapshot_owner(owner):
    return (dict(owner._records), dict(owner._authority_keys),
            dict(owner._attribute_keys))


def _restore_owner(owner, snapshot):
    owner._records, owner._authority_keys, owner._attribute_keys = (
        dict(snapshot[0]), dict(snapshot[1]), dict(snapshot[2])
    )


async def _populate(group, scenario, root, n_records: int) -> list:
    from repro.service.server import StorageService
    from repro.service.store import RecordStore

    service = StorageService(group, RecordStore(root, group),
                             host="127.0.0.1", port=0)
    await service.start()
    owner = await _owner_client(scenario, service)
    record_ids = []
    try:
        for index in range(n_records):
            record_id = f"rec-{index:04d}"
            await owner.upload(record_id, {
                "note": (f"payload {index}".encode("utf-8"),
                         "hospital:doctor"),
            })
            record_ids.append(record_id)
    finally:
        await owner.close()
        await service.stop()
    return record_ids


async def _owner_client(scenario, service):
    from repro.service.client import OwnerClient, ServiceConnection

    conn = ServiceConnection(scenario["group"], service.host, service.port,
                             role="owner", name="owner:alice", timeout=60.0)
    return OwnerClient(await conn.connect(), scenario["owner"])


def _build_scenario():
    from repro.core.authority import AttributeAuthority
    from repro.core.ca import CertificateAuthority
    from repro.core.owner import DataOwner
    from repro.pairing.group import PairingGroup

    group = PairingGroup(TOY80, seed=0xB5B)
    ca = CertificateAuthority(group)
    aa = AttributeAuthority(group, "hospital", ["doctor", "nurse"])
    ca.register_authority("hospital")
    owner = DataOwner(group, "alice")
    ca.register_owner("alice")
    aa.register_owner(owner.secret_key)
    owner.learn_authority(aa.authority_public_key(),
                          aa.public_attribute_keys())
    victim = ca.register_user("victim")
    aa.keygen(victim, ["doctor"], "alice")
    return {"group": group, "ca": ca, "aa": aa, "owner": owner}


async def _run_sequential(scenario, root) -> float:
    from repro.service.server import StorageService
    from repro.service.store import RecordStore

    group = scenario["group"]
    service = StorageService(group, RecordStore(root, group),
                             host="127.0.0.1", port=0)
    await service.start()
    owner = await _owner_client(scenario, service)
    try:
        start = time.perf_counter()
        updated = await owner.push_revocation_updates(
            scenario["update_key"]
        )
        elapsed = time.perf_counter() - start
    finally:
        await owner.close()
        await service.stop()
    assert len(updated) == scenario["n_records"]
    return elapsed


async def _run_sweep(scenario, root, workers, sweep_chunk: int = SWEEP_CHUNK) -> float:
    from repro.service.server import StorageService
    from repro.service.store import RecordStore

    group = scenario["group"]
    service = StorageService(group, RecordStore(root, group),
                             host="127.0.0.1", port=0, workers=workers,
                             sweep_chunk=sweep_chunk)
    await service.start()
    owner = await _owner_client(scenario, service)
    try:
        start = time.perf_counter()
        summary = await owner.sweep_revocation(scenario["update_key"])
        elapsed = time.perf_counter() - start
    finally:
        await owner.close()
        await service.stop()
    assert len(summary["updated"]) == scenario["n_records"]
    assert not summary["errors"] and not summary["missing"]
    return elapsed


def _record_blobs(group, root, record_ids) -> list:
    from repro.service.store import RecordStore

    store = RecordStore(root, group)
    return [store.get_record_bytes(record_id) for record_id in record_ids]


def phase_b(n_records: int, workers: int) -> dict:
    """Each leg runs several times from identical store copies: once
    cold (first touch of every code path and cache) and then warm
    (generator tables, prepared pairings and the page cache primed —
    the steady state a long-lived service sweeps in). The gate compares
    the best warm run of each leg — the min is the standard noise
    estimator (cf. ``timeit``): scheduling hiccups and writeback stalls
    only ever make a run *slower*. Cold numbers and every warm sample
    are reported alongside. ``os.sync()`` before every timed run keeps
    setup writeback (populate + copytree) out of the measured
    durability barriers."""
    scenario = _build_scenario()
    group = scenario["group"]
    warm_runs = 3
    with tempfile.TemporaryDirectory() as base:
        root_seed = os.path.join(base, "store-seed")
        record_ids = asyncio.run(
            _populate(group, scenario, root_seed, n_records)
        )
        update_key = rekey_standard(
            scenario["aa"], "victim", ["doctor"]
        ).update_key
        scenario["update_key"] = update_key
        scenario["n_records"] = n_records
        snapshot = _snapshot_owner(scenario["owner"])

        def fresh_root(name):
            root = os.path.join(base, name)
            shutil.copytree(root_seed, root)
            _restore_owner(scenario["owner"], snapshot)
            os.sync()
            return root

        sequential_runs = []
        for run in range(1 + warm_runs):
            root_seq = fresh_root(f"seq-{run}")
            sequential_runs.append(
                asyncio.run(_run_sequential(scenario, root_seq))
            )
        sweep_runs = []
        for run in range(1 + warm_runs):
            root_sweep = fresh_root(f"sweep-{run}")
            sweep_runs.append(
                asyncio.run(_run_sweep(scenario, root_sweep, workers))
            )

        identical = (
            _record_blobs(group, root_seq, record_ids)
            == _record_blobs(group, root_sweep, record_ids)
        )
    sequential_seconds = min(sequential_runs[1:])
    sweep_seconds = min(sweep_runs[1:])
    return {
        "records": n_records,
        "workers": workers,
        "sweep_chunk": SWEEP_CHUNK,
        "sequential_cold_seconds": round(sequential_runs[0], 6),
        "sequential_warm_samples": [round(t, 6)
                                    for t in sequential_runs[1:]],
        "sequential_seconds": round(sequential_seconds, 6),
        "sweep_cold_seconds": round(sweep_runs[0], 6),
        "sweep_warm_samples": [round(t, 6) for t in sweep_runs[1:]],
        "sweep_seconds": round(sweep_seconds, 6),
        "speedup": round(sequential_seconds / sweep_seconds, 3),
        "outputs_bit_identical": identical,
        "op_counts": counter_summary(group),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small workload, no speedup gate (CI)")
    parser.add_argument("--records", type=int, default=None,
                        help="phase-B store size (default 200, smoke 24)")
    parser.add_argument("--workers", default="auto",
                        help='pool size for the sweep service: an int, '
                             'or "auto" for cores-1 (inline on 1-core '
                             'machines)')
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(__file__), os.pardir, "BENCH_parallel_sweep.json"))
    args = parser.parse_args(argv)

    workers = args.workers if args.workers == "auto" else int(args.workers)
    n_phase_a = 16 if args.smoke else 64
    n_records = args.records or (24 if args.smoke else 200)

    print(f"phase A: {n_phase_a} ciphertexts, naive vs amortized (pool 0)",
          flush=True)
    result_a = phase_a(n_phase_a)
    print(f"  naive {result_a['naive_seconds']:.3f}s, amortized "
          f"{result_a['amortized_pool0_seconds']:.3f}s -> "
          f"{result_a['amortized_speedup_pool0']}x, bit-identical: "
          f"{result_a['outputs_bit_identical']}", flush=True)

    print(f"phase B: {n_records} records, sequential loop vs "
          f"sweep (workers={workers})", flush=True)
    result_b = phase_b(n_records, workers)
    print(f"  sequential {result_b['sequential_seconds']:.3f}s (cold "
          f"{result_b['sequential_cold_seconds']:.3f}s), sweep "
          f"{result_b['sweep_seconds']:.3f}s (cold "
          f"{result_b['sweep_cold_seconds']:.3f}s) -> "
          f"{result_b['speedup']}x warm, "
          f"bit-identical: {result_b['outputs_bit_identical']}", flush=True)

    from repro.pairing.group import PairingGroup

    report = {
        "preset": "TOY80",
        "smoke": args.smoke,
        "arithmetic": arith_metadata(PairingGroup(TOY80, seed=0xB5B)),
        "phase_a": result_a,
        "phase_b": result_b,
        "outputs_bit_identical": (
            result_a["outputs_bit_identical"]
            and result_b["outputs_bit_identical"]
        ),
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {os.path.abspath(args.out)}", flush=True)

    if not report["outputs_bit_identical"]:
        print("FAIL: parallel outputs diverge from the sequential path",
              flush=True)
        return 1
    if result_a["amortized_speedup_pool0"] <= 1.0:
        print("FAIL: amortized path is not beating the naive pairing loop",
              flush=True)
        return 1
    if not args.smoke and result_b["speedup"] < SPEEDUP_GATE:
        print(f"FAIL: sweep speedup {result_b['speedup']}x is below the "
              f"{SPEEDUP_GATE}x gate", flush=True)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

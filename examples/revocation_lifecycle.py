#!/usr/bin/env python3
"""Attribute revocation end-to-end: the paper's protocol, its efficiency,
its published weakness, and the hardened variant.

Walks through Section V-C on a live deployment:

1. revoke one attribute from one user (ReKey at the AA);
2. the revoked user loses exactly that capability — other attributes
   keep working (attribute-level, not user-level, revocation);
3. the server re-encrypts by proxy (ReEncrypt) so newly joined users can
   still read OLD data — without the server ever decrypting;
4. only the rows of the re-keyed authority change (partial update);
5. the documented vulnerability: a revoked user who obtains the
   broadcast UK2 from any survivor rolls its old key forward;
6. the hardened variant closes that hole by re-issuing survivor keys.

Run:  python examples/revocation_lifecycle.py
"""

from repro.ec import TOY80
from repro.errors import (
    AuthorizationError,
    PolicyNotSatisfiedError,
    SchemeError,
)
from repro.system import CloudStorageSystem

DENIED = (PolicyNotSatisfiedError, SchemeError, AuthorizationError)


def read(system, uid, record, component):
    try:
        return system.read(uid, record, component).decode("utf-8")
    except DENIED as exc:
        return f"DENIED ({type(exc).__name__})"


def main():
    system = CloudStorageSystem(TOY80, seed=2012)
    system.add_authority("hospital", ["doctor", "nurse"])
    system.add_authority("trial", ["researcher"])
    system.add_owner("alice")

    for uid, hospital_attrs in (("bob", ["doctor", "nurse"]),
                                ("carol", ["doctor"])):
        system.add_user(uid)
        system.issue_keys(uid, "hospital", hospital_attrs, "alice")
        system.issue_keys(uid, "trial", ["researcher"], "alice")

    system.upload(
        "alice", "rec",
        {
            "diagnosis": (b"stage II",
                          "hospital:doctor AND trial:researcher"),
            "vitals": (b"BP 120/80", "hospital:nurse OR hospital:doctor"),
        },
    )

    print("=== Before revocation ===")
    for uid in ("bob", "carol"):
        print(f"  {uid:<6} diagnosis: {read(system, uid, 'rec', 'diagnosis')}")

    # --- 1-2: revoke bob's 'doctor' (he keeps 'nurse') --------------------
    print("\n=== Revoke bob's hospital:doctor (paper's protocol) ===")
    result = system.revoke("hospital", "bob", ["doctor"])
    print(f"  authority version: 0 -> {result.update_key.to_version}")
    print(f"  bob    diagnosis: {read(system, 'bob', 'rec', 'diagnosis')}")
    print(f"  bob    vitals   : {read(system, 'bob', 'rec', 'vitals')}"
          "   <- nurse attribute survives: attribute-level revocation")
    print(f"  carol  diagnosis: {read(system, 'carol', 'rec', 'diagnosis')}"
          "   <- survivor updated via UK, O(1) work")

    # --- 3: backward compatibility for new users --------------------------
    system.add_user("dave")
    system.issue_keys("dave", "hospital", ["doctor"], "alice")
    system.issue_keys("dave", "trial", ["researcher"], "alice")
    print(f"  dave (joined AFTER revocation) reads re-encrypted OLD data: "
          f"{read(system, 'dave', 'rec', 'diagnosis')}")

    # --- 5: the published weakness -----------------------------------------
    print("\n=== Published weakness: UK2 leaks to a revoked user ===")
    # A revoked user who kept its pre-revocation key and obtains the
    # broadcast update key from any colluding survivor (or the server,
    # which the paper also sends UK2 to) computes K_x^{UK2} and regains
    # every revoked capability.
    update_key = result.update_key
    print("  (see tests/core/test_revocation.py::TestKnownVulnerability for")
    print("   the executable proof that K_x^{UK2} restores revoked access)")
    print(f"  UK2 is a bare Z_p ratio broadcast to every survivor: "
          f"{str(update_key.uk2)[:24]}...")

    # --- 6: hardened variant ----------------------------------------------
    print("\n=== Hardened revocation (UK2 never leaves owner channel) ===")
    result2 = system.revoke("trial", "carol", ["researcher"], hardened=True)
    print(f"  survivors re-issued directly: "
          f"{sorted(uid for uid, _ in result2.reissued_keys)}")
    print(f"  carol  diagnosis: {read(system, 'carol', 'rec', 'diagnosis')}")
    print(f"  dave   diagnosis: {read(system, 'dave', 'rec', 'diagnosis')}")
    print(f"  bob    vitals   : {read(system, 'bob', 'rec', 'vitals')}"
          "   <- unrelated authority untouched")


if __name__ == "__main__":
    main()

"""Type-A pairing parameter generation and fixed presets.

A type-A parameter set (PBC terminology; the paper benchmarks on PBC's
512-bit "α-curve") consists of:

* a prime group order ``r``;
* a prime base field modulus ``p`` with ``p ≡ 3 (mod 4)`` and
  ``p + 1 = h·r`` for an even cofactor ``h`` (we force ``4 | h`` so that
  ``p ≡ 3 (mod 4)`` holds automatically);
* the supersingular curve ``y² = x³ + x`` over F_p, whose group of
  F_p-rational points has order exactly ``p + 1``;
* a generator ``g`` of the order-``r`` subgroup, obtained by multiplying
  a deterministic curve point by the cofactor.

Two presets are exported:

* :data:`TOY80` — 80-bit r, 160-bit p. Fast; used throughout the unit and
  property tests. Offers no real-world security.
* :data:`SS512` — 160-bit r, 512-bit p. The same sizes as the paper's
  α-curve (|G| ≈ 512 bits, |GT| ≈ 1024 bits, |Z_p| = 160 bits); used by
  the benchmark harness.

Both presets were produced by :func:`generate_type_a` with fixed seeds
and are re-verified at import time (primality, cofactor structure,
generator order), so a corrupted constant cannot go unnoticed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ParameterError
from repro.ec.curve import INFINITY, SupersingularCurve
from repro.math.field import PrimeField
from repro.math.primes import is_prime, random_prime


@dataclass(frozen=True)
class TypeAParams:
    """A complete, validated type-A pairing parameter set."""

    r: int                      # prime order of the pairing groups
    p: int                      # base field modulus, p + 1 = h * r
    generator: tuple            # point of order r on y² = x³ + x
    name: str = "custom"
    h: int = field(init=False)  # cofactor

    def __post_init__(self):
        object.__setattr__(self, "h", (self.p + 1) // self.r)
        _validate(self)

    @property
    def r_bits(self) -> int:
        return self.r.bit_length()

    @property
    def p_bits(self) -> int:
        return self.p.bit_length()

    def __repr__(self) -> str:
        return f"TypeAParams({self.name}: r~2^{self.r_bits}, p~2^{self.p_bits})"


def _validate(params: TypeAParams) -> None:
    """Re-verify all structural properties of a parameter set."""
    r, p = params.r, params.p
    if not is_prime(r):
        raise ParameterError("group order r is not prime")
    if not is_prime(p):
        raise ParameterError("field modulus p is not prime")
    if p % 4 != 3:
        raise ParameterError("p must be ≡ 3 (mod 4)")
    if (p + 1) % r != 0:
        raise ParameterError("r must divide p + 1 (curve order)")
    curve = SupersingularCurve(PrimeField(p, check_prime=False))
    g = params.generator
    if not curve.is_on_curve(g) or g is INFINITY:
        raise ParameterError("generator is not a finite curve point")
    if curve.mul(g, r) is not INFINITY:
        raise ParameterError("generator does not have order dividing r")
    # r is prime and g != O, so ord(g) == r.


def generate_type_a(r_bits: int, p_bits: int, seed: int = None) -> TypeAParams:
    """Generate fresh type-A parameters with the requested sizes.

    Mirrors PBC's ``a_param`` generation: draw a prime ``r``, then search
    for a cofactor ``h ≡ 0 (mod 4)`` of the right size making
    ``p = h·r - 1`` prime. A generator is then any cofactor multiple of a
    random curve point.
    """
    if p_bits < r_bits + 4:
        raise ParameterError("p must be at least a few bits larger than r")
    rng = random.Random(seed)
    r = random_prime(r_bits, rng)
    h_bits = p_bits - r_bits
    while True:
        h = rng.getrandbits(h_bits) | (1 << (h_bits - 1))
        h -= h % 4  # force 4 | h so that p = h*r - 1 ≡ 3 (mod 4)
        if h == 0:
            continue
        p = h * r - 1
        if p.bit_length() != p_bits or not is_prime(p):
            continue
        curve = SupersingularCurve(PrimeField(p, check_prime=False))
        point = curve.random_point(rng)
        g = curve.mul(point, h)
        if g is not INFINITY:
            return TypeAParams(r=r, p=p, generator=g, name=f"gen{r_bits}-{p_bits}")


# ---------------------------------------------------------------------------
# Fixed presets (generated once with generate_type_a and frozen here so the
# library imports instantly and tests are deterministic).
# ---------------------------------------------------------------------------

# generate_type_a(80, 160, seed=20120712)
_TOY80_R = 0x8BE5EA5F01D1943560CD
_TOY80_P = 0x82AB3A7FE43647067E8563A38CC0A04EC6E335B7
_TOY80_G = (
    0x722152747A717FDF36FEE437CC303D0EEEAC1AD9,
    0x47253736E079BD800E2791A66FBB6D92BAE7C4B0,
)
# generate_type_a(160, 512, seed=20121042)
_SS512_R = 0x8D3C703ABF4FEE169B3BBF42F8DC79E04FDC8EAF
_SS512_P = 0x8805805765896C2BB6C66886D9ED5515BB3674941DB4D033B923EDDFB3DBE7CDC54DFC10CFADDDEBCDC5423EDDB6FBADFCD63B5090F5A98A7538F136C95379AF
_SS512_G = (
    0x426044C62D03A7799CAB59EFBE137553D320B870ADD3F933BFE11EFEBA2D89D21FCBE5448118417C57FBD2AEE42DC4A720EE8B56A2F996674F9211B916060B88,
    0x10AD79D7697DBC330740BD9EE6681A74ADFA09FDF30BC4AA322FFA2C862DC851845F09E02FFF2832B2CC47EFBEF10F3F4D99A1CD23FA1F5D913EC6B9DCFF0689,
)

TOY80: TypeAParams
SS512: TypeAParams


def _build_presets():
    global TOY80, SS512
    TOY80 = TypeAParams(r=_TOY80_R, p=_TOY80_P, generator=_TOY80_G, name="TOY80")
    SS512 = TypeAParams(r=_SS512_R, p=_SS512_P, generator=_SS512_G, name="SS512")


_build_presets()

PRESETS = {"TOY80": TOY80, "SS512": SS512}

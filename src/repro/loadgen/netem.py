"""Network emulation: a byte-order-preserving latency proxy.

On loopback the round trip is effectively free, so a serial
(one-in-flight) connection and a pipelined one measure the same number
— the server, not the wire, is the bottleneck. Real deployments are
the other way around: per-connection serial throughput is capped at
``1/RTT`` no matter how fast the server is, which is precisely the cap
pipelining removes. :class:`LatencyProxy` puts that RTT back: every
byte stream through it is delayed ``rtt/2`` per direction, order
preserved, throughput unthrottled — so the serial-vs-pipelined
comparison runs under the latency regime the capacity model is
actually about.

Unlike :class:`repro.service.faults.ChaosProxy` nothing here is a
fault: no drops, no reordering, no corruption — just distance.
"""

from __future__ import annotations

import asyncio


class LatencyProxy:
    """A TCP proxy adding ``rtt/2`` of latency in each direction.

    Chunks are released in arrival order from a per-direction queue, so
    the byte stream is never reordered and bandwidth is not capped —
    only latency is added, which is exactly the property that separates
    serial from pipelined throughput.
    """

    def __init__(self, upstream_host: str, upstream_port: int, *,
                 rtt: float = 0.004, host: str = "127.0.0.1"):
        if rtt < 0:
            raise ValueError("rtt must be non-negative")
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.delay = rtt / 2.0
        self.host = host
        self.port = None
        self._server = None
        self._sessions = set()

    async def start(self) -> "LatencyProxy":
        self._server = await asyncio.start_server(
            self._handle, self.host, 0
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._sessions):
            task.cancel()
        if self._sessions:
            await asyncio.gather(*self._sessions, return_exceptions=True)

    async def _handle(self, client_reader, client_writer) -> None:
        task = asyncio.current_task()
        self._sessions.add(task)
        try:
            upstream_reader, upstream_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port
            )
        except OSError:
            client_writer.close()
            self._sessions.discard(task)
            return
        try:
            await asyncio.gather(
                self._pump(client_reader, upstream_writer),
                self._pump(upstream_reader, client_writer),
            )
        except (asyncio.CancelledError, ConnectionError, OSError):
            pass
        finally:
            for writer in (client_writer, upstream_writer):
                writer.close()
            self._sessions.discard(task)

    async def _pump(self, reader, writer) -> None:
        """One direction: delay every chunk, release in order."""
        loop = asyncio.get_running_loop()
        queue = asyncio.Queue()

        async def drain() -> None:
            while True:
                due, chunk = await queue.get()
                if chunk is None:
                    return
                now = loop.time()
                if due > now:
                    await asyncio.sleep(due - now)
                try:
                    writer.write(chunk)
                    await writer.drain()
                except (ConnectionError, OSError):
                    return

        drainer = loop.create_task(drain())
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                queue.put_nowait((loop.time() + self.delay, chunk))
        except (ConnectionError, OSError):
            pass
        finally:
            queue.put_nowait((0.0, None))
            await drainer
            try:
                writer.write_eof()
            except (ConnectionError, OSError, RuntimeError):
                pass

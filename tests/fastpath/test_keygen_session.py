"""Behavior of :class:`repro.fastpath.keygen.KeyGenSession` / joint issue."""

import pytest

from repro.core.scheme import MultiAuthorityABE
from repro.ec.params import TOY80
from repro.errors import SchemeError
from repro.fastpath import issue_joint


def _keys_equal(fast, cold):
    return (
        fast.uid == cold.uid
        and fast.aid == cold.aid
        and fast.owner_id == cold.owner_id
        and fast.version == cold.version
        and fast.k == cold.k
        and fast.attribute_keys == cold.attribute_keys
    )


class TestIssue:
    def test_issue_matches_cold_exactly(self, fabric):
        carol = fabric.scheme.register_user("carol")
        cold = fabric.hospital.keygen(carol, ["doctor", "nurse"], "alice")
        session = fabric.hospital.keygen_session(
            "alice", ["doctor", "nurse"]
        )
        assert _keys_equal(session.issue(carol), cold)

    def test_issue_batch_matches_loop(self, fabric):
        users = [
            fabric.scheme.register_user(f"u{i}") for i in range(4)
        ]
        cold = [
            fabric.trial.keygen(pk, ["researcher"], "alice") for pk in users
        ]
        session = fabric.trial.keygen_session("alice", ["researcher"])
        fast = session.issue_batch(users)
        assert all(_keys_equal(f, c) for f, c in zip(fast, cold))
        assert session.stats["issued"] == 4

    def test_registry_updated_like_cold(self, fabric):
        carol = fabric.scheme.register_user("carol")
        session = fabric.hospital.keygen_session("alice", ["doctor"])
        session.issue(carol)
        assert fabric.hospital.issued_attributes("carol", "alice") \
            == frozenset({"hospital:doctor"})
        assert fabric.hospital.user_public_key_on_file("carol") == carol

    def test_session_cached_per_owner_and_set(self, fabric):
        first = fabric.hospital.keygen_session("alice", ["doctor", "nurse"])
        second = fabric.hospital.keygen_session("alice", ["nurse", "doctor"])
        assert second is first
        assert fabric.hospital.keygen_session("alice", ["doctor"]) is not first

    def test_facade_entry_point(self, fabric):
        session = fabric.scheme.keygen_session("trial", "alice", ["pi"])
        assert session is fabric.trial.keygen_session("alice", ["pi"])


class TestIssueJoint:
    def test_matches_per_session_issuance(self, fabric):
        users = [fabric.scheme.register_user(f"j{i}") for i in range(3)]
        cold = [
            {
                "hospital": fabric.hospital.keygen(
                    pk, ["doctor", "nurse"], "alice"
                ),
                "trial": fabric.trial.keygen(pk, ["researcher"], "alice"),
            }
            for pk in users
        ]
        sessions = [
            fabric.hospital.keygen_session("alice", ["doctor", "nurse"]),
            fabric.trial.keygen_session("alice", ["researcher"]),
        ]
        joint = issue_joint(sessions, users)
        assert len(joint) == 3
        for fast, reference in zip(joint, cold):
            assert set(fast) == {"hospital", "trial"}
            assert _keys_equal(fast["hospital"], reference["hospital"])
            assert _keys_equal(fast["trial"], reference["trial"])

    def test_joint_keys_decrypt(self, fabric):
        dave = fabric.scheme.register_user("dave")
        sessions = [
            fabric.hospital.keygen_session("alice", ["doctor"]),
            fabric.trial.keygen_session("alice", ["researcher"]),
        ]
        (keys,) = issue_joint(sessions, [dave])
        message = fabric.scheme.random_message()
        ciphertext = fabric.owner.encrypt(
            message, "hospital:doctor AND trial:researcher"
        )
        assert fabric.scheme.decrypt(ciphertext, dave, keys) == message

    def test_empty_inputs(self, fabric):
        assert issue_joint([], [fabric.bob_pk]) == []
        session = fabric.hospital.keygen_session("alice", ["doctor"])
        assert issue_joint([session], []) == []

    def test_duplicate_authorities_rejected(self, fabric):
        session = fabric.hospital.keygen_session("alice", ["doctor"])
        with pytest.raises(SchemeError):
            issue_joint([session, session], [fabric.bob_pk])

    def test_mixed_groups_rejected(self, fabric):
        other = MultiAuthorityABE(TOY80, seed=99)
        other.setup_authority("clinic", ["medic"])
        other_owner = other.setup_owner("olga", [other.authority("clinic")])
        foreign = other.authority("clinic").keygen_session("olga", ["medic"])
        native = fabric.hospital.keygen_session("alice", ["doctor"])
        with pytest.raises(SchemeError):
            issue_joint([native, foreign], [fabric.bob_pk])

"""Tests for the audit-log query layer."""

import pytest

from repro.ec.params import TOY80
from repro.system.audit import AuditLog
from repro.system.workflow import CloudStorageSystem


@pytest.fixture()
def system():
    deployment = CloudStorageSystem(TOY80, seed=101)
    deployment.add_authority("aa", ["x"])
    deployment.add_owner("alice")
    deployment.add_user("bob")
    deployment.issue_keys("bob", "aa", ["x"], "alice")
    deployment.upload("alice", "rec", {"c": (b"data", "aa:x")})
    deployment.read("bob", "rec", "c")
    return deployment


@pytest.fixture()
def audit(system):
    return AuditLog(system.network)


class TestQueries:
    def test_entries_and_len(self, audit):
        assert len(audit) == len(audit.entries) > 0

    def test_by_kind(self, audit):
        downloads = audit.by_kind("component-download")
        assert len(downloads) == 1
        assert downloads[0].sender_role == "server"

    def test_by_entity(self, audit):
        bob_entries = audit.by_entity("user:bob")
        assert bob_entries
        for entry in bob_entries:
            assert "user:bob" in (entry.sender, entry.recipient)

    def test_between_roles(self, audit, system):
        entries = audit.between_roles("server", "user")
        total = sum(entry.size_bytes for entry in entries)
        assert total == system.network.bytes_between("server", "user")

    def test_kinds(self, audit):
        kinds = audit.kinds()
        assert {"user-secret-key", "store-record",
                "component-download"} <= kinds


class TestSummaries:
    def test_summary_balances(self, audit, system):
        total_sent = sum(
            audit.summary(name).sent_bytes
            for name in {entry.sender for entry in audit.entries}
        )
        assert total_sent == system.network.total_bytes()

    def test_server_summary(self, audit):
        summary = audit.summary("cloud")
        assert summary.received_messages >= 2  # store + read-request
        assert summary.sent_messages >= 1      # download
        assert summary.total_bytes == (
            summary.sent_bytes + summary.received_bytes
        )

    def test_top_talkers_ordering(self, audit):
        talkers = audit.top_talkers(limit=3)
        totals = [talker.total_bytes for talker in talkers]
        assert totals == sorted(totals, reverse=True)
        assert len(talkers) <= 3

    def test_unknown_entity_summary_is_zero(self, audit):
        summary = audit.summary("nobody")
        assert summary.total_bytes == 0


class TestExport:
    def test_jsonl_roundtrip(self, audit):
        text = audit.to_jsonl()
        parsed = AuditLog.parse_jsonl(text)
        assert parsed == list(audit.entries)

    def test_jsonl_carries_no_payloads(self, audit):
        text = audit.to_jsonl()
        assert "data" not in text or '"kind"' in text  # metadata only
        for line in text.splitlines():
            import json

            record = json.loads(line)
            assert set(record) == {
                "seq", "sender", "sender_role", "recipient",
                "recipient_role", "kind", "bytes",
            }

    def test_empty_log_export(self, group):
        from repro.system.network import Network

        audit = AuditLog(Network(group))
        assert audit.to_jsonl() == ""
        assert AuditLog.parse_jsonl("") == []

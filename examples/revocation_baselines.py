#!/usr/bin/env python3
"""Three revocation philosophies, side by side (the paper's Section II).

* **Yang-Jia (this paper)** — immediate, attribute-level, untrusted
  server (proxy re-encryption with update tokens);
* **Hur-Noh** — immediate, but the server holds every attribute group
  key (trusted server, the assumption the paper rejects);
* **Pirretti** — untrusted server, but revocation waits for the epoch
  boundary and every user pays a per-epoch key refresh.

The script revokes the same logical capability in all three systems and
shows when (and whether) the revoked user actually loses access.

Run:  python examples/revocation_baselines.py
"""

from repro.baselines.bsw import BswScheme
from repro.baselines.hur import HurSystem, decrypt as hur_decrypt
from repro.baselines.pirretti import PirrettiSystem
from repro.ec import TOY80
from repro.errors import (
    AuthorizationError,
    PolicyNotSatisfiedError,
    SchemeError,
)
from repro.pairing.group import PairingGroup
from repro.system import CloudStorageSystem

DENIED = (PolicyNotSatisfiedError, SchemeError, AuthorizationError)


def yang_jia():
    system = CloudStorageSystem(TOY80, seed=1)
    system.add_authority("aa", ["doctor"])
    system.add_owner("alice")
    system.add_user("bob")
    system.issue_keys("bob", "aa", ["doctor"], "alice")
    system.upload("alice", "rec", {"c": (b"secret", "aa:doctor")})
    assert system.read("bob", "rec", "c") == b"secret"
    system.revoke("aa", "bob", ["doctor"])
    try:
        system.read("bob", "rec", "c")
        return "STILL READABLE"
    except DENIED:
        return "revoked IMMEDIATELY; server stayed untrusted (proxy re-encryption)"


def hur_noh():
    group = PairingGroup(TOY80, seed=2)
    bsw = BswScheme(group)
    hur = HurSystem(bsw, capacity=8, seed=2)
    keks = hur.register_user("bob")
    hur.grant("bob", "doctor")
    stored = [hur.reencrypt(bsw.encrypt(group.random_gt(), "doctor"))]
    key = bsw.keygen(["doctor"])
    headers = {"doctor": hur.header("doctor")}
    hur_decrypt(group, stored[0], key, keks, headers, bsw)  # works
    headers["doctor"] = hur.revoke("bob", "doctor", stored)
    try:
        hur_decrypt(group, stored[0], key, keks, headers, bsw)
        return "STILL READABLE"
    except DENIED:
        return ("revoked IMMEDIATELY — but the server holds every "
                "attribute group key (trusted server)")


def pirretti():
    group = PairingGroup(TOY80, seed=3)
    system = PirrettiSystem(BswScheme(group))
    key = system.grant("bob", ["doctor"])
    message = group.random_gt()
    ciphertext = system.encrypt(message, "doctor")
    system.revoke("bob", ["doctor"])
    within_epoch = system.decrypt(ciphertext, key) == message
    system.advance_epoch()
    fresh = system.encrypt(group.random_gt(), "doctor")
    try:
        system.decrypt(fresh, key)
        after_epoch = "STILL READABLE"
    except DENIED:
        after_epoch = "revoked"
    return (f"within the epoch the revoked key "
            f"{'STILL DECRYPTS' if within_epoch else 'fails'}; "
            f"after rollover: {after_epoch} "
            f"(plus every user re-keyed each epoch)")


def main():
    print("Revoking 'doctor' from bob in three systems:\n")
    for name, runner in (
        ("Yang-Jia (this paper)", yang_jia),
        ("Hur-Noh [12]", hur_noh),
        ("Pirretti [26]", pirretti),
    ):
        print(f"  {name:<24} {runner()}")


if __name__ == "__main__":
    main()

"""Core-test fixtures: a fresh two-authority deployment per test."""

from dataclasses import dataclass, field

import pytest

from repro.core.scheme import MultiAuthorityABE
from repro.ec.params import TOY80


@dataclass
class Deployment:
    """A ready-to-use deployment with two authorities, one owner, users."""

    scheme: MultiAuthorityABE
    hospital: object
    trial: object
    owner: object
    user_public: dict = field(default_factory=dict)   # uid -> UserPublicKey
    user_keys: dict = field(default_factory=dict)     # uid -> {aid -> sk}

    def add_user(self, uid: str, hospital_attrs=(), trial_attrs=()):
        public_key = self.scheme.register_user(uid)
        keys = {}
        if hospital_attrs:
            keys["hospital"] = self.hospital.keygen(
                public_key, hospital_attrs, self.owner.owner_id
            )
        if trial_attrs:
            keys["trial"] = self.trial.keygen(
                public_key, trial_attrs, self.owner.owner_id
            )
        self.user_public[uid] = public_key
        self.user_keys[uid] = keys
        return public_key, keys

    def decrypt(self, ciphertext, uid):
        return self.scheme.decrypt(
            ciphertext, self.user_public[uid], self.user_keys[uid]
        )


_COUNTER = [0]


@pytest.fixture()
def deployment():
    _COUNTER[0] += 1
    scheme = MultiAuthorityABE(TOY80, seed=1000 + _COUNTER[0])
    hospital = scheme.setup_authority(
        "hospital", ["doctor", "nurse", "surgeon", "admin"]
    )
    trial = scheme.setup_authority("trial", ["researcher", "pi", "monitor"])
    owner = scheme.setup_owner("alice", [hospital, trial])
    return Deployment(
        scheme=scheme, hospital=hospital, trial=trial, owner=owner
    )

"""A process pool for crypto jobs, with an inline size-0 mode.

:class:`CryptoPool` wraps :class:`concurrent.futures.ProcessPoolExecutor`
with the three properties the batch engine needs:

* **pool size 0 is a first-class mode** — jobs run inline in the calling
  process through the *same* job functions the workers run, so results
  are bit-identical across pool sizes by construction and single-core
  deployments skip process overhead entirely;
* **lazy start, explicit warm-up** — no worker process exists until the
  first pooled job (constructing a pool costs nothing), and callers
  that know traffic is coming call :meth:`CryptoPool.warm` to boot the
  full worker complement up front, keeping spawn + import time off the
  first job's critical path (the service does this at start);
* **fork-safe start method** — workers come from a ``forkserver``
  context (falling back to ``spawn``), never from a bare ``fork``: the
  pool starts lazily, typically after the server has grown an event
  loop and an offload thread, and forking a multi-threaded process can
  deadlock children on locks held mid-fork. Workers therefore re-import
  the library once per process; job functions only ever receive
  picklable arguments, so every start method behaves identically.

Job functions must be module-level (picklable by reference) and
pure-ish: everything they need arrives in their arguments. The
:class:`repro.pairing.group.PairingGroup` argument pickles as parameter
integers and rebuilds per process (see ``PairingGroup.__reduce__``).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor


def resolve_workers(workers) -> int:
    """Resolve a worker count, with ``"auto"`` sized to the machine.

    ``"auto"`` maps to ``cpu_count - 1`` (one core stays with the event
    loop / offload thread), which on a single-core machine is ``0`` —
    the inline mode, where pooled processes would only add pickle and
    scheduling overhead on top of time-slicing one core.
    """
    if workers == "auto":
        return max(0, (os.cpu_count() or 1) - 1)
    if not isinstance(workers, int) or isinstance(workers, bool):
        raise ValueError("workers must be an int or 'auto'")
    return workers


def _warm_worker(hold_seconds: float, group=None) -> None:
    """Boot a worker and pre-pay its per-process crypto setup.

    Spawned workers import the library from scratch, and the first real
    job additionally rebuilds the pickled group (primality checks,
    generator tables). Importing the batch-job module and rebuilding the
    group *here* moves that cost out of the first sweep's timed window.
    The short hold keeps an already-booted worker from draining the
    whole warm-up queue before its siblings have spawned.
    """
    import repro.parallel.batch  # noqa: F401 - import cost is the point
    if group is not None:
        # Unpickling already rebuilt it; touching the generator table
        # forces the fixed-base precomputation the first job would pay.
        group.generator_table()
    time.sleep(hold_seconds)


def chunked(items, size: int) -> list:
    """Split a sequence into order-preserving chunks of at most ``size``."""
    items = list(items)
    if size <= 0:
        raise ValueError("chunk size must be positive")
    return [items[start:start + size] for start in range(0, len(items), size)]


class CryptoPool:
    """A lazily-started process pool; ``workers=0`` runs jobs inline."""

    def __init__(self, workers=0):
        workers = resolve_workers(workers)
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers
        self._executor = None

    @property
    def inline(self) -> bool:
        return self.workers == 0

    @property
    def executor(self) -> ProcessPoolExecutor:
        """The live executor (started on first use; inline pools have none)."""
        if self.inline:
            raise ValueError("an inline pool has no executor")
        if self._executor is None:
            # Never bare ``fork``: by the time a lazy pool starts, the
            # calling process usually has threads (asyncio loop, the
            # server's offload thread), and forked children can deadlock
            # on locks those threads held at fork time. ``forkserver``
            # forks workers from a clean single-threaded helper instead;
            # ``spawn`` is the portable fallback.
            try:
                context = multiprocessing.get_context("forkserver")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                context = multiprocessing.get_context("spawn")
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context
            )
        return self._executor

    def warm(self, hold_seconds: float = 0.05, group=None) -> None:
        """Boot every worker now (a no-op for inline pools).

        The executor spawns workers lazily, which would bill
        ``forkserver`` start-up, per-worker library imports, and — when
        ``group`` is passed — the per-process group rebuild to the
        first pooled job (for the service, the first sweep). One held
        job per worker forces the full complement to boot and warm up
        front (the server calls this at start with its group).
        """
        if self.inline:
            return
        futures = [
            self.executor.submit(_warm_worker, hold_seconds, group)
            for _ in range(self.workers)
        ]
        for future in futures:
            future.result()

    def map_jobs(self, fn, jobs) -> list:
        """Run ``fn(*args)`` for every argument tuple; results in order.

        Inline pools call ``fn`` directly; pooled runs submit every job
        up front and collect results in submission order, so the output
        is independent of worker scheduling.
        """
        jobs = list(jobs)
        if self.inline:
            return [fn(*args) for args in jobs]
        futures = [self.executor.submit(fn, *args) for args in jobs]
        return [future.result() for future in futures]

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "CryptoPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        state = "inline" if self.inline else (
            "idle" if self._executor is None else "running"
        )
        return f"CryptoPool(workers={self.workers}, {state})"

"""Deterministic, seed-driven fault injection between client and server.

:class:`ChaosProxy` is a real TCP proxy that sits on the wire in front
of a :class:`repro.service.server.StorageService`. Requests (client →
server) are forwarded verbatim; replies (server → client) are parsed at
frame granularity so every injected failure is a *well-defined* wire
event:

* ``drop``      — the connection is severed at a frame boundary, after
  the server already processed the request (the nasty case for
  mutations: only idempotency keys make the retry safe);
* ``delay``     — the reply is held back for ``delay_seconds``, long
  enough to push a client past its timeout;
* ``corrupt``   — the reply's type byte has its high bit flipped, so the
  client sees an unknown frame type (a garbled reply, not a typed
  error);
* ``truncate``  — the frame header promises the full reply but only
  half the payload arrives before the connection closes;
* ``duplicate`` — the reply frame is sent twice, exercising the v2
  sequence-number discard path.

Every decision is drawn from a :class:`random.Random` seeded per
connection from the proxy seed, so a failing run replays exactly. A
``schedule`` mapping (global reply-frame index → fault name) overrides
the dice for tests that need one specific fault at one specific
moment. Everything injected is recorded in :attr:`ChaosProxy.injected`
so tests can cross-check the client's retry log against ground truth.

:class:`ChaosFleet` scales the same machinery to a cluster: ONE process
fronts N upstream nodes, one listener per node, each with its own
:class:`FaultSpec`, its own derived seed, and its own schedule — so a
multi-node test can make exactly one replica misbehave (or all of them,
independently) while every connection still flows through proxies whose
injections replay deterministically.
"""

from __future__ import annotations

import asyncio
import random

_FAULTS = ("drop", "delay", "corrupt", "truncate", "duplicate")


class FaultSpec:
    """Per-frame fault probabilities (plus the delay duration)."""

    def __init__(self, *, drop: float = 0.0, delay: float = 0.0,
                 corrupt: float = 0.0, truncate: float = 0.0,
                 duplicate: float = 0.0, delay_seconds: float = 1.5):
        self.drop = drop
        self.delay = delay
        self.corrupt = corrupt
        self.truncate = truncate
        self.duplicate = duplicate
        self.delay_seconds = delay_seconds
        if sum(self.rates().values()) > 1.0:
            raise ValueError("fault rates must sum to at most 1")

    def rates(self) -> dict:
        return {name: getattr(self, name) for name in _FAULTS}

    def draw(self, rng: random.Random):
        """One fault decision: a fault name, or ``None`` to forward."""
        roll = rng.random()
        for name, rate in self.rates().items():
            if roll < rate:
                return name
            roll -= rate
        return None


class ChaosProxy:
    """A frame-aware TCP proxy injecting seeded faults into replies."""

    def __init__(self, upstream_host: str, upstream_port: int, *,
                 spec: FaultSpec = None, seed: int = 0,
                 schedule: dict = None, host: str = "127.0.0.1"):
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.spec = spec if spec is not None else FaultSpec()
        self.seed = seed
        self.schedule = dict(schedule or {})
        self.host = host
        self.port = None
        self.injected = []       # [{conn, frame, fault, frame_type}, ...]
        self._server = None
        self._tasks = set()
        self._conn_tasks = set()
        self._writers = set()
        self._conn_counter = 0
        self._reply_counter = 0  # global reply-frame index (schedule key)

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> "ChaosProxy":
        self._server = await asyncio.start_server(self._accept, self.host, 0)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._writers):
            writer.close()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        # Let the per-connection handlers finish their teardown so no
        # half-cancelled task survives into loop shutdown.
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._tasks.clear()
        self._conn_tasks.clear()
        self._writers.clear()

    def fault_counts(self) -> dict:
        counts = {}
        for fault in self.injected:
            counts[fault["fault"]] = counts.get(fault["fault"], 0) + 1
        return counts

    # -- per-connection plumbing ------------------------------------------

    async def _accept(self, client_reader, client_writer):
        self._conn_tasks.add(asyncio.current_task())
        try:
            await self._relay(client_reader, client_writer)
        except asyncio.CancelledError:
            # Proxy/loop shutdown mid-teardown: _relay's finally already
            # closed both writers; ending quietly keeps the cancellation
            # out of asyncio's connection-callback plumbing.
            pass
        finally:
            self._conn_tasks.discard(asyncio.current_task())

    async def _relay(self, client_reader, client_writer):
        conn_index = self._conn_counter
        self._conn_counter += 1
        self._writers.add(client_writer)
        try:
            upstream_reader, upstream_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port
            )
        except OSError:
            client_writer.close()
            self._writers.discard(client_writer)
            return
        self._writers.add(upstream_writer)
        rng = random.Random(f"{self.seed}:{conn_index}")
        pumps = [
            asyncio.ensure_future(
                self._pump_requests(client_reader, upstream_writer)
            ),
            asyncio.ensure_future(
                self._pump_replies(upstream_reader, client_writer,
                                   conn_index, rng)
            ),
        ]
        self._tasks.update(pumps)
        try:
            # Either direction ending (EOF, injected drop, error) tears
            # the whole relayed connection down, like a real middlebox.
            await asyncio.wait(pumps, return_when=asyncio.FIRST_COMPLETED)
        finally:
            for pump in pumps:
                pump.cancel()
                self._tasks.discard(pump)
            for writer in (client_writer, upstream_writer):
                writer.close()
                self._writers.discard(writer)
            await asyncio.gather(*pumps, return_exceptions=True)

    async def _pump_requests(self, client_reader, upstream_writer):
        """client → server: forwarded verbatim, no frame parsing."""
        try:
            while True:
                chunk = await client_reader.read(65536)
                if not chunk:
                    return
                upstream_writer.write(chunk)
                await upstream_writer.drain()
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            return

    async def _pump_replies(self, upstream_reader, client_writer,
                            conn_index, rng):
        """server → client: one fault decision per reply frame."""
        try:
            while True:
                header = await upstream_reader.readexactly(4)
                length = int.from_bytes(header, "big")
                payload = await upstream_reader.readexactly(length)
                frame_index = self._reply_counter
                self._reply_counter += 1
                if frame_index in self.schedule:
                    fault = self.schedule[frame_index]
                else:
                    fault = self.spec.draw(rng)
                if fault is not None:
                    self.injected.append({
                        "conn": conn_index,
                        "frame": frame_index,
                        "fault": fault,
                        "frame_type": payload[0] if payload else None,
                    })
                if fault == "drop":
                    return
                if fault == "truncate":
                    client_writer.write(header + payload[:length // 2])
                    await client_writer.drain()
                    return
                if fault == "delay":
                    await asyncio.sleep(self.spec.delay_seconds)
                elif fault == "corrupt":
                    payload = bytes([payload[0] ^ 0x80]) + payload[1:]
                frame = header + payload
                if fault == "duplicate":
                    frame += frame
                client_writer.write(frame)
                await client_writer.drain()
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            return


class ChaosFleet:
    """One process fronting many upstream nodes, one proxy per node.

    ``upstreams`` maps an upstream name to ``(host, port)``; per-name
    ``specs``/``schedules`` entries override the default ``spec`` (an
    absent entry means that node's proxy forwards faithfully — an
    all-zero :class:`FaultSpec`). Each proxy draws from its own RNG
    seeded ``f"{seed}:{name}"``, so one node's fault stream never
    shifts another's: adding faults in front of node A replays node B's
    connections bit-for-bit.

    ``address(name)`` is what a cluster map should carry so every
    client connection to that node crosses its proxy.
    """

    def __init__(self, upstreams: dict, *, spec: FaultSpec = None,
                 specs: dict = None, schedules: dict = None, seed: int = 0,
                 host: str = "127.0.0.1"):
        self.seed = seed
        self.proxies = {}
        specs = specs or {}
        schedules = schedules or {}
        for name, (upstream_host, upstream_port) in upstreams.items():
            node_spec = specs.get(name, spec)
            self.proxies[name] = ChaosProxy(
                upstream_host, upstream_port,
                spec=node_spec if node_spec is not None else FaultSpec(),
                seed=f"{seed}:{name}",
                schedule=schedules.get(name), host=host,
            )

    async def start(self) -> "ChaosFleet":
        for proxy in self.proxies.values():
            await proxy.start()
        return self

    async def stop(self) -> None:
        for proxy in self.proxies.values():
            await proxy.stop()

    def address(self, name: str) -> tuple:
        """``(host, port)`` clients should dial to reach ``name``."""
        proxy = self.proxies[name]
        return proxy.host, proxy.port

    def injected_by_node(self) -> dict:
        return {name: list(proxy.injected)
                for name, proxy in self.proxies.items()}

    def fault_counts(self) -> dict:
        """Aggregate fault tallies across every fronted node."""
        counts = {}
        for proxy in self.proxies.values():
            for fault, count in proxy.fault_counts().items():
                counts[fault] = counts.get(fault, 0) + count
        return counts

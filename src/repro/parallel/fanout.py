"""Bounded async fan-out for cluster-wide I/O.

The process-pool side of :mod:`repro.parallel` parallelizes CPU-bound
pairing work; this module is its I/O twin: fan one coroutine per
replica (or per node) out concurrently, but never more than ``limit``
in flight, and *always* collect every outcome — a replica that failed
is a result (its exception), not an escaped task.

Used by the cluster client for R-way replica writes and by the
fleet-wide revocation sweep for its per-node fan-out.
"""

from __future__ import annotations

import asyncio


async def gather_bounded(factories, limit: int = 8) -> list:
    """Run coroutine factories concurrently, at most ``limit`` at once.

    ``factories`` is an iterable of zero-argument callables returning
    coroutines (factories, not coroutines, so nothing is scheduled
    before its semaphore slot frees up). Returns one entry per factory,
    in input order: the coroutine's result, or the exception it raised.
    Nothing propagates — the caller decides what a partial failure
    means (a write quorum tolerates some, a scrub records them).
    """
    factories = list(factories)
    if limit < 1:
        raise ValueError("limit must be positive")
    semaphore = asyncio.Semaphore(limit)

    async def run_one(factory):
        async with semaphore:
            try:
                return await factory()
            except Exception as exc:  # collected, never propagated
                return exc

    return list(await asyncio.gather(*(run_one(factory)
                                       for factory in factories)))

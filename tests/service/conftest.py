"""Shared helpers for the service-deployment tests.

``Scenario`` builds the local trust fabric (CA, one AA, an owner, two
users) the way the simulation's workflow does, so server tests only
exercise what actually crosses the socket: storage, downloads, the key
directory and proxy ReEncrypt.
"""

import asyncio

import pytest

from repro.core.authority import AttributeAuthority
from repro.core.ca import CertificateAuthority
from repro.core.owner import DataOwner
from repro.crypto.hybrid import seal
from repro.service.server import StorageService
from repro.service.store import RecordStore
from repro.system.records import StoredComponent, StoredRecord


class Scenario:
    """CA + one AA ('hospital') + owner 'alice' + users bob/carol."""

    def __init__(self, group):
        self.group = group
        self.ca = CertificateAuthority(group)
        self.aa = AttributeAuthority(group, "hospital", ["doctor", "nurse"])
        self.ca.register_authority("hospital")
        self.owner_core = DataOwner(group, "alice")
        self.ca.register_owner("alice")
        self.aa.register_owner(self.owner_core.secret_key)
        self.owner_core.learn_authority(
            self.aa.authority_public_key(), self.aa.public_attribute_keys()
        )
        self.bob_pk = self.ca.register_user("bob")
        self.carol_pk = self.ca.register_user("carol")
        self.bob_sk = self.aa.keygen(self.bob_pk, ["doctor"], "alice")
        self.carol_sk = self.aa.keygen(
            self.carol_pk, ["doctor", "nurse"], "alice"
        )

    def make_record(self, record_id="record", components=None) -> StoredRecord:
        """An owner-encrypted Fig. 2 record, without any network I/O."""
        if components is None:
            components = {"note": (b"plaintext body", "hospital:doctor")}
        stored = {}
        for name, (plaintext, policy) in components.items():
            ciphertext_id = f"{record_id}/{name}"
            session = self.group.random_gt()
            stored[name] = StoredComponent(
                name=name,
                abe_ciphertext=self.owner_core.encrypt(
                    session, policy, ciphertext_id=ciphertext_id
                ),
                data_ciphertext=seal(session, ciphertext_id, plaintext),
            )
        return StoredRecord(
            record_id=record_id, owner_id="alice", components=stored
        )


@pytest.fixture()
def scenario(group):
    return Scenario(group)


@pytest.fixture()
def store_root(tmp_path):
    return tmp_path / "store"


def run(coro):
    """Run one async test scenario to completion."""
    return asyncio.run(coro)


async def start_service(group, root, **kwargs) -> StorageService:
    """A running server on an ephemeral localhost port."""
    service = StorageService(group, RecordStore(root, group), **kwargs)
    await service.start()
    return service

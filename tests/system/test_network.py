"""Tests for the byte-metered network fabric."""

import pytest

from repro.system.network import (
    ROLE_AA,
    ROLE_OWNER,
    ROLE_USER,
    Network,
    role_pair,
)


class _Stub:
    def __init__(self, name, role):
        self.name = name
        self.role = role


@pytest.fixture()
def network(group):
    return Network(group)


class TestSend:
    def test_returns_payload(self, network, group):
        aa = _Stub("AA:h", ROLE_AA)
        user = _Stub("user:bob", ROLE_USER)
        payload = group.g
        assert network.send(aa, user, "key", payload) is payload

    def test_logs_entry(self, network, group):
        aa = _Stub("AA:h", ROLE_AA)
        user = _Stub("user:bob", ROLE_USER)
        network.send(aa, user, "key", group.g)
        entry = network.log[0]
        assert entry.sender == "AA:h"
        assert entry.recipient_role == ROLE_USER
        assert entry.kind == "key"
        assert entry.size_bytes == group.g1_bytes

    def test_channel_aggregation_is_symmetric(self, network, group):
        aa = _Stub("AA:h", ROLE_AA)
        user = _Stub("user:bob", ROLE_USER)
        network.send(aa, user, "key", group.g)
        network.send(user, aa, "ack", b"ok")
        assert network.messages_between(ROLE_AA, ROLE_USER) == 2
        assert (
            network.bytes_between(ROLE_USER, ROLE_AA)
            == group.g1_bytes + 2
        )

    def test_bytes_by_kind(self, network, group):
        aa = _Stub("AA:h", ROLE_AA)
        owner = _Stub("owner:alice", ROLE_OWNER)
        network.send(aa, owner, "pk", group.gt)
        network.send(aa, owner, "pk", group.gt)
        network.send(owner, aa, "sk", b"xy")
        assert network.bytes_by_kind() == {
            "pk": 2 * group.gt_bytes,
            "sk": 2,
        }

    def test_total_and_reset(self, network, group):
        aa = _Stub("AA:h", ROLE_AA)
        user = _Stub("user:bob", ROLE_USER)
        network.send(aa, user, "key", b"1234")
        assert network.total_bytes() == 4
        network.reset()
        assert network.total_bytes() == 0
        assert network.log == []
        assert network.messages_between(ROLE_AA, ROLE_USER) == 0


class TestRolePair:
    def test_canonical_order(self):
        assert role_pair("user", "aa") == role_pair("aa", "user")
        assert role_pair("aa", "user") == ("aa", "user")


class TestSharedMeter:
    """The Network delegates to a Meter that other transports can share."""

    def test_network_owns_a_meter_by_default(self, network):
        from repro.system.meter import Meter

        assert isinstance(network.meter, Meter)
        assert network.log is network.meter.log

    def test_injected_meter_is_shared(self, group):
        from repro.system.meter import Meter

        meter = Meter(group)
        net_a = Network(group, meter=meter)
        net_b = Network(group, meter=meter)
        aa = _Stub("AA:h", ROLE_AA)
        user = _Stub("user:bob", ROLE_USER)
        net_a.send(aa, user, "key", b"1234")
        net_b.send(user, aa, "ack", b"56")
        # Both networks fold into the one shared accounting object.
        assert meter.total_bytes() == 6
        assert network_totals(net_a) == network_totals(net_b) == 6
        assert meter.messages_between(ROLE_AA, ROLE_USER) == 2

    def test_direct_meter_records_join_network_records(self, group):
        from repro.system.meter import Meter

        meter = Meter(group)
        network = Network(group, meter=meter)
        aa = _Stub("AA:h", ROLE_AA)
        user = _Stub("user:bob", ROLE_USER)
        network.send(aa, user, "key", b"1234")
        meter.record("user:bob", ROLE_USER, "AA:h", ROLE_AA, "ack", b"56")
        assert network.total_bytes() == 6
        assert network.bytes_by_kind() == {"key": 4, "ack": 2}

    def test_wire_bytes_are_separate_from_payload_bytes(self, network):
        aa = _Stub("AA:h", ROLE_AA)
        user = _Stub("user:bob", ROLE_USER)
        network.send(aa, user, "key", b"1234")
        network.meter.record_wire(100)
        assert network.total_bytes() == 4
        assert network.meter.wire_bytes == 100
        network.reset()
        assert network.meter.wire_bytes == 0

    def test_channel_summary_shape(self, network):
        aa = _Stub("AA:h", ROLE_AA)
        user = _Stub("user:bob", ROLE_USER)
        network.send(aa, user, "key", b"1234")
        assert network.meter.channel_summary() == {
            "aa<->user": {"messages": 1, "bytes": 4}
        }


def network_totals(network):
    return network.total_bytes()

"""Tests for ciphertext structure and serialization."""

import pytest

from repro.core.ciphertext import Ciphertext
from repro.errors import SchemeError


@pytest.fixture()
def ciphertext(deployment):
    return deployment.owner.encrypt(
        deployment.scheme.random_message(),
        "hospital:doctor AND trial:researcher",
    )


class TestStructure:
    def test_rows_match_policy(self, ciphertext):
        assert ciphertext.n_rows == 2
        assert ciphertext.involved_aids == frozenset({"hospital", "trial"})
        assert ciphertext.versions == {"hospital": 0, "trial": 0}

    def test_version_of_unknown_authority(self, ciphertext):
        with pytest.raises(SchemeError):
            ciphertext.version_of("nasa")

    def test_element_size_formula(self, deployment, ciphertext):
        group = deployment.scheme.group
        expected = group.gt_bytes + (ciphertext.n_rows + 1) * group.g1_bytes
        assert ciphertext.element_size_bytes(group) == expected

    def test_policy_string(self, ciphertext):
        assert "hospital:doctor" in ciphertext.policy_string


class TestSerialization:
    def test_roundtrip(self, deployment, ciphertext):
        group = deployment.scheme.group
        data = ciphertext.to_bytes()
        decoded = Ciphertext.from_bytes(group, data)
        assert decoded.ciphertext_id == ciphertext.ciphertext_id
        assert decoded.owner_id == ciphertext.owner_id
        assert decoded.c == ciphertext.c
        assert decoded.c_prime == ciphertext.c_prime
        assert decoded.c_rows == ciphertext.c_rows
        assert decoded.versions == ciphertext.versions
        assert decoded.involved_aids == ciphertext.involved_aids
        assert decoded.matrix.row_labels == ciphertext.matrix.row_labels

    def test_decoded_ciphertext_still_decrypts(self, deployment):
        deployment.add_user("u", hospital_attrs=["doctor"],
                            trial_attrs=["researcher"])
        message = deployment.scheme.random_message()
        original = deployment.owner.encrypt(
            message, "hospital:doctor AND trial:researcher"
        )
        decoded = Ciphertext.from_bytes(
            deployment.scheme.group, original.to_bytes()
        )
        assert deployment.decrypt(decoded, "u") == message

    def test_truncated_rejected(self, deployment, ciphertext):
        group = deployment.scheme.group
        data = ciphertext.to_bytes()
        with pytest.raises(SchemeError):
            Ciphertext.from_bytes(group, data[:-5])
        with pytest.raises(SchemeError):
            Ciphertext.from_bytes(group, b"\x00\x00")

    def test_extended_rejected(self, deployment, ciphertext):
        group = deployment.scheme.group
        with pytest.raises(SchemeError):
            Ciphertext.from_bytes(group, ciphertext.to_bytes() + b"\x00")

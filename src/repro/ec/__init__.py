"""Elliptic-curve substrate: supersingular type-A curves and parameters."""

from repro.ec.curve import INFINITY, SupersingularCurve
from repro.ec.params import PRESETS, SS512, TOY80, TypeAParams, generate_type_a

__all__ = [
    "INFINITY",
    "SupersingularCurve",
    "TypeAParams",
    "generate_type_a",
    "TOY80",
    "SS512",
    "PRESETS",
]

"""Elementary number-theoretic algorithms on Python integers.

These routines are the lowest layer of the library: everything above
(finite fields, elliptic curves, pairings) reduces to them. They operate
on plain ``int`` values so they can be reused for both the base field
modulus ``p`` and the group order ``r``.
"""

from __future__ import annotations

from repro.errors import MathError


def egcd(a: int, b: int) -> tuple:
    """Extended Euclidean algorithm.

    Returns ``(g, x, y)`` with ``g = gcd(a, b)`` and ``a*x + b*y == g``.
    Works for negative inputs; ``g`` is always non-negative.
    """
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    if old_r < 0:
        old_r, old_s, old_t = -old_r, -old_s, -old_t
    return old_r, old_s, old_t


def invmod(a: int, m: int) -> int:
    """Multiplicative inverse of ``a`` modulo ``m``.

    Raises :class:`MathError` if ``gcd(a, m) != 1``.
    """
    a %= m
    if a == 0:
        raise MathError(f"0 is not invertible modulo {m}")
    try:
        return pow(a, -1, m)
    except ValueError as exc:  # pragma: no cover - same condition as below
        raise MathError(f"{a} is not invertible modulo {m}") from exc


def batch_invmod(values, m: int) -> list:
    """Montgomery batch inversion: inverses of all ``values`` modulo ``m``.

    One modular inversion plus ``3·(n-1)`` multiplications replaces ``n``
    inversions — the classic amortization for affine elliptic-curve and
    Miller-loop slope computations, where an inversion costs tens of
    multiplications. Raises :class:`MathError` if any value is not
    invertible (in particular if any value ≡ 0 mod ``m``).
    """
    values = list(values)
    if not values:
        return []
    count = len(values)
    prefix = [0] * count
    acc = 1
    for index in range(count):
        value = values[index] % m
        if value == 0:
            raise MathError(f"0 is not invertible modulo {m}")
        values[index] = value  # keep the reduced form for the back pass
        acc = acc * value % m
        prefix[index] = acc
    acc_inv = invmod(acc, m)
    inverses = [0] * count
    for index in range(count - 1, 0, -1):
        inverses[index] = prefix[index - 1] * acc_inv % m
        acc_inv = acc_inv * values[index] % m
    inverses[0] = acc_inv
    return inverses


def jacobi(a: int, n: int) -> int:
    """Jacobi symbol (a/n) for odd positive ``n``.

    For prime ``n`` this is the Legendre symbol: 1 if ``a`` is a nonzero
    quadratic residue, -1 if a non-residue, 0 if ``a ≡ 0``.
    """
    if n <= 0 or n % 2 == 0:
        raise MathError("Jacobi symbol requires odd positive n")
    a %= n
    result = 1
    while a != 0:
        while a % 2 == 0:
            a //= 2
            if n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


def sqrt_mod(a: int, p: int) -> int:
    """A square root of ``a`` modulo an odd prime ``p`` (Tonelli-Shanks).

    Returns ``x`` with ``x*x ≡ a (mod p)``; the other root is ``p - x``.
    Raises :class:`MathError` if ``a`` is a non-residue.
    """
    a %= p
    if a == 0:
        return 0
    if jacobi(a, p) != 1:
        raise MathError(f"{a} is not a quadratic residue modulo {p}")
    if p % 4 == 3:
        return pow(a, (p + 1) // 4, p)
    # Tonelli-Shanks for p ≡ 1 (mod 4).
    q, s = p - 1, 0
    while q % 2 == 0:
        q //= 2
        s += 1
    z = 2
    while jacobi(z, p) != -1:
        z += 1
    m = s
    c = pow(z, q, p)
    t = pow(a, q, p)
    x = pow(a, (q + 1) // 2, p)
    while t != 1:
        t2 = t
        i = 0
        while t2 != 1:
            t2 = t2 * t2 % p
            i += 1
            if i == m:
                raise MathError("Tonelli-Shanks failed; modulus not prime?")
        b = pow(c, 1 << (m - i - 1), p)
        m = i
        c = b * b % p
        t = t * c % p
        x = x * b % p
    return x


def crt_pair(r1: int, m1: int, r2: int, m2: int) -> tuple:
    """Chinese remainder theorem for two congruences.

    Returns ``(r, m)`` with ``r ≡ r1 (mod m1)``, ``r ≡ r2 (mod m2)`` and
    ``m = lcm(m1, m2)``. Raises :class:`MathError` if inconsistent.
    """
    g, x, _ = egcd(m1, m2)
    if (r2 - r1) % g != 0:
        raise MathError("CRT congruences are inconsistent")
    lcm = m1 // g * m2
    diff = (r2 - r1) // g
    r = (r1 + m1 * (diff * x % (m2 // g))) % lcm
    return r, lcm


def bit_length(n: int) -> int:
    """Bit length of ``|n|`` (0 for n == 0); thin alias for readability."""
    return abs(n).bit_length()


def int_to_bytes(n: int, length: int = None) -> bytes:
    """Big-endian encoding of a non-negative integer.

    When ``length`` is omitted, the minimal length is used (1 byte for 0).
    """
    if n < 0:
        raise MathError("cannot encode a negative integer")
    if length is None:
        length = max(1, (n.bit_length() + 7) // 8)
    return n.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Big-endian decoding, inverse of :func:`int_to_bytes`."""
    return int.from_bytes(data, "big")

"""The certificate authority (CA) of the framework (Section III-A).

The CA is a fully trusted entity with two jobs only — it is *not* a
global authority in the cryptographic sense and never touches attribute
keys:

* authenticate each user and assign a globally unique UID, together with
  the user public key ``PK_UID = g^u`` (the secret ``u`` stays at the CA);
* authenticate each attribute authority and assign it a unique AID.

The global UID is what ties a user's secret keys from different
authorities together and defeats collusion (Theorem 1): every key
component issued to a user embeds the same ``u``.
"""

from __future__ import annotations

from repro.core.attributes import validate_identifier
from repro.core.keys import CaUserSecret, UserPublicKey
from repro.errors import SchemeError
from repro.pairing.group import PairingGroup


class CertificateAuthority:
    """Issues UIDs/AIDs and user public keys; the trust anchor of Fig. 1."""

    def __init__(self, group: PairingGroup):
        self.group = group
        self._user_secrets = {}    # uid -> CaUserSecret
        self._user_public = {}     # uid -> UserPublicKey
        self._authorities = set()  # registered AIDs
        self._owners = set()       # registered owner ids

    # -- users ---------------------------------------------------------------

    def register_user(self, uid: str) -> UserPublicKey:
        """Authenticate a new user; mint ``PK_UID = g^u`` with fresh ``u``."""
        validate_identifier(uid, "user id")
        if uid in self._user_secrets:
            raise SchemeError(f"user id {uid!r} is already registered")
        u = self.group.random_scalar()
        public = UserPublicKey(uid=uid, element=self.group.g ** u)
        self._user_secrets[uid] = CaUserSecret(uid=uid, u=u)
        self._user_public[uid] = public
        return public

    def user_public_key(self, uid: str) -> UserPublicKey:
        try:
            return self._user_public[uid]
        except KeyError:
            raise SchemeError(f"unknown user id {uid!r}") from None

    def is_registered_user(self, uid: str) -> bool:
        return uid in self._user_public

    # -- authorities and owners --------------------------------------------------

    def register_authority(self, aid: str) -> str:
        """Authenticate an attribute authority; returns its (validated) AID."""
        validate_identifier(aid, "authority id")
        if aid in self._authorities:
            raise SchemeError(f"authority id {aid!r} is already registered")
        self._authorities.add(aid)
        return aid

    def register_owner(self, owner_id: str) -> str:
        """Authenticate a data owner (owners need no CA-issued key material)."""
        validate_identifier(owner_id, "owner id")
        if owner_id in self._owners:
            raise SchemeError(f"owner id {owner_id!r} is already registered")
        self._owners.add(owner_id)
        return owner_id

    def is_registered_authority(self, aid: str) -> bool:
        return aid in self._authorities

    @property
    def user_count(self) -> int:
        return len(self._user_public)

    @property
    def authority_count(self) -> int:
        return len(self._authorities)

"""Key material of the Yang-Jia multi-authority scheme.

One dataclass per key kind from Section IV-C / V-B of the paper:

========================  =====================================================
paper                      here
========================  =====================================================
``PK_UID = g^u``           :class:`UserPublicKey`
(CA's per-user secret u)   :class:`CaUserSecret`
``MK_o = {β, r}``          :class:`OwnerMasterKey`
``SK_o = {g^{1/β}, r/β}``  :class:`OwnerSecretKey`
``VK_AID = α_AID``         :class:`VersionKey`
``PK_{x,AID}``             :class:`PublicAttributeKeys` (one dict per AA)
``PK_{o,AID}``             also in :class:`AuthorityPublicKey`
``SK_{UID,AID}``           :class:`UserSecretKey`
``UK_AID``                 :class:`UpdateKey`
``UI_AID``                 :class:`CiphertextUpdateInfo`
========================  =====================================================

A structural note the paper leaves implicit: the non-attribute component
``K_{UID,AID} = PK_UID^{r/β} · g^{α_AID/β}`` depends on a *specific
owner's* master key (β, r), so user secret keys are scoped to an
``(owner, authority)`` pair, while the attribute components
``K_{x} = PK_UID^{α·H(x)}`` are owner-independent. We record the owner id
on :class:`UserSecretKey` and enforce the match at decryption time.

All classes carry integer ``version`` numbers tracking how many times the
issuing authority has run ReKey; mixing versions is a protocol error that
the decryption and re-encryption code detects eagerly instead of
producing garbage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pairing.group import G1Element, GTElement


@dataclass(frozen=True)
class UserPublicKey:
    """``PK_UID = g^u``, issued by the CA at user registration."""

    uid: str
    element: G1Element


@dataclass(frozen=True)
class CaUserSecret:
    """The CA-side secret exponent ``u`` backing a user's public key."""

    uid: str
    u: int


@dataclass(frozen=True)
class OwnerMasterKey:
    """``MK_o = {β, r}`` — kept by the owner, never shared."""

    owner_id: str
    beta: int
    r_exp: int  # the paper's `r`; renamed to avoid clashing with the group order


@dataclass(frozen=True)
class OwnerSecretKey:
    """``SK_o = {g^{1/β}, r/β}`` — sent to every AA over a secure channel."""

    owner_id: str
    g_inv_beta: G1Element   # g^{1/β}
    r_over_beta: int        # r/β mod group order


@dataclass(frozen=True)
class VersionKey:
    """``VK_AID = α_AID`` plus the monotone version counter."""

    aid: str
    alpha: int
    version: int = 0


@dataclass(frozen=True)
class AuthorityPublicKey:
    """``PK_{o,AID} = e(g,g)^{α_AID}`` — used by owners for encryption.

    Despite the paper calling it "the owner's public key", its value
    depends only on the authority's version key, so it is shared by all
    owners; we name it accordingly.
    """

    aid: str
    value: GTElement
    version: int = 0


@dataclass(frozen=True)
class PublicAttributeKeys:
    """``{PK_{x,AID} = g^{α_AID·H(x)}}`` for all attributes of one AA.

    Keys of ``elements`` are *qualified* attribute names (``aid:attr``).
    """

    aid: str
    elements: dict  # qualified attribute name -> G1Element
    version: int = 0

    def __getitem__(self, qualified_name: str) -> G1Element:
        return self.elements[qualified_name]

    def __contains__(self, qualified_name: str) -> bool:
        return qualified_name in self.elements

    def __len__(self) -> int:
        return len(self.elements)


@dataclass(frozen=True)
class UserSecretKey:
    """``SK_{UID,AID}`` for one (user, authority, owner) triple.

    ``k`` is the paper's ``K_{UID,AID} = PK_UID^{r/β} · g^{α_AID/β}``
    (owner-specific); ``attribute_keys`` maps qualified attribute names to
    ``K_{x,UID,AID} = PK_UID^{α_AID·H(x)}`` (owner-independent).
    """

    uid: str
    aid: str
    owner_id: str
    k: G1Element
    attribute_keys: dict  # qualified attribute name -> G1Element
    version: int = 0

    @property
    def attributes(self) -> frozenset:
        return frozenset(self.attribute_keys)


@dataclass(frozen=True)
class UpdateKey:
    """``UK_AID = (UK1, UK2)`` produced by ReKey.

    ``UK1 = g^{(α̃-α)/β}`` involves an owner's β, so there is one UK1 per
    registered owner (``uk1`` maps owner id → element); ``UK2 = α̃/α`` is
    owner-independent. Sent to all non-revoked users, all owners, and the
    server.
    """

    aid: str
    uk1: dict               # owner id -> G1Element g^{(α̃-α)/β_owner}
    uk2: int                # α̃/α mod group order
    from_version: int = 0
    to_version: int = 1


@dataclass(frozen=True)
class CiphertextUpdateInfo:
    """``UI_AID = {UI_x = (PK_x/PK̃_x)^{βs}}`` for one ciphertext.

    Computed by the owner (who remembers the encryption exponent ``s``)
    and shipped to the server together with the update key so the server
    can run ReEncrypt by proxy — without ever decrypting.
    """

    aid: str
    ciphertext_id: str
    elements: dict = field(default_factory=dict)  # qualified attr -> G1Element
    from_version: int = 0
    to_version: int = 1

"""Table IV: communication cost between role pairs, ours vs Lewko-Waters.

Both columns come from byte-metered networks running the same scripted
lifecycle (setup → key issuance → upload → download): ours through
:class:`repro.system.workflow.CloudStorageSystem`, the baseline through
:class:`repro.baselines.lewko_system.LewkoCloudSystem`. The closed-form
models are asserted to be lower bounds within small framing overhead.
"""

from benchmarks.conftest import FIXED_ATTRS, FIXED_AUTHORITIES, PRESET
from repro.analysis.costmodel import SystemShape, table4_lewko, table4_ours
from repro.analysis.timing import and_policy
from repro.baselines.lewko_system import LewkoCloudSystem
from repro.pairing.serialize import element_sizes
from repro.system.workflow import CloudStorageSystem

SHAPE = SystemShape(
    n_authorities=FIXED_AUTHORITIES,
    attrs_per_authority=FIXED_ATTRS,
    user_attrs_per_authority=FIXED_ATTRS,
    policy_rows=FIXED_AUTHORITIES * FIXED_ATTRS,
)

PAIRS = (("aa", "user"), ("aa", "owner"), ("server", "user"),
         ("owner", "server"))


def _run_lifecycle():
    system = CloudStorageSystem(PRESET, seed=13)
    names = [f"attr{i}" for i in range(FIXED_ATTRS)]
    aids = [f"aa{k}" for k in range(FIXED_AUTHORITIES)]
    for aid in aids:
        system.add_authority(aid, names)
    system.add_owner("owner")
    system.add_user("user")
    for aid in aids:
        system.issue_keys("user", aid, names, "owner")
    policy = and_policy(aids, FIXED_ATTRS)
    system.upload("owner", "record", {"component": (b"\x00" * 64, policy)})
    system.read("user", "record", "component")
    return {
        pair: system.network.bytes_between(*pair) for pair in PAIRS
    }


def _run_lewko_lifecycle():
    system = LewkoCloudSystem(PRESET, seed=13)
    names = [f"attr{i}" for i in range(FIXED_ATTRS)]
    aids = [f"aa{k}" for k in range(FIXED_AUTHORITIES)]
    for aid in aids:
        system.add_authority(aid, names)
    system.add_owner("owner")
    system.add_user("user")
    for aid in aids:
        system.issue_keys("user", aid, names)
    policy = and_policy(aids, FIXED_ATTRS)
    system.upload("owner", "record", {"component": (b"\x00" * 64, policy)})
    system.read("user", "record", "component")
    return {pair: system.network.bytes_between(*pair) for pair in PAIRS}


def test_table4(benchmark):
    sizes = element_sizes(PRESET)
    ours = table4_ours(SHAPE)
    lewko = table4_lewko(SHAPE)
    measured = benchmark(_run_lifecycle)
    measured_lewko = _run_lewko_lifecycle()

    print(f"\n=== Table IV — Communication cost (bytes, preset {PRESET.name}) ===")
    header = (f"{'Channel':<16} {'Ours(model)':>12} {'Ours(meas)':>11} "
              f"{'Lewko(model)':>13} {'Lewko(meas)':>12}")
    print(header)
    print("-" * len(header))
    for pair in PAIRS:
        label = f"{pair[0]}<->{pair[1]}"
        print(f"{label:<16} {ours[pair].bytes(sizes):>12} "
              f"{measured[pair]:>11} {lewko[pair].bytes(sizes):>13} "
              f"{measured_lewko[pair]:>12}")

    # The measured channels carry the model payloads plus small framing
    # (identifiers, the symmetric body, read requests). The crypto payload
    # must dominate and the model must be a lower bound — for BOTH schemes.
    for pair in PAIRS:
        model = ours[pair].bytes(sizes)
        assert measured[pair] >= model, pair
        assert measured[pair] <= model + 600, pair  # framing stays small
        lewko_model = lewko[pair].bytes(sizes)
        assert measured_lewko[pair] >= lewko_model, pair
        assert measured_lewko[pair] <= lewko_model + 600, pair

    # Paper claims, on models AND on measured bytes:
    for pair in (("aa", "owner"), ("server", "user"), ("owner", "server")):
        assert ours[pair].bytes(sizes) < lewko[pair].bytes(sizes)
        assert measured[pair] < measured_lewko[pair]

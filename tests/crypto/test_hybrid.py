"""Tests for the KEM/DEM glue."""

import pytest

from repro.crypto.hybrid import content_key_for, open_sealed, seal
from repro.errors import IntegrityError


class TestHybrid:
    def test_roundtrip(self, group):
        session = group.random_gt()
        body = seal(session, "rec/c", b"payload")
        assert open_sealed(session, "rec/c", body) == b"payload"

    def test_wrong_session_rejected(self, group):
        session = group.random_gt()
        other = group.random_gt()
        body = seal(session, "rec/c", b"payload")
        with pytest.raises(IntegrityError):
            open_sealed(other, "rec/c", body)

    def test_wrong_context_rejected(self, group):
        session = group.random_gt()
        body = seal(session, "rec/c", b"payload")
        with pytest.raises(IntegrityError):
            open_sealed(session, "rec/other", body)

    def test_content_key_binds_both_inputs(self, group):
        session = group.random_gt()
        other = group.random_gt()
        assert content_key_for(session, "a") != content_key_for(session, "b")
        assert content_key_for(session, "a") != content_key_for(other, "a")
        assert len(content_key_for(session, "a")) == 32

    def test_deterministic_key_derivation(self, group):
        session = group.random_gt()
        assert content_key_for(session, "x") == content_key_for(session, "x")

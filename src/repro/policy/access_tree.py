"""Threshold access trees with Shamir secret sharing.

This is the access-structure machinery of the BSW CP-ABE baseline
(Bethencourt-Sahai-Waters, S&P 2007): every internal node is a k-of-n
threshold gate carrying a random polynomial of degree k-1, leaves carry
attribute names, and reconstruction walks the tree combining children
with Lagrange coefficients.

The LSSS machinery in :mod:`repro.policy.lsss` supersedes this for the
paper's own scheme; the tree form is kept because BSW (and the Hur-Noh
revocation baseline built on it) natively use it and because expanding
large thresholds into LSSS matrices is exponential while trees share them
for free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PolicyNotSatisfiedError
from repro.math.polynomial import Polynomial, lagrange_coefficients_at_zero
from repro.policy.ast import And, Attribute, Or, PolicyNode, Threshold
from repro.policy.parser import parse


@dataclass(frozen=True)
class TreeLeaf:
    """A leaf gate: one attribute, one share."""

    attribute: str
    index: int  # global leaf index, assigned in DFS order


@dataclass(frozen=True)
class TreeGate:
    """An internal k-of-n gate."""

    k: int
    children: tuple


def build_tree(policy):
    """Convert a policy (string or AST) into a threshold tree.

    AND becomes n-of-n, OR becomes 1-of-n, thresholds map directly —
    *without* combinatorial expansion. Returns ``(root, leaves)`` where
    ``leaves`` is the DFS-ordered list of :class:`TreeLeaf`.
    """
    node = parse(policy)
    leaves = []

    def convert(current: PolicyNode):
        if isinstance(current, Attribute):
            leaf = TreeLeaf(attribute=current.name, index=len(leaves))
            leaves.append(leaf)
            return leaf
        children = tuple(convert(child) for child in current.children)
        if isinstance(current, And):
            return TreeGate(k=len(children), children=children)
        if isinstance(current, Or):
            return TreeGate(k=1, children=children)
        assert isinstance(current, Threshold)
        return TreeGate(k=current.k, children=children)

    root = convert(node)
    return root, leaves


def share_secret(root, secret: int, order: int, rng) -> dict:
    """Shamir-share ``secret`` down the tree; returns {leaf index: share}.

    Each gate with threshold k draws a random polynomial f of degree k-1
    with f(0) = its own share; child j receives f(j+1).
    """
    shares = {}

    def descend(node, value: int):
        if isinstance(node, TreeLeaf):
            shares[node.index] = value % order
            return
        polynomial = Polynomial.random_with_constant(
            value, node.k - 1, order, rng
        )
        for position, child in enumerate(node.children, start=1):
            descend(child, polynomial.evaluate(position))

    descend(root, secret % order)
    return shares


def reconstruction_coefficients(root, attribute_set, order: int) -> dict:
    """Per-leaf multipliers {leaf index: c_i} with Σ c_i·share_i = secret.

    Chooses, at every satisfied gate, the first k satisfied children (a
    deterministic minimal selection) and multiplies Lagrange coefficients
    down the path. Raises :class:`PolicyNotSatisfiedError` if the tree is
    not satisfied.
    """
    attribute_set = set(attribute_set)

    def satisfiable(node) -> bool:
        if isinstance(node, TreeLeaf):
            return node.attribute in attribute_set
        count = sum(satisfiable(child) for child in node.children)
        return count >= node.k

    if not satisfiable(root):
        raise PolicyNotSatisfiedError("attribute set does not satisfy the tree")

    coefficients = {}

    def collect(node, multiplier: int):
        if isinstance(node, TreeLeaf):
            coefficients[node.index] = (
                coefficients.get(node.index, 0) + multiplier
            ) % order
            return
        chosen = []
        for position, child in enumerate(node.children, start=1):
            if satisfiable(child):
                chosen.append((position, child))
                if len(chosen) == node.k:
                    break
        lagrange = lagrange_coefficients_at_zero(
            [position for position, _ in chosen], order
        )
        for position, child in chosen:
            collect(child, multiplier * lagrange[position] % order)

    collect(root, 1)
    return {index: value for index, value in coefficients.items() if value != 0}


def tree_satisfied(root, attribute_set) -> bool:
    """Fast satisfiability check without building coefficients."""
    attribute_set = set(attribute_set)

    def satisfiable(node) -> bool:
        if isinstance(node, TreeLeaf):
            return node.attribute in attribute_set
        return sum(satisfiable(child) for child in node.children) >= node.k

    return satisfiable(root)

"""Benchmark: the fleet-scale load harness and the pipelined hot path.

Three phases against one in-process TOY80 service:

* **Capacity model** — a closed-loop concurrency sweep (≥3 levels)
  under the default read-dominated op mix, reporting per-op-class
  p50/p95/p99 latency, throughput (total and per worker), RSS, and the
  knee point where fetch p99 blows past the bound.
* **Open-loop run** — Poisson arrivals at a fixed rate, the
  coordinated-omission-free view: latency under *offered* load plus
  the shed count when the outstanding bound saturates.
* **Serial vs pipelined** — the same deterministic fetch-only schedule
  (32 workers over 4 connections) through serial and pipelined client
  fleets, behind a latency proxy emulating a real round trip. Every
  reply must be byte-identical between the modes (the bench FAILS on
  any mismatch, smoke or not), and pipelined aggregate fetch
  throughput must be ≥2x serial (gate skipped with ``--smoke``).

Usage::

    PYTHONPATH=src python benchmarks/bench_service_load.py
    PYTHONPATH=src python benchmarks/bench_service_load.py --smoke \
        --out /tmp/smoke.json --server-max-inflight 1

``--server-max-inflight 1`` runs the whole bench against a server that
dispatches serially — CI runs both server shapes, because the client
must behave (and the bytes must match) whether or not the far side
pipelines.

Writes ``BENCH_service_load.json`` (or ``--out``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.ec.params import TOY80
from repro.loadgen import (
    LoadHarness,
    OpMix,
    capacity_model,
    pipelined_vs_serial,
    start_local_service,
)
from repro.pairing.group import PairingGroup

from bench_common import arith_metadata, counter_summary

SPEEDUP_GATE = 2.0


async def run_bench(args) -> tuple:
    group = PairingGroup(TOY80, seed=args.seed)
    if args.smoke:
        levels = (2, 4, 8)
        records, ops, warmup = 12, 8, 2
        open_rate, open_duration = 150.0, 1.0
        compare_ops = 6
    else:
        levels = (4, 16, 32)
        records, ops, warmup = 48, 40, 5
        open_rate, open_duration = 400.0, 3.0
        compare_ops = 30
    report = {
        "preset": "TOY80",
        "smoke": bool(args.smoke),
        "server_max_inflight": args.server_max_inflight,
        "arith": arith_metadata(group),
    }
    failures = []
    with tempfile.TemporaryDirectory() as root:
        service = await start_local_service(
            group, root, max_inflight=args.server_max_inflight
        )
        try:
            harness = LoadHarness(
                group, service.host, service.port, users=args.users,
                records=records, seed=args.seed, connections=4,
                max_inflight=32,
            )
            await harness.setup()
            print(f"capacity sweep at levels {levels} "
                  f"({records} records, {args.users} simulated users)...",
                  flush=True)
            model = await capacity_model(
                harness, levels=levels, ops_per_worker=ops,
                warmup_ops=warmup,
            )
            for level in model["levels"]:
                fetch = level["per_class"].get("fetch", {})
                print(f"  {level['concurrency']:>3} workers: "
                      f"{level['throughput_ops']:>8.1f} ops/s "
                      f"({level['ops_per_worker_per_sec']:>7.2f}/worker), "
                      f"fetch p99 {fetch.get('p99', 0) * 1000:.2f} ms",
                      flush=True)
            print(f"  knee: {model['knee']}", flush=True)
            report["capacity"] = model

            print(f"open loop at {open_rate} ops/s for {open_duration}s...",
                  flush=True)
            open_result = await harness.run_open(
                open_rate, open_duration, warmup=min(0.5, open_duration / 4),
                max_outstanding=256,
            )
            print(f"  completed {open_result['measured_ops']} ops "
                  f"({open_result['throughput_ops']} ops/s), "
                  f"shed {open_result['shed']}", flush=True)
            report["open_loop"] = open_result
            await harness.close()

            print(f"serial vs pipelined: 32 workers / 4 connections, "
                  f"rtt {args.rtt * 1000:.1f} ms...", flush=True)
            comparison = await pipelined_vs_serial(
                group, service.host, service.port, workers=32,
                ops_per_worker=compare_ops, warmup_ops=2, connections=4,
                rtt=args.rtt, users=args.users, records=records,
                seed=args.seed + 1,
            )
            print(f"  serial {comparison['fetch_throughput_serial']} ops/s, "
                  f"pipelined {comparison['fetch_throughput_pipelined']} "
                  f"ops/s, speedup {comparison['fetch_speedup']}x, "
                  f"byte_identical={comparison['byte_identical']} "
                  f"({comparison['compared_responses']} responses)",
                  flush=True)
            report["pipelined_vs_serial"] = comparison

            if not comparison["byte_identical"]:
                failures.append(
                    "pipelined responses are NOT byte-identical to serial"
                )
            speedup = comparison["fetch_speedup"] or 0.0
            if not args.smoke and speedup < SPEEDUP_GATE:
                failures.append(
                    f"pipelined fetch speedup {speedup}x is below the "
                    f"{SPEEDUP_GATE}x gate"
                )
            report["stats"] = service.stats()
        finally:
            await service.stop()
    report["counters"] = counter_summary(group)
    report["gates"] = {
        "byte_identical": report["pipelined_vs_serial"]["byte_identical"],
        "speedup_gate": SPEEDUP_GATE,
        "speedup_gate_enforced": not args.smoke,
        "failures": failures,
    }
    return report, failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small pools and op counts (seconds, not "
                             "minutes); relaxes the speedup gate, never "
                             "the byte-identity gate")
    parser.add_argument("--seed", type=int, default=0x10AD)
    parser.add_argument("--users", type=int, default=100_000,
                        help="simulated registered-user population")
    parser.add_argument("--rtt", type=float, default=0.004,
                        help="emulated round trip for the serial-vs-"
                             "pipelined comparison (seconds)")
    parser.add_argument("--server-max-inflight", type=int, default=64,
                        dest="server_max_inflight",
                        help="server-side per-session window (1 = a "
                             "serial server)")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(__file__), os.pardir, "BENCH_service_load.json"))
    args = parser.parse_args()

    report, failures = asyncio.run(run_bench(args))
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"report written to {args.out}", flush=True)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr, flush=True)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

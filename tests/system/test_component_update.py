"""Owner-driven component updates (data mutation with fresh keys)."""

import pytest

from repro.ec.params import TOY80
from repro.errors import PolicyNotSatisfiedError, SchemeError
from repro.system.workflow import CloudStorageSystem


@pytest.fixture()
def system():
    deployment = CloudStorageSystem(TOY80, seed=2222)
    deployment.add_authority("aa", ["x", "y"])
    deployment.add_owner("alice")
    deployment.add_user("bob")
    deployment.add_user("eve")
    deployment.issue_keys("bob", "aa", ["x"], "alice")
    deployment.issue_keys("eve", "aa", ["y"], "alice")
    deployment.upload("alice", "rec", {"c": (b"version 1", "aa:x")})
    return deployment


class TestComponentUpdate:
    def test_new_data_served(self, system):
        system.update_component("alice", "rec", "c", b"version 2", "aa:x")
        assert system.read("bob", "rec", "c") == b"version 2"

    def test_policy_can_change_with_update(self, system):
        system.update_component("alice", "rec", "c", b"version 2", "aa:y")
        assert system.read("eve", "rec", "c") == b"version 2"
        with pytest.raises(PolicyNotSatisfiedError):
            system.read("bob", "rec", "c")

    def test_repeated_updates_mint_fresh_ids(self, system):
        first = system.update_component("alice", "rec", "c", b"v2", "aa:x")
        second = system.update_component("alice", "rec", "c", b"v3", "aa:x")
        assert (
            first.abe_ciphertext.ciphertext_id
            != second.abe_ciphertext.ciphertext_id
        )
        assert system.read("bob", "rec", "c") == b"v3"

    def test_other_owner_cannot_update(self, system):
        system.add_owner("mallory")
        with pytest.raises(SchemeError, match="belongs"):
            system.update_component("mallory", "rec", "c", b"evil", "aa:x")

    def test_unknown_component_rejected(self, system):
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            system.update_component("alice", "rec", "zz", b"x", "aa:x")

    def test_updated_component_survives_revocation(self, system):
        system.update_component("alice", "rec", "c", b"v2", "aa:x")
        system.add_user("carol")
        system.issue_keys("carol", "aa", ["x"], "alice")
        system.revoke("aa", "carol", ["x"])
        # bob survived the revocation; the updated data re-encrypted fine.
        assert system.read("bob", "rec", "c") == b"v2"

    def test_stale_ciphertext_index_entry_removed(self, system):
        old_ct_id = (
            system.server.record("rec").component("c")
            .abe_ciphertext.ciphertext_id
        )
        system.update_component("alice", "rec", "c", b"v2", "aa:x")
        from repro.errors import StorageError

        result = system.authorities["aa"].core.rekey("bob", ["x"])
        _, update_key = result
        with pytest.raises(StorageError):
            system.server.reencrypt(old_ct_id, update_key, None)

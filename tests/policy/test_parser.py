"""Tests for the policy parser."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PolicyError
from repro.policy.ast import And, Attribute, Or, PolicyNode, Threshold
from repro.policy.parser import parse


class TestBasics:
    def test_single_attribute(self):
        assert parse("doctor") == Attribute("doctor")

    def test_qualified_attribute(self):
        assert parse("hospital:doctor") == Attribute("hospital:doctor")

    def test_and(self):
        assert parse("a AND b") == And(Attribute("a"), Attribute("b"))

    def test_or(self):
        assert parse("a OR b") == Or(Attribute("a"), Attribute("b"))

    def test_case_insensitive_keywords(self):
        assert parse("a and b") == parse("a AND b")
        assert parse("a Or b") == parse("a OR b")

    def test_precedence_and_binds_tighter(self):
        node = parse("a OR b AND c")
        assert node == Or(Attribute("a"), And(Attribute("b"), Attribute("c")))

    def test_parentheses(self):
        node = parse("(a OR b) AND c")
        assert node == And(Or(Attribute("a"), Attribute("b")), Attribute("c"))

    def test_nary_chains_flatten(self):
        node = parse("a AND b AND c")
        assert isinstance(node, And)
        assert len(node.children) == 3

    def test_idempotent_on_ast(self):
        node = And(Attribute("a"), Attribute("b"))
        assert parse(node) is node


class TestThresholds:
    def test_basic(self):
        node = parse("2 of (a, b, c)")
        assert node == Threshold(
            2, [Attribute("a"), Attribute("b"), Attribute("c")]
        )

    def test_nested_expressions_in_threshold(self):
        node = parse("2 of (a AND b, c, d OR e)")
        assert isinstance(node, Threshold)
        assert node.k == 2
        assert isinstance(node.children[0], And)
        assert isinstance(node.children[2], Or)

    def test_threshold_inside_formula(self):
        node = parse("x AND 1 of (y, z)")
        assert isinstance(node, And)
        assert isinstance(node.children[1], Threshold)

    def test_of_requires_paren(self):
        with pytest.raises(PolicyError):
            parse("2 of a, b")


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "a AND",
            "AND a",
            "a b",
            "(a OR b",
            "a)",
            "a %% b",
            "a OR OR b",
            "2 of ()",
            "5 of (a, b)",
            "a,b",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(PolicyError):
            parse(bad)

    def test_rejects_non_string(self):
        with pytest.raises(PolicyError):
            parse(42)


# -- round-trip property: str(ast) parses back to an equivalent formula ------

attribute_names = st.sampled_from(
    ["a", "b", "c", "hospital:doctor", "trial:researcher", "x_1", "y.z"]
)


def policies(max_depth=3):
    leaf = attribute_names.map(Attribute)

    def extend(children_strategy):
        lists = st.lists(children_strategy, min_size=2, max_size=3)
        return st.one_of(
            lists.map(lambda cs: And(cs)),
            lists.map(lambda cs: Or(cs)),
            lists.map(lambda cs: Threshold(1, cs)),
            st.lists(children_strategy, min_size=2, max_size=4).flatmap(
                lambda cs: st.integers(1, len(cs)).map(
                    lambda k: Threshold(k, cs)
                )
            ),
        )

    return st.recursive(leaf, extend, max_leaves=8)


class TestRoundTrip:
    @given(policies())
    def test_str_parse_roundtrip(self, node):
        reparsed = parse(str(node))
        assert reparsed == node or _equivalent(reparsed, node)


def _equivalent(a: PolicyNode, b: PolicyNode) -> bool:
    """Semantic equivalence over the full attribute universe of both."""
    import itertools

    universe = sorted(set(a.attributes()) | set(b.attributes()))
    if len(universe) > 6:
        universe = universe[:6]  # bounded exhaustive check
    for size in range(len(universe) + 1):
        for subset in itertools.combinations(universe, size):
            if a.evaluate(set(subset)) != b.evaluate(set(subset)):
                return False
    return True

"""Multi-owner scenarios: one revocation must update every owner's world.

The update key carries one ``UK1`` component *per owner* (each owner has
its own β), and phase 2 must re-encrypt the affected ciphertexts of
every owner — these tests pin that down.
"""

import pytest

from repro.ec.params import TOY80
from repro.errors import (
    AuthorizationError,
    PolicyNotSatisfiedError,
    SchemeError,
)
from repro.system.workflow import CloudStorageSystem

DENIED = (PolicyNotSatisfiedError, SchemeError, AuthorizationError)


@pytest.fixture()
def system():
    deployment = CloudStorageSystem(TOY80, seed=515)
    deployment.add_authority("aa", ["x", "y"])
    deployment.add_owner("alice")
    deployment.add_owner("carol")
    deployment.add_user("bob")
    deployment.add_user("dan")
    for owner in ("alice", "carol"):
        deployment.issue_keys("bob", "aa", ["x"], owner)
        deployment.issue_keys("dan", "aa", ["x"], owner)
    deployment.upload("alice", "rec-a", {"c": (b"alice data", "aa:x")})
    deployment.upload("carol", "rec-c", {"c": (b"carol data", "aa:x")})
    return deployment


class TestMultiOwnerRevocation:
    def test_update_key_covers_every_owner(self, system):
        result = system.revoke("aa", "bob", ["x"])
        assert set(result.update_key.uk1) == {"alice", "carol"}

    def test_revocation_hits_both_owners_data(self, system):
        system.revoke("aa", "bob", ["x"])
        for record in ("rec-a", "rec-c"):
            with pytest.raises(DENIED):
                system.read("bob", record, "c")

    def test_survivor_reads_both_owners_data(self, system):
        system.revoke("aa", "bob", ["x"])
        assert system.read("dan", "rec-a", "c") == b"alice data"
        assert system.read("dan", "rec-c", "c") == b"carol data"

    def test_both_owners_ledgers_advance(self, system):
        system.revoke("aa", "bob", ["x"])
        for owner_id, record in (("alice", "rec-a/c"), ("carol", "rec-c/c")):
            ledger = system.owners[owner_id].core.record(record)
            assert ledger.versions["aa"] == 1

    def test_user_key_scoping_is_per_owner(self, system):
        """bob's alice-scoped key never opens carol's data even though
        the attribute sets match."""
        bob = system.users["bob"]
        alice_keys = bob.secret_keys_for("alice")
        carol_keys = bob.secret_keys_for("carol")
        assert alice_keys["aa"].k != carol_keys["aa"].k
        # Attribute components are owner-independent (paper structure):
        assert (
            alice_keys["aa"].attribute_keys == carol_keys["aa"].attribute_keys
        )

    def test_new_owner_after_revocation(self, system):
        """An owner created after a revocation learns the current-version
        keys and interoperates with survivors immediately."""
        system.revoke("aa", "bob", ["x"])
        system.add_owner("erin")
        system.issue_keys("dan", "aa", ["x"], "erin")
        system.upload("erin", "rec-e", {"c": (b"erin data", "aa:x")})
        assert system.read("dan", "rec-e", "c") == b"erin data"
        with pytest.raises(DENIED):
            system.read("bob", "rec-e", "c")

    def test_hardened_multiowner(self, system):
        result = system.revoke("aa", "bob", ["x"], hardened=True)
        # dan re-issued for both owner scopes.
        assert ("dan", "alice") in result.reissued_keys
        assert ("dan", "carol") in result.reissued_keys
        assert system.read("dan", "rec-a", "c") == b"alice data"
        assert system.read("dan", "rec-c", "c") == b"carol data"
        with pytest.raises(DENIED):
            system.read("bob", "rec-c", "c")

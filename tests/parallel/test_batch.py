"""Batch ReEncrypt: bit-identity with the sequential path, per-item
typed errors, and already-current triage — inline and pooled."""

import pytest

from repro.core.reencrypt import reencrypt
from repro.errors import RevocationError, SchemeError
from repro.parallel.batch import (
    ALREADY_CURRENT,
    ERROR,
    UPDATED,
    batch_outcomes,
    reencrypt_batch,
)
from repro.parallel.pool import CryptoPool


def _sequential_expected(batch):
    """The reference: the paper's one-at-a-time ReEncrypt."""
    return [
        reencrypt(batch.group, ct, batch.update_key, ui).to_bytes()
        for ct, ui in zip(batch.ciphertexts, batch.update_infos)
    ]


@pytest.mark.parametrize("workers", [0, 1, 4])
@pytest.mark.parametrize("chunk_size", [1, 2, 5])
def test_bit_identical_across_pool_and_chunk_sizes(batch, workers,
                                                   chunk_size):
    expected = _sequential_expected(batch)
    with CryptoPool(workers) as pool:
        outcomes = reencrypt_batch(
            batch.group, batch.ciphertexts, batch.update_key,
            batch.update_infos, pool=pool, chunk_size=chunk_size,
        )
    assert [o.status for o in outcomes] == [UPDATED] * len(expected)
    assert [o.ciphertext.to_bytes() for o in outcomes] == expected
    assert [o.ciphertext_id for o in outcomes] \
        == [ct.ciphertext_id for ct in batch.ciphertexts]


def test_amortized_pairing_still_bumps_versions(batch):
    outcomes = batch_outcomes(batch.group, batch.ciphertexts,
                              batch.update_key, batch.update_infos)
    to_version = batch.update_key.to_version
    for outcome in outcomes:
        assert outcome.ciphertext.version_of("hospital") == to_version


@pytest.mark.parametrize("workers", [0, 1])
def test_wrong_target_rejected_per_item_rest_unaffected(batch, workers):
    """One mismatched update-info poisons only its own slot."""
    expected = _sequential_expected(batch)
    bad_infos = list(batch.update_infos)
    bad_infos[2] = batch.update_infos[3]  # UI for a different ciphertext
    with CryptoPool(workers) as pool:
        outcomes = reencrypt_batch(
            batch.group, batch.ciphertexts, batch.update_key, bad_infos,
            pool=pool, chunk_size=2,
        )
    assert outcomes[2].status == ERROR
    assert outcomes[2].ciphertext is None
    assert isinstance(outcomes[2].error, RevocationError)
    assert outcomes[2].error_codename == "revocation"
    for index in (0, 1, 3, 4, 5):
        assert outcomes[index].status == UPDATED
        assert outcomes[index].ciphertext.to_bytes() == expected[index]


@pytest.mark.parametrize("workers", [0, 1])
def test_version_mismatch_rejected_per_item(batch, workers):
    """An already-rolled ciphertext fails the next epoch's check when its
    update information still targets the old epoch."""
    rolled = reencrypt(batch.group, batch.ciphertexts[1], batch.update_key,
                       batch.update_infos[1])
    cts = list(batch.ciphertexts)
    cts[1] = rolled  # at to_version, but ui[1] says from_version
    bad_infos = list(batch.update_infos)
    bad_infos[1] = batch.update_infos[1]

    # With its own (matching) UI the rolled ciphertext is already-current,
    # not an error: the sweep can be replayed harmlessly.
    with CryptoPool(workers) as pool:
        outcomes = reencrypt_batch(batch.group, cts, batch.update_key,
                                   bad_infos, pool=pool, chunk_size=2)
    assert outcomes[1].status == ALREADY_CURRENT
    assert outcomes[1].ciphertext is None
    assert all(o.status == UPDATED for i, o in enumerate(outcomes)
               if i != 1)

    # But a UI for a *different* version pair is a typed per-item error.
    doubled = reencrypt(batch.group, rolled, *_next_epoch(batch, rolled))
    cts[1] = doubled  # two versions ahead of ui[1]
    with CryptoPool(workers) as pool:
        outcomes = reencrypt_batch(batch.group, cts, batch.update_key,
                                   bad_infos, pool=pool, chunk_size=2)
    assert outcomes[1].status == ERROR
    assert outcomes[1].error_codename == "revocation"
    assert all(o.status == UPDATED for i, o in enumerate(outcomes)
               if i != 1)


def _next_epoch(batch, ciphertext):
    """A second rekey (version 1 -> 2) plus matching update info."""
    from repro.core.revocation import rekey_standard

    if not hasattr(batch, "_epoch2"):
        batch.owner.apply_update_key(batch.update_key)
        batch.owner.note_reencrypted(ciphertext.ciphertext_id,
                                     batch.update_key)
        victim2 = batch.scheme.register_user("victim2")
        batch.hospital.keygen(victim2, ["doctor"], "alice")
        batch._epoch2 = rekey_standard(
            batch.hospital, "victim2", ["doctor"]
        ).update_key
    update_key = batch._epoch2
    return update_key, batch.owner.update_info(ciphertext, update_key)


def test_length_mismatch_is_a_scheme_error(batch):
    with pytest.raises(SchemeError):
        reencrypt_batch(batch.group, batch.ciphertexts, batch.update_key,
                        batch.update_infos[:-1])


def test_uk_cache_binds_to_the_group_instance(batch):
    """Regression: the per-process UpdateKey cache must die with its
    group. Keying by id(group) let a freshly-built group alias a dead
    group's recycled id and pick up elements bound to the old instance;
    the weak per-instance keying decodes anew for every new group."""
    import gc

    from repro.core.serialize import encode_update_key
    from repro.ec.params import TOY80
    from repro.pairing.group import PairingGroup
    from repro.parallel.batch import _UK_CACHE, _cached_update_key

    uk_raw = encode_update_key(batch.group, batch.update_key)
    group_a = PairingGroup(TOY80)
    cached_a = _cached_update_key(group_a, uk_raw)
    assert _cached_update_key(group_a, uk_raw) is cached_a
    assert group_a in _UK_CACHE
    del cached_a, group_a
    gc.collect()
    group_b = PairingGroup(TOY80)
    assert group_b not in _UK_CACHE
    cached_b = _cached_update_key(group_b, uk_raw)
    assert all(el.group is group_b for el in cached_b.uk1.values())

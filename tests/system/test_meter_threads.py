"""Meter under contention: the service records transfers from the event
loop, its offload thread, and pool callbacks at once — counters must
stay exact, not merely close."""

import threading

from repro.system.meter import Meter, role_pair


THREADS = 8
PER_THREAD = 400


def test_concurrent_records_keep_exact_totals(group):
    meter = Meter(group)
    barrier = threading.Barrier(THREADS)

    def hammer(index):
        barrier.wait()
        for step in range(PER_THREAD):
            meter.record_sized(f"sender-{index}", "owner",
                               "cloud", "server", "blob", 3)
            meter.record_wire(7)

    workers = [threading.Thread(target=hammer, args=(i,))
               for i in range(THREADS)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()

    total = THREADS * PER_THREAD
    assert len(meter.log) == total
    assert meter.total_bytes() == 3 * total
    assert meter.bytes_between("owner", "server") == 3 * total
    assert meter.messages_between("owner", "server") == total
    assert meter.wire_bytes == 7 * total
    # The log and the channel aggregates moved together.
    channel = meter.channels[role_pair("owner", "server")]
    assert (channel.messages, channel.bytes) == (total, 3 * total)


def test_concurrent_reads_during_writes_never_crash(group):
    meter = Meter(group)
    stop = threading.Event()

    def reader():
        while not stop.is_set():
            meter.total_bytes()
            meter.channel_summary()
            meter.bytes_by_kind()

    observer = threading.Thread(target=reader)
    observer.start()
    try:
        for step in range(2000):
            meter.record_sized("a", "aa", "u", "user", "key", 1)
    finally:
        stop.set()
        observer.join()
    assert meter.total_bytes() == 2000

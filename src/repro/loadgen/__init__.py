"""Fleet-scale workload generation against the storage service.

The package is the instrument every service-layer performance change
is judged with (see DESIGN §15): :mod:`repro.loadgen.workload` defines
*what* a simulated fleet of registered users asks for (a Zipf-popular
record space and a weighted operation mix), :mod:`repro.loadgen.runner`
drives it over real sockets (closed-loop worker fleets and open-loop
arrival processes, warmup/measure windows, per-op-class latency
percentiles, throughput, RSS sampling), and
:mod:`repro.loadgen.capacity` turns repeated runs into a capacity
model — ops/sec per worker across concurrency levels, the knee point
where tail latency gives out, and the serial-vs-pipelined comparison
with byte-identity checking.
"""

from repro.loadgen.capacity import capacity_model, pipelined_vs_serial
from repro.loadgen.netem import LatencyProxy
from repro.loadgen.runner import LoadHarness, start_local_service
from repro.loadgen.workload import OpMix, ZipfPopularity

__all__ = [
    "LatencyProxy",
    "LoadHarness",
    "OpMix",
    "ZipfPopularity",
    "capacity_model",
    "pipelined_vs_serial",
    "start_local_service",
]

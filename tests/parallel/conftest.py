"""Fixtures for the parallel batch-engine tests.

One module-scoped revocation scenario: a single-authority deployment,
six live ciphertexts under two policies, one standard rekey and the
matching per-ciphertext update information — enough to exercise the
batch engine's already-current / updated / error triage without paying
for a fresh deployment per test.
"""

from dataclasses import dataclass

import pytest

from repro.core.revocation import rekey_standard
from repro.core.scheme import MultiAuthorityABE
from repro.ec.params import TOY80

N_CIPHERTEXTS = 6


@dataclass
class BatchScenario:
    scheme: object
    hospital: object
    owner: object
    messages: list
    ciphertexts: list
    update_key: object
    update_infos: list

    @property
    def group(self):
        return self.scheme.group


@pytest.fixture(scope="module")
def batch():
    scheme = MultiAuthorityABE(TOY80, seed=0xBA7C)
    hospital = scheme.setup_authority("hospital", ["doctor", "nurse"])
    owner = scheme.setup_owner("alice", [hospital])
    victim_pk = scheme.register_user("victim")
    hospital.keygen(victim_pk, ["doctor"], "alice")

    policies = ("hospital:doctor", "hospital:doctor OR hospital:nurse")
    messages = [scheme.random_message() for _ in range(N_CIPHERTEXTS)]
    ciphertexts = [
        owner.encrypt(message, policies[index % len(policies)],
                      ciphertext_id=f"ct-{index:02d}")
        for index, message in enumerate(messages)
    ]

    result = rekey_standard(hospital, "victim", ["doctor"])
    update_key = result.update_key
    update_infos = [owner.update_info(ct, update_key) for ct in ciphertexts]
    return BatchScenario(
        scheme=scheme, hospital=hospital, owner=owner, messages=messages,
        ciphertexts=ciphertexts, update_key=update_key,
        update_infos=update_infos,
    )

"""Supersingular elliptic curve y² = x³ + x over F_p with p ≡ 3 (mod 4).

This is the curve family behind PBC's "type A" pairing parameters used by
the paper's evaluation. For p ≡ 3 (mod 4) the curve is supersingular with
exactly ``p + 1`` points over F_p, its embedding degree is 2, and the
distortion map ``(x, y) ↦ (-x, i·y)`` (with i² = -1 in F_p²) turns the
Weil/Tate pairing into a *symmetric* pairing on the order-r subgroup.

Points are affine tuples ``(x, y)`` of ints; the point at infinity is
``None``. The curve object is a context providing the group law.
"""

from __future__ import annotations

import random

from repro.errors import MathError, ParameterError
from repro.math.field import PrimeField
from repro.math.integers import batch_invmod

Point = tuple  # (x, y) affine coordinates; None is the point at infinity
INFINITY = None

# Jacobian coordinates (X, Y, Z) represent the affine point (X/Z², Y/Z³);
# Z == 0 encodes the point at infinity (canonically (1, 1, 0)).
_JAC_INFINITY = (1, 1, 0)


def _jac_double(point, p):
    """Double a Jacobian point on y² = x³ + x (a = 1), inversion-free."""
    x, y, z = point
    if z == 0 or y == 0:
        return _JAC_INFINITY
    yy = y * y % p
    s = 4 * x * yy % p
    zz = z * z % p
    m = (3 * x * x + zz * zz) % p  # a = 1 contributes Z⁴
    nx = (m * m - 2 * s) % p
    ny = (m * (s - nx) - 8 * yy * yy) % p
    nz = 2 * y * z % p
    return (nx, ny, nz)


def _jac_add_affine(point, affine, p):
    """Mixed addition: Jacobian accumulator + affine point, inversion-free."""
    if affine is INFINITY:
        return point
    ax, ay = affine
    x, y, z = point
    if z == 0:
        return (ax, ay, 1)
    zz = z * z % p
    u2 = ax * zz % p
    s2 = ay * zz * z % p
    h = (u2 - x) % p
    r = (s2 - y) % p
    if h == 0:
        if r == 0:
            return _jac_double(point, p)
        return _JAC_INFINITY
    hh = h * h % p
    hhh = h * hh % p
    v = x * hh % p
    nx = (r * r - hhh - 2 * v) % p
    ny = (r * (v - nx) - y * hhh) % p
    nz = z * h % p
    return (nx, ny, nz)


def _jac_add(point1, point2, p):
    """Full Jacobian + Jacobian addition, inversion-free."""
    x1, y1, z1 = point1
    if z1 == 0:
        return point2
    x2, y2, z2 = point2
    if z2 == 0:
        return point1
    z1z1 = z1 * z1 % p
    z2z2 = z2 * z2 % p
    u1 = x1 * z2z2 % p
    u2 = x2 * z1z1 % p
    s1 = y1 * z2z2 * z2 % p
    s2 = y2 * z1z1 * z1 % p
    h = (u2 - u1) % p
    r = (s2 - s1) % p
    if h == 0:
        if r == 0:
            return _jac_double(point1, p)
        return _JAC_INFINITY
    hh = h * h % p
    hhh = h * hh % p
    v = u1 * hh % p
    nx = (r * r - hhh - 2 * v) % p
    ny = (r * (v - nx) - s1 * hhh) % p
    nz = z1 * z2 * h % p
    return (nx, ny, nz)


def _wnaf(scalar: int, width: int) -> list:
    """Width-``w`` non-adjacent form of a non-negative scalar.

    Returns little-endian digits, each zero or odd in
    ``(-2^(w-1), 2^(w-1))``; at most one in ``width`` digits is nonzero.
    """
    digits = []
    modulus = 1 << width
    half = 1 << (width - 1)
    while scalar:
        if scalar & 1:
            digit = scalar % modulus
            if digit >= half:
                digit -= modulus
            scalar -= digit
        else:
            digit = 0
        digits.append(digit)
        scalar >>= 1
    return digits


class SupersingularCurve:
    """The curve E: y² = x³ + x over F_p (coefficient a = 1, b = 0)."""

    __slots__ = ("field", "p")

    def __init__(self, field: PrimeField):
        if field.p % 4 != 3:
            raise ParameterError("type-A curves require p ≡ 3 (mod 4)")
        self.field = field
        self.p = field.p

    # -- membership ------------------------------------------------------------

    def is_on_curve(self, point) -> bool:
        """True iff the point satisfies y² = x³ + x (infinity included)."""
        if point is INFINITY:
            return True
        x, y = point
        p = self.p
        return (y * y - (x * x * x + x)) % p == 0

    def check(self, point) -> Point:
        """Validate a point, returning it; raises :class:`MathError` if invalid."""
        if not self.is_on_curve(point):
            raise MathError(f"point {point} is not on the curve")
        return point

    # -- group law ---------------------------------------------------------------

    def neg(self, point):
        if point is INFINITY:
            return INFINITY
        x, y = point
        return (x, -y % self.p)

    def add(self, point1, point2):
        """Affine chord-and-tangent addition."""
        if point1 is INFINITY:
            return point2
        if point2 is INFINITY:
            return point1
        p = self.p
        x1, y1 = point1
        x2, y2 = point2
        if x1 == x2:
            if (y1 + y2) % p == 0:
                return INFINITY
            return self.double(point1)
        slope = (y2 - y1) * pow(x2 - x1, -1, p) % p
        x3 = (slope * slope - x1 - x2) % p
        y3 = (slope * (x1 - x3) - y1) % p
        return (x3, y3)

    def double(self, point):
        if point is INFINITY:
            return INFINITY
        p = self.p
        x, y = point
        if y == 0:
            return INFINITY
        slope = (3 * x * x + 1) * pow(2 * y, -1, p) % p
        x3 = (slope * slope - 2 * x) % p
        y3 = (slope * (x - x3) - y) % p
        return (x3, y3)

    def sub(self, point1, point2):
        return self.add(point1, self.neg(point2))

    # -- coordinate conversion --------------------------------------------------

    def to_affine(self, jacobian):
        """Convert one Jacobian point to affine (single inversion)."""
        x, y, z = jacobian
        if z == 0:
            return INFINITY
        p = self.p
        z_inv = pow(z, -1, p)
        z_inv2 = z_inv * z_inv % p
        return (x * z_inv2 % p, y * z_inv2 * z_inv % p)

    def batch_normalize(self, jacobian_points) -> list:
        """Convert many Jacobian points to affine with ONE inversion.

        Montgomery batch inversion over the Z coordinates; points at
        infinity (Z == 0) come back as ``INFINITY``.
        """
        jacobian_points = list(jacobian_points)
        p = self.p
        finite = [(i, pt) for i, pt in enumerate(jacobian_points) if pt[2] != 0]
        result = [INFINITY] * len(jacobian_points)
        if not finite:
            return result
        inverses = batch_invmod([pt[2] for _, pt in finite], p)
        for (index, (x, y, _)), z_inv in zip(finite, inverses):
            z_inv2 = z_inv * z_inv % p
            result[index] = (x * z_inv2 % p, y * z_inv2 * z_inv % p)
        return result

    def _odd_multiples(self, point, count: int) -> list:
        """Affine [P, 3P, 5P, ..., (2·count-1)P] via one batch inversion."""
        p = self.p
        jac = [(point[0], point[1], 1)]
        twice = _jac_double(jac[0], p)
        for _ in range(count - 1):
            jac.append(_jac_add(jac[-1], twice, p))
        return self.batch_normalize(jac)

    def mul(self, point, scalar: int):
        """Scalar multiplication: wNAF sliding window over Jacobian coordinates.

        Window-4 non-adjacent form cuts the addition count of plain
        double-and-add roughly in half; all curve arithmetic is
        inversion-free, with a single inversion converting back to affine
        at the end. Exact — returns precisely ``[scalar]·point``.
        """
        if point is INFINITY or scalar == 0:
            return INFINITY
        if scalar < 0:
            point = self.neg(point)
            scalar = -scalar
        if point[1] == 0:
            # 2-torsion: 2P = O, so [k]P collapses to parity.
            return point if scalar & 1 else INFINITY
        p = self.p
        if scalar.bit_length() <= 4:
            # Tiny scalars: plain double-and-add, no precomputation.
            acc = _JAC_INFINITY
            for bit_index in range(scalar.bit_length() - 1, -1, -1):
                acc = _jac_double(acc, p)
                if (scalar >> bit_index) & 1:
                    acc = _jac_add_affine(acc, point, p)
            return self.to_affine(acc)
        width = 4
        table = self._odd_multiples(point, 1 << (width - 2))
        digits = _wnaf(scalar, width)
        acc = _JAC_INFINITY
        for digit in reversed(digits):
            acc = _jac_double(acc, p)
            if digit:
                if digit > 0:
                    entry = table[digit >> 1]
                else:
                    entry = table[(-digit) >> 1]
                    if entry is not INFINITY:
                        entry = (entry[0], -entry[1] % p)
                acc = _jac_add_affine(acc, entry, p)
        return self.to_affine(acc)

    def multi_mul(self, pairs):
        """Multi-scalar multiplication ``Σ [k_i]·P_i`` (Straus/Pippenger).

        ``pairs`` is an iterable of ``(point, scalar)``. Small batches use
        Straus/Shamir interleaving (one shared doubling chain, wNAF digits
        per point); large batches switch to Pippenger's bucket method.
        Exact, like :meth:`mul`.
        """
        return self.to_affine(self.multi_mul_jacobian(pairs))

    def multi_mul_jacobian(self, pairs):
        """:meth:`multi_mul` without the final affine conversion."""
        p = self.p
        prepared = []
        torsion_acc = _JAC_INFINITY
        for point, scalar in pairs:
            if point is INFINITY or scalar == 0:
                continue
            if scalar < 0:
                point = self.neg(point)
                scalar = -scalar
            if point[1] == 0:
                if scalar & 1:
                    torsion_acc = _jac_add_affine(torsion_acc, point, p)
                continue
            prepared.append((point, scalar))
        if not prepared:
            return torsion_acc
        if len(prepared) >= 32:
            acc = self._pippenger(prepared)
        else:
            acc = self._straus(prepared)
        if torsion_acc[2] != 0:
            acc = _jac_add(acc, torsion_acc, p)
        return acc

    def _straus(self, prepared):
        """Interleaved wNAF: one doubling chain shared by every scalar."""
        p = self.p
        width = 4
        tables = []
        digit_rows = []
        for point, scalar in prepared:
            tables.append(self._odd_multiples(point, 1 << (width - 2)))
            digit_rows.append(_wnaf(scalar, width))
        length = max(len(row) for row in digit_rows)
        acc = _JAC_INFINITY
        for position in range(length - 1, -1, -1):
            acc = _jac_double(acc, p)
            for table, digits in zip(tables, digit_rows):
                if position >= len(digits):
                    continue
                digit = digits[position]
                if not digit:
                    continue
                if digit > 0:
                    entry = table[digit >> 1]
                else:
                    entry = table[(-digit) >> 1]
                    if entry is not INFINITY:
                        entry = (entry[0], -entry[1] % p)
                acc = _jac_add_affine(acc, entry, p)
        return acc

    def _pippenger(self, prepared):
        """Bucket method for large batches: O(bits/c · (n + 2^c)) additions."""
        p = self.p
        n = len(prepared)
        c = max(2, n.bit_length() - 2)  # ~log2(n), the classic choice
        max_bits = max(scalar.bit_length() for _, scalar in prepared)
        n_windows = (max_bits + c - 1) // c
        mask = (1 << c) - 1
        acc = _JAC_INFINITY
        for window in range(n_windows - 1, -1, -1):
            for _ in range(c):
                acc = _jac_double(acc, p)
            buckets = [None] * (mask + 1)
            shift = window * c
            for point, scalar in prepared:
                digit = (scalar >> shift) & mask
                if digit == 0:
                    continue
                existing = buckets[digit]
                if existing is None:
                    buckets[digit] = (point[0], point[1], 1)
                else:
                    buckets[digit] = _jac_add_affine(existing, point, p)
            running = _JAC_INFINITY
            window_sum = _JAC_INFINITY
            for digit in range(mask, 0, -1):
                bucket = buckets[digit]
                if bucket is not None:
                    running = _jac_add(running, bucket, p)
                window_sum = _jac_add(window_sum, running, p)
            acc = _jac_add(acc, window_sum, p)
        return acc

    # -- point construction ---------------------------------------------------

    def lift_x(self, x: int, parity: int = 0):
        """A point with the given x-coordinate, or None if x³+x is a non-residue.

        ``parity`` selects which of the two roots to take (y ≡ parity mod 2),
        which makes the lift deterministic for serialization.
        """
        p = self.p
        x %= p
        rhs = (x * x * x + x) % p
        if p & 3 == 3:
            # p ≡ 3 (mod 4) — always true for these supersingular
            # curves: a^((p+1)/4) is the root when one exists, so one
            # verifying multiplication replaces the Jacobi-symbol
            # residue test (point decodes do this on every wire read).
            y = pow(rhs, (p + 1) >> 2, p)
            if y * y % p != rhs:
                return None
        else:  # pragma: no cover - not reachable with Type-A parameters
            if not self.field.is_square(rhs):
                return None
            y = self.field.sqrt(rhs)
        if y % 2 != parity % 2:
            y = (-y) % p
        return (x, y)

    def random_point(self, rng: random.Random) -> Point:
        """A uniformly-ish random point on the full curve (order p+1 group)."""
        while True:
            x = rng.randrange(self.p)
            point = self.lift_x(x, rng.randrange(2))
            if point is not None:
                return point

    def __eq__(self, other) -> bool:
        return isinstance(other, SupersingularCurve) and self.p == other.p

    def __hash__(self) -> int:
        return hash(("SupersingularCurve", self.p))

    def __repr__(self) -> str:
        return f"SupersingularCurve(y²=x³+x over F_p, p~2^{self.p.bit_length()})"

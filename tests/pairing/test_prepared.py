"""Tests for the pairing precomputation layer.

Covers the inversion-free Miller loop against the affine oracle,
:class:`PreparedPairing` line-coefficient replay, the GT fixed-base
table, and the group facade's `multiexp_g1` / `pair_prod` /
`prepare_pairing` wiring — all on TOY80, all checked for bit-identical
reduced values.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec.curve import INFINITY, SupersingularCurve
from repro.ec.params import TOY80
from repro.math.field import PrimeField
from repro.math.field_ext import QuadraticExtension
from repro.pairing.gt_table import GTFixedBaseTable
from repro.pairing.miller import (
    final_exponentiation,
    miller_loop,
    miller_loop_affine,
)
from repro.pairing.prepared import PreparedPairing
from repro.pairing.group import PairingGroup
from repro.pairing.tate import tate_pairing

FIELD = PrimeField(TOY80.p, check_prime=False)
CURVE = SupersingularCurve(FIELD)
EXT = QuadraticExtension(FIELD)
G = TOY80.generator
R = TOY80.r

scalars = st.integers(1, R - 1)


def reduced(value):
    return final_exponentiation(EXT, value, R)


class TestProjectiveMiller:
    @given(scalars, scalars)
    @settings(max_examples=30)
    def test_matches_affine_after_reduction(self, a, b):
        # The projective loop's raw value differs from the affine one by
        # a factor in F_p^*; the final exponentiation must erase it.
        pa, pb = CURVE.mul(G, a), CURVE.mul(G, b)
        fast = miller_loop(CURVE, EXT, pa, pb, R)
        affine = miller_loop_affine(CURVE, EXT, pa, pb, R)
        assert reduced(fast) == reduced(affine)


class TestPreparedPairing:
    @given(scalars, scalars)
    @settings(max_examples=30)
    def test_matches_tate_pairing(self, a, b):
        pa, pb = CURVE.mul(G, a), CURVE.mul(G, b)
        prepared = PreparedPairing(CURVE, EXT, pa, R)
        assert prepared.pair(pb) == tate_pairing(CURVE, EXT, pa, pb, R)

    def test_replay_against_many_arguments(self):
        prepared = PreparedPairing(CURVE, EXT, G, R)
        for k in (1, 2, 17, R - 1):
            q = CURVE.mul(G, k)
            assert prepared.pair(q) == tate_pairing(CURVE, EXT, G, q, R)

    def test_infinity_arguments(self):
        prepared = PreparedPairing(CURVE, EXT, INFINITY, R)
        assert prepared.steps == []
        assert prepared.pair(G) == EXT.one
        assert PreparedPairing(CURVE, EXT, G, R).pair(INFINITY) == EXT.one


class TestGTFixedBaseTable:
    BASE = tate_pairing(CURVE, EXT, G, G, R)
    TABLE = GTFixedBaseTable(EXT, BASE, R)

    @given(scalars)
    @settings(max_examples=30)
    def test_matches_ext_pow(self, e):
        assert self.TABLE.pow(e) == EXT.pow(self.BASE, e)

    def test_zero_and_negative(self):
        assert self.TABLE.pow(0) == EXT.one
        assert self.TABLE.pow(-3) == EXT.inv(EXT.pow(self.BASE, 3))

    def test_unreduced_exponent_fallback(self):
        wide = (R << 64) + 7
        assert self.TABLE.pow(wide) == EXT.pow(self.BASE, wide % R)


class TestGroupFacadeFastPaths:
    def test_multiexp_matches_iterated_pow(self):
        group = PairingGroup(TOY80, seed=3)
        elements = [group.random_g1() for _ in range(5)]
        exponents = [group.random_scalar() for _ in range(5)]
        expected = group.identity_g1()
        for element, exponent in zip(elements, exponents):
            expected = expected * (element ** exponent)
        assert group.multiexp_g1(elements, exponents) == expected

    def test_multiexp_counts_one_exp_per_element(self):
        group = PairingGroup(TOY80, seed=3)
        elements = [group.random_g1() for _ in range(4)]
        group.counter.reset()
        group.multiexp_g1(elements, [1, 2, 3, 4])
        assert group.counter.g1_exponentiations == 4

    def test_multiexp_with_registered_base(self):
        group = PairingGroup(TOY80, seed=4)
        base = group.random_g1()
        group.register_g1_base(base)
        other = group.random_g1()
        expected = (base ** 11) * (other ** 13)
        assert group.multiexp_g1([base, other], [11, 13]) == expected

    def test_prepared_pair_matches_unprepared(self):
        fresh = PairingGroup(TOY80, seed=5)
        warmed = PairingGroup(TOY80, seed=5)
        a, b = fresh.random_g1(), fresh.random_g1()
        a2, b2 = warmed.random_g1(), warmed.random_g1()
        warmed.prepare_pairing(a2)
        assert warmed.pair(a2, b2) == fresh.pair(a, b)
        # Symmetric lookup: the prepared element on the right-hand side.
        assert warmed.pair(b2, a2) == fresh.pair(b, a)

    def test_pair_prod_with_prepared_arguments(self):
        group = PairingGroup(TOY80, seed=6)
        a, b, c = (group.random_g1() for _ in range(3))
        expected = group.pair(a, b) * group.pair(a, c)
        group.prepare_pairing(a)
        assert group.pair_prod([(a, b), (a, c)]) == expected

    def test_registered_gt_base_pow(self):
        group = PairingGroup(TOY80, seed=7)
        value = group.random_gt()
        plain = value ** 98765
        group.register_gt_base(value)
        assert (value ** 98765) == plain

"""Batch substrate primitives must be bit-identical to their scalar
counterparts — that identity is what lets the parallel ReEncrypt engine
claim byte-for-byte equality with the paper's sequential path."""

import pytest

from repro.ec.curve import INFINITY
from repro.errors import MathError
from repro.pairing.miller import (
    final_exponentiation,
    final_exponentiation_many,
)


def test_pair_many_matches_pair(group):
    fixed = group.random_g1()
    prepared = group.prepare_pairing(fixed)
    others = [group.random_g1() for _ in range(5)]
    batched = prepared.pair_many([q.point for q in others])
    for q, value in zip(others, batched):
        assert value == group.pair(fixed, q).value


def test_pair_many_handles_empty_and_identity(group):
    prepared = group.prepare_pairing(group.random_g1())
    assert prepared.pair_many([]) == []
    [value] = prepared.pair_many([INFINITY])
    assert value == group.identity_gt().value


def test_final_exponentiation_many_matches_scalar(group):
    ext = group.ext
    values = [group.random_g1() for _ in range(4)]
    raws = [group.prepare_pairing(v).miller(group.g.point) for v in values]
    batched = final_exponentiation_many(ext, raws, group.order)
    assert batched == [
        final_exponentiation(ext, raw, group.order) for raw in raws
    ]
    assert final_exponentiation_many(ext, [], group.order) == []


def test_decode_g1_batch_matches_per_point(group):
    elements = [group.random_g1() for _ in range(6)]
    blobs = [group.encode_g1(e) for e in elements]
    decoded = group.decode_g1_batch(blobs)
    assert [group.encode_g1(d) for d in decoded] == blobs


def _out_of_subgroup_blob(group) -> bytes:
    """Encode a curve point that is NOT in the order-r subgroup (the
    curve has h·r points, so small-x lifts usually land outside)."""
    for x in range(2, 500):
        point = group.curve.lift_x(x)
        if point is None:
            continue
        if group.curve.mul(point, group.order) is INFINITY:
            continue
        return bytes([2 + (point[1] & 1)]) + group.field.to_bytes(x)
    pytest.fail("no out-of-subgroup x found in range")  # pragma: no cover


def test_decode_g1_batch_names_the_bad_element(group):
    blobs = [group.encode_g1(group.random_g1()) for _ in range(3)]
    blobs.insert(1, _out_of_subgroup_blob(group))
    with pytest.raises(MathError, match="batch element 1"):
        group.decode_g1_batch(blobs)

"""Tests for the byte-metered network fabric."""

import pytest

from repro.system.network import (
    ROLE_AA,
    ROLE_OWNER,
    ROLE_USER,
    Network,
    role_pair,
)


class _Stub:
    def __init__(self, name, role):
        self.name = name
        self.role = role


@pytest.fixture()
def network(group):
    return Network(group)


class TestSend:
    def test_returns_payload(self, network, group):
        aa = _Stub("AA:h", ROLE_AA)
        user = _Stub("user:bob", ROLE_USER)
        payload = group.g
        assert network.send(aa, user, "key", payload) is payload

    def test_logs_entry(self, network, group):
        aa = _Stub("AA:h", ROLE_AA)
        user = _Stub("user:bob", ROLE_USER)
        network.send(aa, user, "key", group.g)
        entry = network.log[0]
        assert entry.sender == "AA:h"
        assert entry.recipient_role == ROLE_USER
        assert entry.kind == "key"
        assert entry.size_bytes == group.g1_bytes

    def test_channel_aggregation_is_symmetric(self, network, group):
        aa = _Stub("AA:h", ROLE_AA)
        user = _Stub("user:bob", ROLE_USER)
        network.send(aa, user, "key", group.g)
        network.send(user, aa, "ack", b"ok")
        assert network.messages_between(ROLE_AA, ROLE_USER) == 2
        assert (
            network.bytes_between(ROLE_USER, ROLE_AA)
            == group.g1_bytes + 2
        )

    def test_bytes_by_kind(self, network, group):
        aa = _Stub("AA:h", ROLE_AA)
        owner = _Stub("owner:alice", ROLE_OWNER)
        network.send(aa, owner, "pk", group.gt)
        network.send(aa, owner, "pk", group.gt)
        network.send(owner, aa, "sk", b"xy")
        assert network.bytes_by_kind() == {
            "pk": 2 * group.gt_bytes,
            "sk": 2,
        }

    def test_total_and_reset(self, network, group):
        aa = _Stub("AA:h", ROLE_AA)
        user = _Stub("user:bob", ROLE_USER)
        network.send(aa, user, "key", b"1234")
        assert network.total_bytes() == 4
        network.reset()
        assert network.total_bytes() == 0
        assert network.log == []
        assert network.messages_between(ROLE_AA, ROLE_USER) == 0


class TestRolePair:
    def test_canonical_order(self):
        assert role_pair("user", "aa") == role_pair("aa", "user")
        assert role_pair("aa", "user") == ("aa", "user")

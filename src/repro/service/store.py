"""Persistent content-addressed storage for the service deployment.

Two layers:

* :class:`BlobStore` — an immutable blob pool keyed by SHA-256. Blobs
  live in two-level sharded directories (``objects/ab/cd/<hex>``) so no
  single directory grows unboundedly; writes go to a private ``tmp/``
  file that is fsynced and then atomically :func:`os.replace`d into
  place, so a crash mid-write can never leave a partial object under a
  valid name (leftover tmp files are swept on open). Reads verify the
  digest — silent disk corruption surfaces as :class:`StorageError`,
  never as garbage ciphertext — and go through a bounded LRU cache.

* :class:`RecordStore` — the server's view: named, mutable record refs
  (``refs/<quoted-record-id>`` → blob digest) over the blob pool, plus
  the ciphertext-id index ReEncrypt needs. Replacing a record writes
  the new blob, atomically repoints the ref, then garbage-collects the
  old blob once nothing references it. Re-opening an existing root
  rebuilds all indexes from disk.

The on-disk record bytes are exactly
:meth:`repro.system.records.StoredRecord.to_bytes` — the same format
:meth:`repro.system.entities.ServerEntity.export_state` uses — so blobs
move freely between the simulation and the service.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from collections import OrderedDict
from pathlib import Path
from urllib.parse import quote, unquote

from repro.errors import StorageError
from repro.pairing.group import PairingGroup
from repro.system.records import StoredComponent, StoredRecord


class BlobStore:
    """SHA-256-keyed blob pool: sharded dirs, atomic writes, LRU reads."""

    def __init__(self, root, *, cache_entries: int = 128,
                 cache_bytes: int = 32 * 1024 * 1024):
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.tmp_dir = self.root / "tmp"
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self.tmp_dir.mkdir(parents=True, exist_ok=True)
        # Interrupted writes leave orphans only in tmp/; sweep them.
        for leftover in self.tmp_dir.iterdir():
            leftover.unlink()
        self.cache_entries = max(1, cache_entries)
        self.cache_bytes = cache_bytes
        self._cache = OrderedDict()  # digest -> blob
        self._cache_total = 0

    def _path(self, digest: str) -> Path:
        return self.objects_dir / digest[:2] / digest[2:4] / digest

    # -- cache ------------------------------------------------------------

    def _cache_put(self, digest: str, blob: bytes) -> None:
        if len(blob) > self.cache_bytes:
            return
        if digest in self._cache:
            self._cache.move_to_end(digest)
            return
        self._cache[digest] = blob
        self._cache_total += len(blob)
        while (len(self._cache) > self.cache_entries
               or self._cache_total > self.cache_bytes):
            _, evicted = self._cache.popitem(last=False)
            self._cache_total -= len(evicted)

    def _cache_drop(self, digest: str) -> None:
        blob = self._cache.pop(digest, None)
        if blob is not None:
            self._cache_total -= len(blob)

    def cache_stats(self) -> dict:
        return {"entries": len(self._cache), "bytes": self._cache_total}

    # -- storage ----------------------------------------------------------

    def put(self, blob: bytes) -> str:
        """Store a blob; returns its hex digest. Idempotent."""
        digest = hashlib.sha256(blob).hexdigest()
        path = self._path(digest)
        if not path.exists():
            fd, tmp_name = tempfile.mkstemp(dir=self.tmp_dir)
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                    handle.flush()
                    os.fsync(handle.fileno())
                try:
                    os.replace(tmp_name, path)
                except FileNotFoundError:
                    # First blob in this shard: create the directory
                    # lazily instead of stat-ing it on every put.
                    path.parent.mkdir(parents=True, exist_ok=True)
                    os.replace(tmp_name, path)
            except BaseException:
                if os.path.exists(tmp_name):
                    os.unlink(tmp_name)
                raise
        self._cache_put(digest, blob)
        return digest

    def get(self, digest: str) -> bytes:
        blob = self._cache.get(digest)
        if blob is not None:
            self._cache.move_to_end(digest)
            return blob
        try:
            blob = self._path(digest).read_bytes()
        except FileNotFoundError:
            raise StorageError(f"no blob {digest!r}") from None
        if hashlib.sha256(blob).hexdigest() != digest:
            raise StorageError(f"blob {digest!r} is corrupted on disk")
        self._cache_put(digest, blob)
        return blob

    def contains(self, digest: str) -> bool:
        return digest in self._cache or self._path(digest).exists()

    def delete(self, digest: str) -> None:
        self._cache_drop(digest)
        try:
            self._path(digest).unlink()
        except FileNotFoundError:
            pass

    def digests(self) -> list:
        return sorted(
            path.name
            for path in self.objects_dir.glob("??/??/*")
            if path.is_file()
        )


def _atomic_write(directory: Path, path: Path, data: bytes) -> None:
    """tmp-file-then-rename write for small metadata files (refs)."""
    fd, tmp_name = tempfile.mkstemp(dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise


class RecordStore:
    """The server's persistent record table over a :class:`BlobStore`."""

    def __init__(self, root, group: PairingGroup, *,
                 cache_entries: int = 128,
                 cache_bytes: int = 32 * 1024 * 1024):
        self.root = Path(root)
        self.group = group
        self.blobs = BlobStore(self.root, cache_entries=cache_entries,
                               cache_bytes=cache_bytes)
        self.refs_dir = self.root / "refs"
        self.keys_dir = self.root / "keys"
        self.refs_dir.mkdir(parents=True, exist_ok=True)
        self.keys_dir.mkdir(parents=True, exist_ok=True)
        self._refs = {}              # record id -> digest
        self._refcounts = {}         # digest -> number of refs pointing at it
        self._ciphertext_index = {}  # ciphertext id -> (record id, name)
        for ref_path in self.refs_dir.iterdir():
            record_id = unquote(ref_path.name)
            digest = ref_path.read_text("ascii").strip()
            self._set_ref(record_id, digest)
            self._index_record(self._decode(digest))

    def _ref_path(self, record_id: str) -> Path:
        return self.refs_dir / quote(record_id, safe="")

    def _decode(self, digest: str) -> StoredRecord:
        return StoredRecord.from_bytes(self.group, self.blobs.get(digest))

    def _index_record(self, record: StoredRecord) -> None:
        for name, component in record.components.items():
            self._ciphertext_index[component.abe_ciphertext.ciphertext_id] = (
                record.record_id, name
            )

    def _unindex_record(self, record: StoredRecord) -> None:
        for component in record.components.values():
            self._ciphertext_index.pop(
                component.abe_ciphertext.ciphertext_id, None
            )

    def _set_ref(self, record_id: str, digest: str) -> None:
        """Point a record id at a digest, keeping the refcounts exact."""
        old = self._refs.get(record_id)
        if old is not None:
            self._refcounts[old] -= 1
            if not self._refcounts[old]:
                del self._refcounts[old]
        self._refs[record_id] = digest
        self._refcounts[digest] = self._refcounts.get(digest, 0) + 1

    def _drop_ref(self, record_id: str) -> None:
        digest = self._refs.pop(record_id)
        self._refcounts[digest] -= 1
        if not self._refcounts[digest]:
            del self._refcounts[digest]

    def _collect(self, digest: str) -> None:
        """Drop a blob no ref points at any more (O(1) via refcounts —
        a bulk sweep replaces every record, so a scan of ``_refs`` here
        would make revocation quadratic in the store size)."""
        if digest not in self._refcounts:
            self.blobs.delete(digest)

    # -- records ----------------------------------------------------------

    def put(self, record: StoredRecord, replace: bool = False) -> str:
        """Persist a record; returns the blob digest.

        Ordered for crash safety: the new blob lands first, then the
        ref repoints atomically, and only then is the old blob eligible
        for collection. A crash (or write failure) at any point leaves
        the previous record fully readable — the worst case is an
        orphaned blob that :meth:`gc` reclaims later.
        """
        old_digest = self._refs.get(record.record_id)
        if old_digest is not None and not replace:
            raise StorageError(
                f"record {record.record_id!r} already exists "
                f"(pass replace=True to overwrite)"
            )
        old_record = None if old_digest is None else self._decode(old_digest)
        digest = self.blobs.put(record.to_bytes())
        _atomic_write(self.blobs.tmp_dir, self._ref_path(record.record_id),
                      digest.encode("ascii"))
        self._set_ref(record.record_id, digest)
        if old_record is not None:
            self._unindex_record(old_record)
        self._index_record(record)
        if old_digest is not None and old_digest != digest:
            self._collect(old_digest)
        return digest

    def get(self, record_id: str) -> StoredRecord:
        digest = self._refs.get(record_id)
        if digest is None:
            raise StorageError(f"no record {record_id!r}")
        return self._decode(digest)

    def get_record_bytes(self, record_id: str) -> bytes:
        """The digest-verified raw blob of a record, no element decode.

        The bulk sweep reads records this way and decodes them trusted
        inside a worker — the digest check here is what justifies
        skipping the per-element subgroup checks there.
        """
        digest = self._refs.get(record_id)
        if digest is None:
            raise StorageError(f"no record {record_id!r}")
        return self.blobs.get(digest)

    def replace_record_bytes(self, record_id: str, blob: bytes) -> str:
        """Repoint an existing record at pre-encoded bytes; returns the
        new digest.

        Same crash-safe ordering as :meth:`put` with ``replace=True``
        (blob first, atomic ref repoint, then collect the old blob), but
        with *no* decode of either record. Only valid when the
        replacement preserves the record's ciphertext-id → component
        mapping, so the index needs no maintenance — ReEncrypt does:
        ids, component names and symmetric bodies are invariant under
        it. Callers that change the mapping must use :meth:`put`.
        """
        old_digest = self._refs.get(record_id)
        if old_digest is None:
            raise StorageError(f"no record {record_id!r}")
        digest = self.blobs.put(blob)
        _atomic_write(self.blobs.tmp_dir, self._ref_path(record_id),
                      digest.encode("ascii"))
        self._set_ref(record_id, digest)
        if old_digest != digest:
            self._collect(old_digest)
        return digest

    def delete(self, record_id: str) -> None:
        digest = self._refs.get(record_id)
        if digest is None:
            raise StorageError(f"no record {record_id!r}")
        self._unindex_record(self._decode(digest))
        self._drop_ref(record_id)
        self._ref_path(record_id).unlink(missing_ok=True)
        self._collect(digest)

    def replace_component(self, record_id: str,
                          component: StoredComponent) -> StoredRecord:
        """Swap one component and persist the updated record."""
        updated = self.get(record_id).with_component(component)
        self.put(updated, replace=True)
        return updated

    def record_ids(self) -> list:
        return sorted(self._refs)

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._refs

    def __len__(self) -> int:
        return len(self._refs)

    def locate_ciphertext(self, ciphertext_id: str) -> tuple:
        """``(record id, component name)`` holding a ciphertext id."""
        try:
            return self._ciphertext_index[ciphertext_id]
        except KeyError:
            raise StorageError(f"no ciphertext {ciphertext_id!r}") from None

    def ciphertext_ids(self) -> frozenset:
        return frozenset(self._ciphertext_index)

    def storage_bytes(self) -> int:
        """Total stored payload — the Table III 'server' row, measured."""
        return sum(
            self._decode(digest).payload_size_bytes(self.group)
            for digest in self._refs.values()
        )

    # -- crash-recovery auditing ------------------------------------------

    def check(self) -> dict:
        """Audit every on-disk invariant after a crash or reopen.

        Returns a report mapping each invariant to its violations:
        refs whose blob is missing or fails digest verification, blobs
        no ref points at (the residue of a crash between blob write and
        ref repoint, or mid-GC), and ciphertext-index entries that
        disagree with the records on disk. ``report["ok"]`` is True iff
        everything holds.
        """
        report = {
            "records": len(self._refs),
            "missing_blobs": [],
            "corrupt_blobs": [],
            "orphan_blobs": [],
            "index_mismatches": [],
        }
        index = {}
        for record_id, digest in sorted(self._refs.items()):
            if not self.blobs.contains(digest):
                report["missing_blobs"].append(record_id)
                continue
            try:
                record = self._decode(digest)
            except StorageError:
                report["corrupt_blobs"].append(record_id)
                continue
            for name, component in record.components.items():
                index[component.abe_ciphertext.ciphertext_id] = (
                    record_id, name
                )
        if index != self._ciphertext_index:
            report["index_mismatches"] = sorted(
                set(index.items()) ^ set(self._ciphertext_index.items())
            )
        referenced = set(self._refs.values())
        report["orphan_blobs"] = [
            digest for digest in self.blobs.digests()
            if digest not in referenced
        ]
        report["ok"] = not (report["missing_blobs"]
                            or report["corrupt_blobs"]
                            or report["orphan_blobs"]
                            or report["index_mismatches"])
        return report

    def gc(self) -> list:
        """Delete every unreferenced blob; returns the digests removed."""
        referenced = set(self._refs.values())
        removed = [digest for digest in self.blobs.digests()
                   if digest not in referenced]
        for digest in removed:
            self.blobs.delete(digest)
        return removed

    # -- authority key directory ------------------------------------------

    def put_authority_keys(self, aid: str, blob: bytes) -> None:
        _atomic_write(self.blobs.tmp_dir,
                      self.keys_dir / quote(aid, safe=""), blob)

    def get_authority_keys(self, aid: str) -> bytes:
        try:
            return (self.keys_dir / quote(aid, safe="")).read_bytes()
        except FileNotFoundError:
            raise StorageError(
                f"no published keys for authority {aid!r}"
            ) from None

    def authority_ids(self) -> list:
        return sorted(unquote(path.name) for path in self.keys_dir.iterdir())

"""The built-in adversarial scenarios (see :mod:`repro.adversary.engine`).

Seven semantic adversaries, each driving the *real* stack — live
:class:`~repro.service.server.StorageService` sockets, real key
material, the real :class:`~repro.service.faults.ChaosProxy` — and each
paired with a control run that disables exactly the defense under test:

==========================  ==================================================
scenario                    paper claim exercised
==========================  ==================================================
``revoked-key-replay``      Section V-C: after ReKey + server ReEncrypt a
                            pre-revocation key is cryptographically dead
                            (control: the owner never pushes ReEncrypt)
``collusion-pooling``       Section VI: keys from different UIDs cannot be
                            pooled to satisfy a policy neither meets alone
                            (control: the CA's UID binding is broken)
``rogue-authority``         ``PK_UID`` pinning: an AA cannot mint usable
                            out-of-version or wrong-UID keys
                            (control: the verifier accepts attacker PKs)
``sweep-withholding``       sweep atomicity: withheld/reordered progress and
                            a dropped SWEEP_DONE never leave the ledger and
                            the store telling different epoch stories
                            (control: the owner's retry layer is removed)
``spam-flood``              graceful degradation: a flooding owner cannot
                            starve honest traffic or lose honest mutations
                            (control: the offload executor is bypassed)
``stale-replica``           fleet revocation: a healed replica must converge
                            before the epoch rolls — no node serves
                            pre-sweep ciphertexts behind a rolled epoch
                            (control: the epoch is force-rolled, no resume)
``stale-transform-token``   transform offload inherits Section V-C: the
                            epoch roll evicts registered transform keys, a
                            replayed stale token is version-REJECTED and a
                            forged-forward one is cryptographically dead
                            (control: transform-key eviction is disabled)
==========================  ==================================================

Scenario code favors explicitness over reuse: each function reads as the
attack transcript it is.
"""

from __future__ import annotations

import asyncio
import random
import time

from repro.adversary.drivers import (
    REJECTED,
    UNSATISFIED,
    attempt_component_decrypt,
    forge_key_version,
    forge_public_key,
    pool_secret_keys,
    relabel_key,
    snapshot_keys,
)
from repro.adversary.engine import scenario
from repro.adversary.invariants import (
    all_at_version,
    ledger_versions,
    replicas_identical,
    server_ciphertext_versions,
    versions_agree,
)
from repro.cluster.client import (
    ClusterAuthority,
    ClusterClient,
    ClusterOwner,
    ClusterUser,
)
from repro.cluster.topology import ClusterMap, ClusterNode
from repro.core.outsourcing import TransformKey, make_transform_key
from repro.core.revocation import rekey_standard
from repro.crypto.hybrid import encrypt_with_session
from repro.errors import (
    IntegrityError,
    ReproError,
    SchemeError,
    TransportError,
)
from repro.pairing.group import PairingGroup
from repro.service.client import (
    AuthorityClient,
    BaseClient,
    OwnerClient,
    ServiceConnection,
    UserClient,
)
from repro.service.faults import ChaosFleet, ChaosProxy, FaultSpec
from repro.service.protocol import MessageType
from repro.service.retry import RetryPolicy
from repro.service.server import StorageService
from repro.service.smoke import TrustFabric
from repro.service.store import RecordStore
from repro.system.meter import LatencyRecorder
from repro.system.records import StoredComponent, StoredRecord


async def _start_service(ctx, name: str, **kwargs) -> StorageService:
    """One live node on its own seeded group (server-side decode draws
    must never advance the scenario world's RNG — same isolation as the
    cluster smoke)."""
    node_group = PairingGroup(ctx.group.params, seed=f"{ctx.seed}:{name}")
    service = StorageService(node_group,
                             RecordStore(ctx.root / name, node_group),
                             name=name, **kwargs)
    await service.start()
    return service


async def _connect(ctx, host: str, port: int, role: str, name: str, *,
                   retry: RetryPolicy = None,
                   timeout: float = 10.0) -> ServiceConnection:
    conn = ServiceConnection(ctx.group, host, port, role=role, name=name,
                             timeout=timeout, retry=retry)
    await conn.connect()
    return conn


async def _close_all(clients) -> None:
    for client in clients:
        await client.close()


async def _check_read(ctx, name, reader, expected, detail="") -> None:
    """A read that must recover ``expected`` bit-identically."""
    try:
        got = await reader()
    except ReproError as exc:
        ctx.check(name, False, f"{detail}read raised {exc!r}")
        return
    ctx.check(name, got == expected, detail + (
        "bit-identical" if got == expected else f"got {got!r}"
    ))


async def _check_read_fails(ctx, name, reader, detail="") -> None:
    """A read that must raise (any typed scheme/policy error)."""
    try:
        await reader()
    except ReproError as exc:
        ctx.check(name, True, f"{detail}{exc!r}")
        return
    ctx.check(name, False, f"{detail}read succeeded")


# ---------------------------------------------------------------------------
# 1. revoked key replay
# ---------------------------------------------------------------------------

@scenario(
    "revoked-key-replay",
    title="Revoked user replays pre-revocation keys",
    claim="Section V-C: ReKey + server-side ReEncrypt makes a "
          "pre-revocation secret key cryptographically useless against "
          "post-sweep ciphertexts; before ReEncrypt lands, the stale key "
          "still works — the paper's explicit in-flight window.",
    control="the owner never pushes the re-encryption updates (ReKey "
            "happens at the AA, the server keeps serving old-version "
            "ciphertexts, the careless owner rolls the epoch anyway)",
    control_invariant="stale-key-rejected",
)
async def revoked_key_replay(ctx) -> None:
    group = ctx.group
    service = await _start_service(ctx, "store")
    fabric = TrustFabric(group)
    aa, owner_core = fabric.aa, fabric.owner_core
    clients = []
    try:
        aa_client = AuthorityClient(await _connect(
            ctx, service.host, service.port, "aa", "AA:hospital"), aa)
        clients.append(aa_client)
        owner = OwnerClient(await _connect(
            ctx, service.host, service.port, "owner", "owner:alice"),
            owner_core)
        clients.append(owner)
        bob = UserClient(await _connect(
            ctx, service.host, service.port, "user", "user:bob"), "bob")
        clients.append(bob)
        carol = UserClient(await _connect(
            ctx, service.host, service.port, "user", "user:carol"), "carol")
        clients.append(carol)

        await aa_client.publish_keys()
        await owner.learn_authorities("hospital")
        bob.receive_public_key(fabric.bob_pk)
        carol.receive_public_key(fabric.carol_pk)
        bob.receive_secret_key(aa.keygen(fabric.bob_pk, ["doctor"], "alice"))
        carol.receive_secret_key(
            aa.keygen(fabric.carol_pk, ["doctor", "nurse"], "alice")
        )

        note = b"MRI shows nothing acute."
        await owner.upload("record", {"note": (note, "hospital:doctor")})
        await _check_read(ctx, "pre-revocation-read",
                          lambda: bob.read("record", "note"), note)

        # The adversary saves its key material BEFORE being revoked.
        stale_keys = snapshot_keys(bob.secret_keys_for("alice"))
        result = rekey_standard(aa, "bob", ["doctor"])
        update_key = result.update_key

        # In-flight window: ReKey has run at the AA but the server has
        # not re-encrypted yet — the paper accepts that the stale key
        # still opens the old-version ciphertext in this window.
        component = await bob._fetch_component("record", "note")
        window = attempt_component_decrypt(group, component, fabric.bob_pk,
                                           stale_keys)
        ctx.check("in-flight-window-exists",
                  window.recovered and window.plaintext == note,
                  f"pre-ReEncrypt outcome {window.outcome}")

        for new_key in result.revoked_user_keys.values():
            bob.receive_secret_key(new_key)
        if "alice" not in result.revoked_user_keys:
            bob.drop_keys("hospital", "alice")
        carol.apply_update_key(update_key)

        if ctx.control:
            ctx.note("control: skipping push_revocation_updates — the "
                     "epoch rolls with the store never re-encrypted")
            owner_core.apply_update_key(update_key)
        else:
            updated = await owner.push_revocation_updates(update_key)
            ctx.note(f"server proxy-re-encrypted {len(updated)} "
                     f"ciphertexts")

        component = await bob._fetch_component("record", "note")
        ctx.check(
            "ciphertext-at-new-version",
            component.abe_ciphertext.versions.get("hospital")
            == update_key.to_version,
            f"store serves hospital v"
            f"{component.abe_ciphertext.versions.get('hospital')}, "
            f"expected v{update_key.to_version}",
        )

        # The replay proper: the honest client path must refuse with the
        # right error class (SchemeError/RevocationError)...
        replay = attempt_component_decrypt(group, component, fabric.bob_pk,
                                           stale_keys)
        ctx.check("stale-key-rejected", replay.outcome == REJECTED,
                  f"outcome {replay.outcome}: {replay.detail}")
        # ...and bypassing validation must still yield only garbage —
        # the failure is cryptographic, not bookkeeping.
        forced = attempt_component_decrypt(group, component, fabric.bob_pk,
                                           stale_keys, validate=False)
        ctx.check("stale-key-cryptographically-dead",
                  forced.cryptographically_dead,
                  f"forced outcome {forced.outcome}")

        await _check_read_fails(ctx, "revoked-read-fails",
                                lambda: bob.read("record", "note"))
        await _check_read(ctx, "survivor-read-bit-identical",
                          lambda: carol.read("record", "note"), note)
    finally:
        await _close_all(clients)
        await service.stop()


# ---------------------------------------------------------------------------
# 2. collusion by key pooling
# ---------------------------------------------------------------------------

@scenario(
    "collusion-pooling",
    title="Two users pool attribute keys across UIDs",
    claim="Section VI: every attribute key embeds the CA-chosen exponent "
          "u of its UID, so keys pooled from different users cannot "
          "reconstruct the blinding factor of a policy neither user "
          "satisfies alone.",
    control="the CA's UID binding is broken — eve's keys are issued over "
            "bob's public-key element, so the pooled wallet shares one u",
    control_invariant="pooled-keys-rejected",
)
async def collusion_pooling(ctx) -> None:
    group = ctx.group
    service = await _start_service(ctx, "store")
    fabric = TrustFabric(group)
    aa = fabric.aa
    eve_pk = fabric.ca.register_user("eve")
    policy = "hospital:doctor AND hospital:nurse"
    secret = b"dual-control pharmacy safe combination"
    clients = []
    try:
        aa_client = AuthorityClient(await _connect(
            ctx, service.host, service.port, "aa", "AA:hospital"), aa)
        clients.append(aa_client)
        owner = OwnerClient(await _connect(
            ctx, service.host, service.port, "owner", "owner:alice"),
            fabric.owner_core)
        clients.append(owner)
        eve_fetch = BaseClient(await _connect(
            ctx, service.host, service.port, "user", "user:eve"))
        clients.append(eve_fetch)

        await aa_client.publish_keys()
        await owner.learn_authorities("hospital")

        bob_keys = {"hospital": aa.keygen(fabric.bob_pk, ["doctor"],
                                          "alice")}
        if ctx.control:
            issue_pk = forge_public_key("eve", fabric.bob_pk.element)
            ctx.note("control: CA binding broken — eve's keys are issued "
                     "over bob's PK element")
        else:
            issue_pk = eve_pk
        eve_keys = {"hospital": aa.keygen(issue_pk, ["nurse"], "alice")}

        await owner.upload("vault", {"combo": (secret, policy)})
        # Downloading ciphertext bytes requires no authorization — the
        # scheme's security must not depend on withholding them.
        component = await eve_fetch._fetch_component("vault", "combo")

        alone_bob = attempt_component_decrypt(group, component,
                                              fabric.bob_pk, bob_keys)
        ctx.check("bob-alone-unsatisfied",
                  alone_bob.outcome == UNSATISFIED,
                  f"outcome {alone_bob.outcome}")
        alone_eve = attempt_component_decrypt(group, component, issue_pk,
                                              eve_keys)
        ctx.check("eve-alone-unsatisfied",
                  alone_eve.outcome == UNSATISFIED,
                  f"outcome {alone_eve.outcome}")

        pooled = pool_secret_keys(bob_keys, eve_keys)
        ctx.check(
            "pooled-attrs-span-policy",
            {"hospital:doctor", "hospital:nurse"}
            <= pooled["hospital"].attributes,
            f"pooled attributes {sorted(pooled['hospital'].attributes)}",
        )
        attack = attempt_component_decrypt(group, component, fabric.bob_pk,
                                           pooled, validate=False)
        ctx.check(
            "pooled-keys-rejected",
            not attack.recovered and attack.cryptographically_dead,
            f"outcome {attack.outcome}"
            + (" — plaintext recovered!" if attack.recovered else ""),
        )
    finally:
        await _close_all(clients)
        await service.stop()


# ---------------------------------------------------------------------------
# 3. rogue authority
# ---------------------------------------------------------------------------

@scenario(
    "rogue-authority",
    title="Compromised AA mints wrong-UID and out-of-version keys",
    claim="A compromised AA can only bind keys to the CA-certified "
          "PK_UID: relabeling another user's key or forging the version "
          "counter forward yields keys whose pairing products cannot "
          "cancel against the ciphertext.",
    control="the verifier accepts an attacker-chosen PK_UID instead of "
            "the CA-certified one (PK pinning disabled)",
    control_invariant="wrong-uid-key-rejected",
)
async def rogue_authority(ctx) -> None:
    group = ctx.group
    service = await _start_service(ctx, "store")
    fabric = TrustFabric(group)
    aa, owner_core = fabric.aa, fabric.owner_core
    eve_pk = fabric.ca.register_user("eve")
    note = b"Prescription: 20mg, once daily."
    clients = []
    try:
        aa_client = AuthorityClient(await _connect(
            ctx, service.host, service.port, "aa", "AA:hospital"), aa)
        clients.append(aa_client)
        owner = OwnerClient(await _connect(
            ctx, service.host, service.port, "owner", "owner:alice"),
            owner_core)
        clients.append(owner)
        bob = UserClient(await _connect(
            ctx, service.host, service.port, "user", "user:bob"), "bob")
        clients.append(bob)

        await aa_client.publish_keys()
        await owner.learn_authorities("hospital")
        bob.receive_public_key(fabric.bob_pk)
        bob.receive_secret_key(aa.keygen(fabric.bob_pk, ["doctor"],
                                         "alice"))
        eve_doctor = aa.keygen(eve_pk, ["doctor"], "alice")

        await owner.upload("record", {"note": (note, "hospital:doctor")})
        await _check_read(ctx, "legit-key-works",
                          lambda: bob.read("record", "note"), note)

        # Attack 1: the rogue AA relabels eve's key to bob's UID. The
        # label matches, but the elements embed eve's exponent.
        component = await bob._fetch_component("record", "note")
        rogue_key = {"hospital": relabel_key(eve_doctor, "bob")}
        probe_pk = fabric.bob_pk
        if ctx.control:
            probe_pk = forge_public_key("bob", eve_pk.element)
            ctx.note("control: verifier accepts the attacker's PK_UID — "
                     "the relabeled key now pairs against its own u")
        wrong_uid = attempt_component_decrypt(group, component, probe_pk,
                                              rogue_key, validate=False)
        ctx.check("wrong-uid-key-rejected", not wrong_uid.recovered,
                  f"outcome {wrong_uid.outcome}")

        # Attack 2: after a ReKey epoch, the rogue AA stamps an old key
        # with the new version number — without the UK's alpha ratio
        # ever touching the attribute elements. The forged counter
        # slips past the validation gate (uid, owner and version all
        # read correct), so only the pairing algebra can refuse.
        stale_bob = snapshot_keys(bob.secret_keys_for("alice"))
        result = rekey_standard(aa, "eve", ["doctor"])
        update_key = result.update_key
        bob.apply_update_key(update_key)
        updated = await owner.push_revocation_updates(update_key)
        ctx.note(f"eve revoked; {len(updated)} ciphertexts re-encrypted")
        await _check_read(ctx, "updated-key-works",
                          lambda: bob.read("record", "note"), note)

        component = await bob._fetch_component("record", "note")
        forged = {"hospital": forge_key_version(stale_bob["hospital"],
                                                update_key.to_version)}
        forgery = attempt_component_decrypt(group, component,
                                            fabric.bob_pk, forged)
        ctx.check("stale-version-forgery-rejected",
                  forgery.cryptographically_dead,
                  f"outcome {forgery.outcome}")
    finally:
        await _close_all(clients)
        await service.stop()


# ---------------------------------------------------------------------------
# 4. sweep frame withholding
# ---------------------------------------------------------------------------

@scenario(
    "sweep-withholding",
    title="Server-side proxy withholds and reorders sweep frames",
    claim="Sweep atomicity: a storage path that withholds or reorders "
          "SWEEP_PROGRESS frames and drops SWEEP_DONE cannot leave "
          "ciphertexts straddling revocation epochs — the owner's ledger "
          "and the store agree, and the epoch rolls exactly once.",
    control="the owner's retry layer is removed, so the dropped "
            "SWEEP_DONE is never recovered: the server has re-encrypted "
            "but the ledger never learns it",
    control_invariant="ledger-store-agree",
)
async def sweep_withholding(ctx) -> None:
    group = ctx.group
    records = int(ctx.param("records", 8))
    service = await _start_service(ctx, "store", sweep_chunk=2)
    fabric = TrustFabric(group)
    aa, owner_core = fabric.aa, fabric.owner_core
    # Deterministic semantic faults on the owner's reply stream: swallow
    # the first progress frame, hold the second past its successor, and
    # sever the connection on the final summary.
    proxy = ChaosProxy(
        service.host, service.port, spec=FaultSpec(), seed=ctx.seed,
        type_schedule={
            int(MessageType.SWEEP_PROGRESS): ["withhold", "reorder"],
            int(MessageType.SWEEP_DONE): ["drop"],
        },
    )
    await proxy.start()
    retry = None if ctx.control else RetryPolicy(
        max_attempts=8, rng=random.Random(ctx.seed)
    )
    if ctx.control:
        ctx.note("control: owner connection has no retry policy")
    clients = []
    try:
        aa_client = AuthorityClient(await _connect(
            ctx, service.host, service.port, "aa", "AA:hospital"), aa)
        clients.append(aa_client)
        owner = OwnerClient(await _connect(
            ctx, proxy.host, proxy.port, "owner", "owner:alice",
            retry=retry, timeout=3.0), owner_core)
        clients.append(owner)
        bob = UserClient(await _connect(
            ctx, service.host, service.port, "user", "user:bob"), "bob")
        clients.append(bob)
        carol = UserClient(await _connect(
            ctx, service.host, service.port, "user", "user:carol"),
            "carol")
        clients.append(carol)
        probe = BaseClient(await _connect(
            ctx, service.host, service.port, "user", "auditor"))
        clients.append(probe)

        await aa_client.publish_keys()
        await owner.learn_authorities("hospital")
        bob.receive_public_key(fabric.bob_pk)
        carol.receive_public_key(fabric.carol_pk)
        bob.receive_secret_key(aa.keygen(fabric.bob_pk, ["doctor"],
                                         "alice"))
        carol.receive_secret_key(
            aa.keygen(fabric.carol_pk, ["doctor", "nurse"], "alice")
        )

        policies = ("hospital:doctor",
                    "hospital:doctor OR hospital:nurse")
        for index in range(records):
            await owner.upload(f"rec-{index:04d}", {
                "note": (f"note {index}".encode("utf-8"),
                         policies[index % 2]),
            })

        result = rekey_standard(aa, "bob", ["doctor"])
        update_key = result.update_key
        for new_key in result.revoked_user_keys.values():
            bob.receive_secret_key(new_key)
        if "alice" not in result.revoked_user_keys:
            bob.drop_keys("hospital", "alice")
        carol.apply_update_key(update_key)

        progress = []
        summary = None
        try:
            summary = await owner.sweep_revocation(
                update_key, on_progress=progress.append
            )
        except (TransportError, EOFError, OSError) as exc:
            # Without a retry layer the severed reply stream surfaces
            # as a raw transport error — the control's whole point.
            ctx.note(f"sweep aborted client-side: {exc!r}")

        swept = set()
        if summary is not None:
            swept = set(summary.get("updated", ())) | set(
                summary.get("already_current", ())
            )
        ctx.check(
            "sweep-covers-all",
            summary is not None and len(swept) == records
            and not (summary and summary.get("errors")),
            f"{len(swept)}/{records} swept, "
            f"{len(progress)} progress frames seen",
        )
        ctx.check(
            "epoch-rolled-once",
            owner_core.authority_version("hospital")
            == update_key.to_version,
            f"owner epoch v{owner_core.authority_version('hospital')}, "
            f"expected v{update_key.to_version}",
        )

        server_view = await server_ciphertext_versions(probe, "hospital")
        ok, detail = all_at_version(server_view, update_key.to_version)
        ctx.check("no-epoch-straddle", ok, detail)
        ok, detail = versions_agree(server_view,
                                    ledger_versions(owner_core, "hospital"))
        ctx.check("ledger-store-agree", ok, detail)
        ctx.check("faults-injected", len(proxy.injected) >= 2,
                  f"injected {proxy.fault_counts()}")

        await _check_read_fails(ctx, "revoked-read-fails",
                                lambda: bob.read("rec-0000", "note"))
        await _check_read(ctx, "survivor-read-bit-identical",
                          lambda: carol.read("rec-0001", "note"),
                          b"note 1")
    finally:
        await _close_all(clients)
        await proxy.stop()
        await service.stop()


# ---------------------------------------------------------------------------
# 5. spam flood
# ---------------------------------------------------------------------------

@scenario(
    "spam-flood",
    title="Spammy owner floods the blob store",
    claim="Graceful degradation: a flooding owner pushing decode-heavy "
          "records cannot starve honest traffic (honest p99 stays "
          "bounded) and cannot make the store lose an honest mutation "
          "landing mid-flood.",
    control="the server's offload executor is bypassed "
            "(inline_crypto=True): record decoding runs on the event "
            "loop, so every spam record blocks every honest frame",
    control_invariant="honest-latency-bounded",
)
async def spam_flood(ctx) -> None:
    group = ctx.group
    spam_records = int(ctx.param("spam_records", 3))
    decode_target = float(ctx.param("spam_decode_target", 0.45))
    service = await _start_service(ctx, "store",
                                   inline_crypto=ctx.control)
    if ctx.control:
        ctx.note("control: inline_crypto=True — decode blocks the loop")
    fabric = TrustFabric(group)
    aa, owner_core = fabric.aa, fabric.owner_core
    owner_core.learn_authority(aa.authority_public_key(),
                               aa.public_attribute_keys())
    carol_keys = {"hospital": aa.keygen(fabric.carol_pk,
                                        ["doctor", "nurse"], "alice")}

    # Calibrate the flood off-line: measure per-component decode cost on
    # a server-like group, then size the spam records so each one costs
    # the server ~decode_target seconds of CPU to take apart.
    policy = "hospital:nurse"
    session = owner_core.session_for(policy)

    def make_components(count, prefix):
        components = {}
        for index in range(count):
            name = f"part-{index:04d}"
            abe, body = encrypt_with_session(
                session, f"{prefix}/{name}", b"spam payload"
            )
            components[name] = StoredComponent(
                name=name, abe_ciphertext=abe, data_ciphertext=body,
            )
        return components

    probe_group = PairingGroup(ctx.group.params, seed=f"{ctx.seed}:probe")
    probe_blob = StoredRecord(record_id="probe", owner_id="alice",
                              components=make_components(8, "probe")
                              ).to_bytes()
    started = time.perf_counter()
    StoredRecord.from_bytes(probe_group, probe_blob)
    per_component = (time.perf_counter() - started) / 8
    count = int(min(max(decode_target / max(per_component, 1e-6), 12),
                    320))
    ctx.note(f"calibrated: {per_component * 1000:.2f} ms/component "
             f"decode, {count} components per spam record")
    spam_components = make_components(count, "spam-0")
    spam_blobs = [
        StoredRecord(record_id=f"spam-{index}", owner_id="alice",
                     components=spam_components).to_bytes()
        for index in range(spam_records)
    ]
    decode_seconds = per_component * count
    # Honest traffic must stay well under the time one spam record
    # costs; inline decode necessarily blows through this bound.
    bound = max(0.2, 0.5 * decode_seconds)

    # The honest mutation that must land mid-flood, pre-encrypted so
    # the measurement loop spends no client-side CPU on it.
    honest_note = b"Allergy alert: penicillin."
    honest_abe, honest_body = encrypt_with_session(
        session, "mid-flood/note", honest_note
    )
    honest_blob = StoredRecord(
        record_id="mid-flood", owner_id="alice",
        components={"note": StoredComponent(
            name="note", abe_ciphertext=honest_abe,
            data_ciphertext=honest_body,
        )},
    ).to_bytes()

    clients = []
    try:
        spam_conn = await _connect(ctx, service.host, service.port,
                                   "owner", "owner:spammer",
                                   timeout=30.0)
        clients.append(BaseClient(spam_conn))
        honest_conn = await _connect(ctx, service.host, service.port,
                                     "owner", "owner:alice",
                                     timeout=30.0)
        clients.append(BaseClient(honest_conn))
        pinger = BaseClient(await _connect(
            ctx, service.host, service.port, "user", "user:pinger",
            timeout=30.0))
        clients.append(pinger)

        latencies = LatencyRecorder("honest-ping")
        flood_done = asyncio.Event()

        async def flood():
            for blob in spam_blobs:
                await spam_conn.request(MessageType.STORE_RECORD, blob,
                                        expect=MessageType.OK)
            flood_done.set()

        async def ping_loop():
            while not flood_done.is_set():
                started = time.perf_counter()
                await pinger.ping()
                latencies.record(time.perf_counter() - started)
                await asyncio.sleep(0.02)

        flood_task = asyncio.create_task(flood())
        ping_task = asyncio.create_task(ping_loop())
        # Land the honest mutation while the flood is in full swing.
        await asyncio.sleep(0.01)
        await honest_conn.request(MessageType.STORE_RECORD, honest_blob,
                                  expect=MessageType.OK)
        await flood_task
        await ping_task

        summary = latencies.summary()
        ctx.note(f"honest pings: {summary['count']} samples, "
                 f"p50 {summary['p50'] * 1000:.1f} ms, "
                 f"p99 {summary['p99'] * 1000:.1f} ms "
                 f"(bound {bound * 1000:.0f} ms)")
        ctx.check(
            "honest-latency-bounded",
            len(latencies) >= 5 and latencies.percentile(99) <= bound,
            f"p99 {latencies.percentile(99) * 1000:.1f} ms vs bound "
            f"{bound * 1000:.0f} ms over {len(latencies)} samples",
        )

        stored = set(await pinger.list_records())
        spam_ids = {f"spam-{index}" for index in range(spam_records)}
        ctx.check("spam-stored", spam_ids <= stored,
                  f"stored {sorted(stored)}")
        component = await pinger._fetch_component("mid-flood", "note")
        outcome = attempt_component_decrypt(group, component,
                                            fabric.carol_pk, carol_keys)
        ctx.check(
            "no-lost-mutations",
            outcome.recovered and outcome.plaintext == honest_note,
            f"mid-flood mutation outcome {outcome.outcome}",
        )
    finally:
        await _close_all(clients)
        await service.stop()


# ---------------------------------------------------------------------------
# 6. stale replica after partition heal
# ---------------------------------------------------------------------------

@scenario(
    "stale-replica",
    title="Partitioned replica serves pre-sweep ciphertexts after heal",
    claim="Fleet revocation holds the epoch open while any replica is "
          "unreachable; rerunning the same sweep after the partition "
          "heals converges every replica byte-identically before the "
          "epoch rolls — no node ever serves a pre-sweep ciphertext "
          "behind a rolled epoch.",
    control="the owner force-rolls the revocation epoch past the "
            "partitioned replica and never reruns the sweep",
    control_invariant="stale-replica-rejected",
)
async def stale_replica(ctx) -> None:
    group = ctx.group
    records = int(ctx.param("records", 5))
    names = [f"node-{index}" for index in range(3)]
    services = {}
    fleet = None
    roles = []
    probes = []
    try:
        for name in names:
            services[name] = await _start_service(ctx, name)
        # Every client dialogue crosses the fleet's proxies, so one
        # partition() call severs exactly one node from everyone.
        fleet = ChaosFleet(
            {name: (service.host, service.port)
             for name, service in services.items()},
            seed=ctx.seed,
        )
        await fleet.start()
        cluster_map = ClusterMap(
            [ClusterNode(name, *fleet.address(name)) for name in names],
            replication=2,
        )

        def cluster_client(role, cname):
            return ClusterClient(group, cluster_map, role=role,
                                 name=cname, timeout=5.0,
                                 retry_seed=ctx.seed, max_attempts=2)

        fabric = TrustFabric(group)
        aa, owner_core = fabric.aa, fabric.owner_core
        authority = ClusterAuthority(cluster_client("aa", "AA:hospital"),
                                     aa)
        owner = ClusterOwner(cluster_client("owner", "owner:alice"),
                             owner_core)
        bob = ClusterUser(cluster_client("user", "user:bob"), "bob")
        carol = ClusterUser(cluster_client("user", "user:carol"), "carol")
        roles = [authority, owner, bob, carol]

        await authority.publish_keys()
        await owner.learn_authorities("hospital")
        bob.receive_public_key(fabric.bob_pk)
        carol.receive_public_key(fabric.carol_pk)
        bob.receive_secret_key(aa.keygen(fabric.bob_pk, ["doctor"],
                                         "alice"))
        carol.receive_secret_key(
            aa.keygen(fabric.carol_pk, ["doctor", "nurse"], "alice")
        )

        record_ids = [f"rec-{index:03d}" for index in range(records)]
        for index, record_id in enumerate(record_ids):
            await owner.upload(record_id, {
                "note": (f"note {index}".encode("utf-8"),
                         "hospital:doctor"),
            })
        await _check_read(ctx, "pre-revocation-read",
                          lambda: bob.read(record_ids[0], "note"),
                          b"note 0")
        stale_keys = snapshot_keys(bob._secret_keys.get("alice", {}))

        result = rekey_standard(aa, "bob", ["doctor"])
        update_key = result.update_key

        victim = cluster_map.replicas_for(record_ids[0])[0].name
        fleet.partition(victim)
        ctx.note(f"partitioned {victim} (primary replica of "
                 f"{record_ids[0]})")
        # Before any keys roll: availability must survive the dead
        # primary via replica failover.
        await _check_read(ctx, "read-survives-partition",
                          lambda: carol.read(record_ids[0], "note"),
                          b"note 0")

        for new_key in result.revoked_user_keys.values():
            bob.receive_secret_key(new_key)
        if "alice" not in result.revoked_user_keys:
            bob.drop_keys("hospital", "alice")
        carol.apply_update_key(update_key)

        sweep_one = await owner.sweep_revocation(update_key)
        ctx.check(
            "partial-sweep-holds-epoch",
            bool(sweep_one["pending"])
            and not sweep_one["epoch_rolled"]
            and owner_core.authority_version("hospital")
            == update_key.from_version,
            f"{len(sweep_one['pending'])} pending, epoch_rolled="
            f"{sweep_one['epoch_rolled']}",
        )

        if ctx.control:
            ctx.note("control: force-rolling the epoch with "
                     f"{len(sweep_one['pending'])} ciphertexts pending; "
                     "the sweep is never rerun")
            owner_core.apply_update_key(update_key)
            fleet.heal(victim)
        else:
            fleet.heal(victim)
            sweep_two = await owner.sweep_revocation(update_key)
            ctx.check(
                "resume-converges",
                not sweep_two["pending"] and sweep_two["epoch_rolled"],
                f"rerun converged {len(sweep_two['converged'])} "
                f"ciphertexts, pending {sweep_two['pending']}",
            )

        cluster = owner.cluster
        convergence = []
        for record_id in record_ids:
            digests = await cluster.replica_digests(record_id,
                                                    verify=True)
            ok, detail = replicas_identical(digests)
            if not ok:
                convergence.append(f"{record_id}: {detail}")
        ctx.check("replicas-byte-identical", not convergence,
                  "; ".join(convergence) or
                  f"{len(record_ids)} records converged")

        # Interrogate the healed victim directly: whatever it serves,
        # the revoked user's pre-sweep keys must be useless against it.
        victim_probe = BaseClient(await _connect(
            ctx, *fleet.address(victim), "user", "user:bob",
            timeout=5.0))
        probes.append(victim_probe)
        component = await victim_probe._fetch_component(record_ids[0],
                                                        "note")
        validated = attempt_component_decrypt(group, component,
                                              fabric.bob_pk, stale_keys)
        forced = attempt_component_decrypt(group, component,
                                           fabric.bob_pk, stale_keys,
                                           validate=False)
        ctx.check(
            "stale-replica-rejected",
            validated.outcome == REJECTED and not forced.recovered,
            f"validated {validated.outcome}, forced {forced.outcome}",
        )

        await _check_read_fails(ctx, "revoked-cluster-read-fails",
                                lambda: bob.read(record_ids[0], "note"))
        await _check_read(ctx, "survivor-read-bit-identical",
                          lambda: carol.read(record_ids[1], "note"),
                          b"note 1")
    finally:
        for probe in probes:
            await probe.close()
        for role in roles:
            await role.close()
        if fleet is not None:
            await fleet.stop()
        for service in services.values():
            await service.stop()


# ---------------------------------------------------------------------------
# 7. stale transform token
# ---------------------------------------------------------------------------

@scenario(
    "stale-transform-token",
    title="Revoked user replays a pre-revocation transform key",
    claim="Outsourced decryption inherits Section V-C revocation: a "
          "sweep's epoch roll evicts every registered transform key it "
          "outran, a replayed stale token is version-rejected (typed "
          "SchemeError, before any pairing runs) exactly like a cold "
          "stale-key decrypt, and forging its version counters forward "
          "yields only a cryptographically dead partial the AEAD layer "
          "refuses — never plaintext.",
    control="the server's transform-key eviction is disabled "
            "(evict_transform_keys=False): pre-revocation tokens stay "
            "registered across the sweep",
    control_invariant="stale-token-evicted",
)
async def stale_transform_token(ctx) -> None:
    group = ctx.group
    service = await _start_service(ctx, "store",
                                   evict_transform_keys=not ctx.control)
    if ctx.control:
        ctx.note("control: evict_transform_keys=False — the sweep's "
                 "epoch roll leaves registered tokens in place")
    fabric = TrustFabric(group)
    aa, owner_core = fabric.aa, fabric.owner_core
    note = b"Bloodwork panel: all values nominal."
    clients = []
    try:
        aa_client = AuthorityClient(await _connect(
            ctx, service.host, service.port, "aa", "AA:hospital"), aa)
        clients.append(aa_client)
        owner = OwnerClient(await _connect(
            ctx, service.host, service.port, "owner", "owner:alice"),
            owner_core)
        clients.append(owner)
        bob = UserClient(await _connect(
            ctx, service.host, service.port, "user", "user:bob"), "bob")
        clients.append(bob)
        carol = UserClient(await _connect(
            ctx, service.host, service.port, "user", "user:carol"),
            "carol")
        clients.append(carol)

        await aa_client.publish_keys()
        await owner.learn_authorities("hospital")
        bob.receive_public_key(fabric.bob_pk)
        carol.receive_public_key(fabric.carol_pk)
        bob.receive_secret_key(aa.keygen(fabric.bob_pk, ["doctor"],
                                         "alice"))
        carol.receive_secret_key(
            aa.keygen(fabric.carol_pk, ["doctor", "nurse"], "alice")
        )

        await owner.upload("record", {
            "note": (note, "hospital:doctor OR hospital:nurse"),
        })

        # Bob mints his outsourcing token by hand so the scenario can
        # keep the TransformKey object for the replay; the private z
        # stays client-side exactly as in register_transform_key.
        stale_token, retrieval = make_transform_key(
            group, fabric.bob_pk, bob.secret_keys_for("alice")
        )
        await bob.put_transform_key(stale_token)
        bob._retrieval_keys["alice"] = retrieval
        await carol.register_transform_key("alice")
        await _check_read(ctx, "pre-revocation-outsourced-read",
                          lambda: bob.read_outsourced("record", "note"),
                          note)
        registered = (await bob.stats())["transform_keys"]
        ctx.check("tokens-registered", registered == 2,
                  f"{registered} transform keys registered")

        # Bob is revoked; the owner sweeps, which re-encrypts the store
        # AND (defense under test) evicts every transform key whose
        # embedded version the epoch roll outran — survivors' included,
        # since their tokens are equally stale.
        result = rekey_standard(aa, "bob", ["doctor"])
        update_key = result.update_key
        for new_key in result.revoked_user_keys.values():
            bob.receive_secret_key(new_key)
        if "alice" not in result.revoked_user_keys:
            bob.drop_keys("hospital", "alice")
        carol.apply_update_key(update_key)
        summary = await owner.sweep_revocation(update_key)
        ctx.note(f"sweep re-encrypted {len(summary.get('updated', ()))} "
                 f"ciphertexts")

        stats = await bob.stats()
        evictions = stats["counters"].get("transform.cache.evict", 0)
        ctx.check(
            "stale-token-evicted",
            stats["transform_keys"] == 0 and evictions >= registered,
            f"{stats['transform_keys']} tokens registered after the "
            f"sweep, {evictions} evictions",
        )
        await _check_read_fails(ctx, "revoked-outsourced-read-fails",
                                lambda: bob.read_outsourced("record",
                                                            "note"))

        # The replay proper: re-registering the saved pre-revocation
        # token succeeds (registration validates the UID, not the
        # epoch), but TRANSFORM_FETCH must refuse with the *version*
        # gate — the same typed SchemeError a cold stale-key decrypt
        # raises, never an AEAD failure on a garbage partial.
        await bob.put_transform_key(stale_token)
        try:
            await bob.read_outsourced("record", "note")
            ctx.check("replayed-token-version-rejected", False,
                      "outsourced read succeeded")
        except SchemeError as exc:
            ctx.check("replayed-token-version-rejected", True, repr(exc))
        except ReproError as exc:
            ctx.check("replayed-token-version-rejected", False,
                      f"wrong error class: {exc!r}")

        # Forgery: stamp the stale token's version counters forward so
        # it slips the validation gate — only the pairing algebra can
        # refuse now, and it must: the partial is garbage, so the AEAD
        # open fails client-side. Never plaintext, never silent.
        forged = TransformKey(
            uid=stale_token.uid,
            owner_id=stale_token.owner_id,
            transformed_public=stale_token.transformed_public,
            transformed_secret={
                aid: forge_key_version(key, update_key.to_version)
                for aid, key in stale_token.transformed_secret.items()
            },
        )
        await bob.put_transform_key(forged)
        try:
            await bob.read_outsourced("record", "note")
            ctx.check("forged-token-cryptographically-dead", False,
                      "plaintext recovered!")
        except IntegrityError as exc:
            ctx.check("forged-token-cryptographically-dead", True,
                      f"AEAD refused the garbage partial: {exc!r}")
        except ReproError as exc:
            ctx.check("forged-token-cryptographically-dead", False,
                      f"refused before the pairing algebra: {exc!r}")

        # The survivor's recovery path: mint a fresh token over the
        # rolled keys and read outsourced, bit-identical.
        await carol.register_transform_key("alice")
        await _check_read(ctx, "survivor-outsourced-bit-identical",
                          lambda: carol.read_outsourced("record", "note"),
                          note)
    finally:
        await _close_all(clients)
        await service.stop()

"""Batched affine arithmetic must be bit-identical to the plain paths.

Covers the three batch shapes of :mod:`repro.ec.batch_affine` plus the
:meth:`FixedBaseTable.doubled_window` composition they feed on. The
regression class at the bottom pins the bucket-offset invariant of
``batch_table_walks``: two legs of one walk must never fold two digits
of the same slot inside one bucket (the snapshot-then-apply round
scheme would lose one addition).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec.batch_affine import (
    batch_affine_sums,
    batch_same_scalar_mults,
    batch_table_walks,
    table_entries,
)
from repro.ec.curve import INFINITY, SupersingularCurve
from repro.ec.fixed_base import FixedBaseTable
from repro.ec.params import TOY80
from repro.math.field import PrimeField

FIELD = PrimeField(TOY80.p, check_prime=False)
CURVE = SupersingularCurve(FIELD)
G = TOY80.generator
R = TOY80.r
TABLE = FixedBaseTable(CURVE, G, R)


def naive_sum(entries):
    acc = INFINITY
    for entry in entries:
        acc = CURVE.add(acc, entry)
    return acc


def points(scalars):
    return [CURVE.mul(G, k) for k in scalars]


class TestBatchAffineSums:
    def test_empty_and_trivial(self):
        assert batch_affine_sums(CURVE, []) == []
        assert batch_affine_sums(CURVE, [[]]) == [INFINITY]
        assert batch_affine_sums(CURVE, [[INFINITY, INFINITY]]) == [INFINITY]

    def test_varying_lengths(self):
        lists = [
            points([1, 2, 3]),
            points([5]),
            [],
            points(range(1, 9)),
            [INFINITY] + points([7]) + [INFINITY],
        ]
        expected = [naive_sum(entries) for entries in lists]
        assert batch_affine_sums(CURVE, lists) == expected

    def test_cancellation_then_restart(self):
        # P + (-P) hits the cancellation branch; the next entry must
        # re-seed the accumulator from infinity.
        P = CURVE.mul(G, 11)
        lists = [[P, CURVE.neg(P), CURVE.mul(G, 3)]]
        assert batch_affine_sums(CURVE, lists) == [CURVE.mul(G, 3)]

    def test_tangent_rounds(self):
        # Equal consecutive entries exercise the doubling (tangent) row.
        P = CURVE.mul(G, 9)
        lists = [[P, P], [P, P, P]]
        assert batch_affine_sums(CURVE, lists) == [
            CURVE.mul(G, 18), CURVE.mul(G, 27)
        ]

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.lists(st.integers(0, R - 1), max_size=6),
                    max_size=5))
    def test_matches_naive_fold(self, scalar_lists):
        lists = [points(ks) for ks in scalar_lists]
        expected = [naive_sum(entries) for entries in lists]
        assert batch_affine_sums(CURVE, lists) == expected


class TestTableEntries:
    @given(st.integers(0, R - 1))
    @settings(max_examples=40, deadline=None)
    def test_entries_sum_to_multiple(self, scalar):
        assert naive_sum(table_entries(TABLE, scalar)) \
            == CURVE.mul(G, scalar)

    @pytest.mark.parametrize("window", [1, 3, 8])
    def test_non_nibble_windows(self, window):
        table = FixedBaseTable(CURVE, G, R, window=window)
        for scalar in (0, 1, 255, R - 1):
            assert naive_sum(table_entries(table, scalar)) \
                == CURVE.mul(G, scalar)


class TestBatchTableWalks:
    def test_single_leg_matches_multiply(self):
        scalars = [0, 1, 2, 255, 256, R - 1, R // 3]
        walks = [((TABLE, k),) for k in scalars]
        assert batch_table_walks(CURVE, walks) \
            == [TABLE.multiply(k) for k in scalars]

    def test_multi_leg_sums_legs(self):
        other = FixedBaseTable(CURVE, CURVE.mul(G, 77), R)
        walks = [
            ((TABLE, 123), (other, 456)),
            ((TABLE, 5),),
            ((other, 0), (TABLE, 9)),
        ]
        expected = [
            CURVE.add(TABLE.multiply(123), other.multiply(456)),
            TABLE.multiply(5),
            TABLE.multiply(9),
        ]
        assert batch_table_walks(CURVE, walks) == expected

    def test_empty_and_zero_walks(self):
        walks = [(), ((TABLE, 0),), ((TABLE, 0), (TABLE, 0))]
        assert batch_table_walks(CURVE, walks) == [INFINITY] * 3

    def test_cancellation_to_infinity(self):
        # k·G then (r-k)·G across two legs: the walk must collapse to
        # INFINITY via the ``axs[slot] = None`` branch.
        walks = [((TABLE, 1000), (TABLE, R - 1000))]
        assert batch_table_walks(CURVE, walks) == [INFINITY]

    def test_window8_leg(self):
        wide = FixedBaseTable.doubled_window(TABLE)
        for scalar in (1, 255, 256, 65535, R - 1):
            assert batch_table_walks(CURVE, [((wide, scalar),)]) \
                == [TABLE.multiply(scalar)]

    def test_mixed_window_legs(self):
        wide = FixedBaseTable.doubled_window(TABLE)
        pk = FixedBaseTable(CURVE, CURVE.mul(G, 31337), R)
        walks = [((wide, 0xDEADBEEF), (pk, R - 2)),
                 ((pk, 17), (wide, 17))]
        expected = [
            CURVE.add(TABLE.multiply(0xDEADBEEF), pk.multiply(R - 2)),
            CURVE.add(pk.multiply(17), TABLE.multiply(17)),
        ]
        assert batch_table_walks(CURVE, walks) == expected

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.lists(st.integers(0, R - 1), min_size=1,
                             max_size=3), max_size=4))
    def test_matches_per_walk_multiply(self, scalar_lists):
        walks = [tuple((TABLE, k) for k in ks) for ks in scalar_lists]
        expected = [
            naive_sum(TABLE.multiply(k) for k in ks)
            for ks in scalar_lists
        ]
        assert batch_table_walks(CURVE, walks) == expected

    def test_same_table_twice_regression(self):
        # REGRESSION: both legs walk the SAME table, so without per-leg
        # bucket offsets their digits would land in the same buckets
        # and the round's snapshot-then-apply would drop one addition.
        for a, b in [(1, 1), (15, 240), (0x1234, 0x9876), (R - 1, R - 1)]:
            walks = [((TABLE, a), (TABLE, b))]
            expected = CURVE.add(TABLE.multiply(a), TABLE.multiply(b))
            assert batch_table_walks(CURVE, walks) == [expected]


class TestDoubledWindow:
    def test_window_doubles(self):
        wide = FixedBaseTable.doubled_window(TABLE)
        assert wide.window == 8
        assert wide.point == TABLE.point

    @given(st.integers(0, R - 1))
    @settings(max_examples=40, deadline=None)
    def test_matches_narrow_table(self, scalar):
        wide = FixedBaseTable.doubled_window(TABLE)
        assert wide.multiply(scalar) == TABLE.multiply(scalar)

    def test_odd_level_count(self):
        # window=3 over an 80-bit order gives 27 levels (odd): the last
        # doubled level is the spill-padded copy of the top old level.
        narrow = FixedBaseTable(CURVE, G, R, window=3)
        assert len(narrow.levels) % 2 == 1
        wide = FixedBaseTable.doubled_window(narrow)
        assert wide.window == 6
        for scalar in (0, 1, R - 1, R // 2, 0xFFFF_FFFF):
            assert wide.multiply(scalar) == narrow.multiply(scalar)

    def test_rejects_wide_source(self):
        wide = FixedBaseTable.doubled_window(TABLE)
        with pytest.raises(ValueError):
            FixedBaseTable.doubled_window(wide)

    def test_infinity_base(self):
        trivial = FixedBaseTable(CURVE, INFINITY, R)
        wide = FixedBaseTable.doubled_window(trivial)
        assert wide.multiply(12345) is INFINITY


class TestBatchSameScalarMults:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, R - 1),
           st.lists(st.integers(0, R - 1), max_size=5))
    def test_matches_per_point_mul(self, scalar, ks):
        pts = points(ks) + [INFINITY]
        expected = [CURVE.mul(P, scalar) for P in pts]
        assert batch_same_scalar_mults(CURVE, pts, scalar) == expected

    def test_order_annihilates(self):
        pts = points([1, 2, 12345])
        assert batch_same_scalar_mults(CURVE, pts, R) \
            == [INFINITY] * len(pts)

    def test_negative_scalar_rejected(self):
        with pytest.raises(ValueError):
            batch_same_scalar_mults(CURVE, [G], -1)

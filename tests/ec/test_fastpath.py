"""Tests for the scalar-multiplication fast paths (wNAF, multiexp, tables).

Everything here cross-checks the optimized code against the naive group
law on TOY80: same points in, bit-identical affine points out.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec.curve import INFINITY, SupersingularCurve
from repro.ec.fixed_base import FixedBaseTable
from repro.ec.params import TOY80
from repro.math.field import PrimeField

FIELD = PrimeField(TOY80.p, check_prime=False)
CURVE = SupersingularCurve(FIELD)
G = TOY80.generator
R = TOY80.r

scalars = st.integers(1, R - 1)


def naive_mul(point, k):
    """Textbook double-and-add, the oracle for the wNAF path."""
    if point is INFINITY or k % R == 0:
        return INFINITY
    k %= R
    result = INFINITY
    addend = point
    while k:
        if k & 1:
            result = CURVE.add(result, addend)
        addend = CURVE.double(addend)
        k >>= 1
    return result


class TestWnafMul:
    @given(scalars)
    def test_matches_naive(self, k):
        assert CURVE.mul(G, k) == naive_mul(G, k)

    @given(scalars)
    def test_negative_scalar(self, k):
        assert CURVE.mul(G, -k) == CURVE.neg(CURVE.mul(G, k))

    def test_zero_and_infinity(self):
        assert CURVE.mul(G, 0) is INFINITY
        assert CURVE.mul(INFINITY, 12345) is INFINITY

    def test_two_torsion_point(self):
        # (0, 0) is on y² = x³ + x and has order 2: k·P depends only on
        # the parity of k. These points have y == 0, which the Jacobian
        # doubling formulas cannot represent — the affine branch must
        # catch them.
        torsion = (0, 0)
        assert CURVE.is_on_curve(torsion)
        assert CURVE.mul(torsion, 2) is INFINITY
        assert CURVE.mul(torsion, 3) == torsion
        assert CURVE.mul(torsion, -5) == torsion

    @given(st.integers(1, 15))
    def test_small_scalars(self, k):
        # Exercises the plain double-and-add branch below the wNAF cutoff.
        assert CURVE.mul(G, k) == naive_mul(G, k)

    def test_huge_unreduced_scalar(self):
        k = R * 17 + 5
        assert CURVE.mul(G, k) == CURVE.mul(G, 5)


class TestMultiMul:
    @settings(max_examples=25)
    @given(st.lists(scalars, min_size=1, max_size=6))
    def test_matches_sum_of_muls(self, ks):
        points = [CURVE.mul(G, 3 * i + 1) for i in range(len(ks))]
        expected = INFINITY
        for point, k in zip(points, ks):
            expected = CURVE.add(expected, naive_mul(point, k))
        assert CURVE.multi_mul(list(zip(points, ks))) == expected

    def test_pippenger_threshold(self):
        # 40 points forces the bucket path (threshold is 32).
        rng = random.Random(99)
        pairs = [
            (CURVE.mul(G, rng.randrange(1, R)), rng.randrange(1, R))
            for _ in range(40)
        ]
        expected = INFINITY
        for point, k in pairs:
            expected = CURVE.add(expected, naive_mul(point, k))
        assert CURVE.multi_mul(pairs) == expected

    def test_negative_and_zero_scalars(self):
        p2, p3 = CURVE.mul(G, 2), CURVE.mul(G, 3)
        expected = CURVE.add(naive_mul(G, 7), CURVE.neg(naive_mul(p2, 5)))
        assert CURVE.multi_mul([(G, 7), (p2, -5), (p3, 0)]) == expected

    def test_infinity_entries_and_empty(self):
        assert CURVE.multi_mul([]) is INFINITY
        assert CURVE.multi_mul([(INFINITY, 5)]) is INFINITY
        assert CURVE.multi_mul([(INFINITY, 5), (G, 2)]) == naive_mul(G, 2)

    def test_two_torsion_entry(self):
        torsion = (0, 0)
        expected = CURVE.add(naive_mul(G, 4), torsion)
        assert CURVE.multi_mul([(G, 4), (torsion, 3)]) == expected


class TestBatchNormalize:
    def test_roundtrip(self):
        jacobians = []
        for k in range(1, 8):
            x, y = CURVE.mul(G, k)
            z = (k * 7 + 1) % TOY80.p
            zz = z * z % TOY80.p
            jacobians.append((x * zz % TOY80.p, y * zz * z % TOY80.p, z))
        jacobians.append((1, 1, 0))  # the point at infinity
        normalized = CURVE.batch_normalize(jacobians)
        assert normalized[:-1] == [CURVE.mul(G, k) for k in range(1, 8)]
        assert normalized[-1] is INFINITY


class TestFixedBaseTable:
    TABLE = FixedBaseTable(CURVE, G, R)

    @given(scalars)
    def test_matches_mul(self, k):
        assert self.TABLE.multiply(k) == CURVE.mul(G, k)

    @given(scalars)
    def test_negative(self, k):
        assert self.TABLE.multiply(-k) == CURVE.neg(CURVE.mul(G, k))

    def test_zero(self):
        assert self.TABLE.multiply(0) is INFINITY

    def test_unreduced_scalar_fallback(self):
        # Scalars wider than the table's digit levels take the fallback
        # branch that multiplies the remaining high part separately.
        wide = (R << 64) + 12345
        assert self.TABLE.multiply(wide) == CURVE.mul(G, wide % R)

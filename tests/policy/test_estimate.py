"""The policy estimator must agree with actual encryption outputs."""

import pytest

from repro.core.scheme import MultiAuthorityABE
from repro.ec.params import TOY80
from repro.pairing.serialize import element_sizes
from repro.policy.estimate import cheapest_threshold_method, estimate_policy

SIZES = element_sizes(TOY80)


class TestEstimates:
    @pytest.mark.parametrize(
        "policy,rows",
        [
            ("a:x", 1),
            ("a:x AND a:y", 2),
            ("a:x OR b:y", 2),
            ("2 of (a:x, a:y, a:z)", 6),
        ],
    )
    def test_row_counts(self, policy, rows):
        estimate = estimate_policy(policy, SIZES)
        assert estimate.lsss_rows == rows

    def test_insert_method(self):
        estimate = estimate_policy(
            "3 of (a:v, a:w, a:x, a:y, a:z)", SIZES,
            threshold_method="insert",
        )
        assert estimate.lsss_rows == 5
        assert estimate.rho_injective

    def test_authority_and_attribute_counts(self):
        estimate = estimate_policy("a:x AND (b:y OR a:z)", SIZES)
        assert estimate.involved_authorities == 2
        assert estimate.distinct_attributes == 3

    def test_matches_real_encryption(self):
        scheme = MultiAuthorityABE(TOY80, seed=909)
        authority = scheme.setup_authority("a", ["x", "y", "z"])
        owner = scheme.setup_owner("o", [authority])
        policy = "a:x AND (a:y OR a:z)"
        estimate = estimate_policy(policy, SIZES)
        group = scheme.group
        message = scheme.random_message()
        group.counter.reset()
        ciphertext = owner.encrypt(message, policy)
        assert ciphertext.n_rows == estimate.lsss_rows
        assert (
            ciphertext.element_size_bytes(group)
            == estimate.ciphertext_bytes
        )
        assert (
            group.counter.g1_exponentiations
            == estimate.encrypt_g1_exponentiations
        )
        assert (
            group.counter.gt_exponentiations
            == estimate.encrypt_gt_exponentiations
        )


class TestCheapestMethod:
    def test_threshold_prefers_insert(self):
        best = cheapest_threshold_method("3 of (a:v, a:w, a:x, a:y)", SIZES)
        assert best.threshold_method == "insert"
        assert best.lsss_rows == 4

    def test_plain_formula_prefers_expand(self):
        best = cheapest_threshold_method("a:x AND a:y", SIZES)
        assert best.threshold_method == "expand"  # tie goes to faithful

"""Round-trip tests for key wire formats."""

import pytest

from repro.core import serialize
from repro.core.revocation import rekey_standard
from repro.errors import SchemeError


@pytest.fixture()
def material(deployment):
    """One of everything that serializes."""
    public, keys = deployment.add_user(
        "u", hospital_attrs=["doctor", "nurse"], trial_attrs=["researcher"]
    )
    ciphertext = deployment.owner.encrypt(
        deployment.scheme.random_message(),
        "hospital:doctor AND trial:researcher",
    )
    result = rekey_standard(deployment.hospital, "u", ["nurse"])
    update_info = deployment.owner.update_info(ciphertext, result.update_key)
    return {
        "group": deployment.scheme.group,
        "user_public": public,
        "user_secret": keys["hospital"],
        "owner_secret": deployment.owner.secret_key,
        "authority_public": deployment.trial.authority_public_key(),
        "attribute_public": deployment.trial.public_attribute_keys(),
        "update_key": result.update_key,
        "update_info": update_info,
    }


class TestRoundTrips:
    def test_user_public_key(self, material):
        group = material["group"]
        data = serialize.encode_user_public_key(material["user_public"])
        decoded = serialize.decode_user_public_key(group, data)
        assert decoded == material["user_public"]

    def test_user_secret_key(self, material):
        group = material["group"]
        original = material["user_secret"]
        decoded = serialize.decode_user_secret_key(
            group, serialize.encode_user_secret_key(original)
        )
        assert decoded == original

    def test_owner_secret_key(self, material):
        group = material["group"]
        original = material["owner_secret"]
        decoded = serialize.decode_owner_secret_key(
            group, serialize.encode_owner_secret_key(group, original)
        )
        assert decoded == original

    def test_authority_public_key(self, material):
        group = material["group"]
        original = material["authority_public"]
        decoded = serialize.decode_authority_public_key(
            group, serialize.encode_authority_public_key(original)
        )
        assert decoded == original

    def test_public_attribute_keys(self, material):
        group = material["group"]
        original = material["attribute_public"]
        decoded = serialize.decode_public_attribute_keys(
            group, serialize.encode_public_attribute_keys(original)
        )
        assert decoded.aid == original.aid
        assert decoded.version == original.version
        assert decoded.elements == original.elements

    def test_update_key(self, material):
        group = material["group"]
        original = material["update_key"]
        decoded = serialize.decode_update_key(
            group, serialize.encode_update_key(group, original)
        )
        assert decoded.aid == original.aid
        assert decoded.uk1 == original.uk1
        assert decoded.uk2 == original.uk2
        assert (decoded.from_version, decoded.to_version) == (
            original.from_version, original.to_version,
        )

    def test_update_info(self, material):
        group = material["group"]
        original = material["update_info"]
        decoded = serialize.decode_update_info(
            group, serialize.encode_update_info(original)
        )
        assert decoded == original


class TestDecodedKeysStillWork:
    def test_decrypt_with_deserialized_keys(self, deployment):
        public, keys = deployment.add_user(
            "w", hospital_attrs=["doctor"], trial_attrs=["researcher"]
        )
        message = deployment.scheme.random_message()
        ciphertext = deployment.owner.encrypt(
            message, "hospital:doctor AND trial:researcher"
        )
        group = deployment.scheme.group
        revived = {
            aid: serialize.decode_user_secret_key(
                group, serialize.encode_user_secret_key(key)
            )
            for aid, key in keys.items()
        }
        revived_public = serialize.decode_user_public_key(
            group, serialize.encode_user_public_key(public)
        )
        assert deployment.scheme.decrypt(
            ciphertext, revived_public, revived
        ) == message


class TestMalformedInputs:
    def test_truncated(self, material):
        group = material["group"]
        data = serialize.encode_user_secret_key(material["user_secret"])
        with pytest.raises(SchemeError):
            serialize.decode_user_secret_key(group, data[:-3])
        with pytest.raises(SchemeError):
            serialize.decode_user_secret_key(group, b"\x00\x00")

    def test_wrong_kind_rejected(self, material):
        group = material["group"]
        data = serialize.encode_user_public_key(material["user_public"])
        with pytest.raises(SchemeError, match="not a user secret key"):
            serialize.decode_user_secret_key(group, data)
        with pytest.raises(SchemeError, match="not an update key"):
            serialize.decode_update_key(group, data)

    def test_garbage_header_rejected(self, material):
        group = material["group"]
        bogus = (10).to_bytes(4, "big") + b"not-json!!" + b"\x00" * 8
        with pytest.raises(SchemeError, match="malformed"):
            serialize.decode_user_public_key(group, bogus)

    @pytest.mark.parametrize(
        "decoder",
        [
            serialize.decode_owner_secret_key,
            serialize.decode_authority_public_key,
            serialize.decode_update_info,
            serialize.decode_public_attribute_keys,
        ],
    )
    def test_cross_kind_rejection(self, material, decoder):
        group = material["group"]
        data = serialize.encode_user_public_key(material["user_public"])
        with pytest.raises(SchemeError):
            decoder(group, data)

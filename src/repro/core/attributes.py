"""Attribute naming for the multi-authority setting.

Every attribute in the system is *qualified* by the identifier of the
authority that manages it: ``"hospital:doctor"`` is the attribute
``doctor`` issued by the AA with AID ``hospital``. Policies, LSSS row
labels, public attribute keys and user secret keys all use qualified
names, which realizes the paper's requirement that "with the AID, all
the attributes are distinguishable even though some attributes present
the same meaning".
"""

from __future__ import annotations

import re

from repro.errors import PolicyError

SEPARATOR = ":"
_NAME_RE = re.compile(r"^[A-Za-z0-9_.@+/-]+$")


def validate_identifier(identifier: str, what: str = "identifier") -> str:
    """Check that an AID/UID/attribute fragment is a sane token."""
    if not isinstance(identifier, str) or not _NAME_RE.match(identifier):
        raise PolicyError(
            f"invalid {what} {identifier!r}: use letters, digits, and _.@+/-"
        )
    return identifier


def qualify(aid: str, attribute: str) -> str:
    """The fully-qualified name ``aid:attribute``."""
    validate_identifier(aid, "authority id")
    validate_identifier(attribute, "attribute name")
    return f"{aid}{SEPARATOR}{attribute}"


def split_attribute(qualified: str) -> tuple:
    """Inverse of :func:`qualify`; returns ``(aid, attribute)``."""
    if SEPARATOR not in qualified:
        raise PolicyError(
            f"attribute {qualified!r} is not qualified with an authority id "
            f"(expected 'aid{SEPARATOR}attribute')"
        )
    aid, _, attribute = qualified.partition(SEPARATOR)
    validate_identifier(aid, "authority id")
    validate_identifier(attribute, "attribute name")
    return aid, attribute


def authority_of(qualified: str) -> str:
    """The AID part of a qualified attribute name."""
    return split_attribute(qualified)[0]


def involved_authorities(qualified_attributes) -> frozenset:
    """The set of AIDs appearing in a collection of qualified attributes."""
    return frozenset(authority_of(name) for name in qualified_attributes)

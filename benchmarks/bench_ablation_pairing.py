"""Ablation B: substrate primitive costs (pairing, exponentiations, hashing).

Gives the per-operation costs that, combined with the operation-count
models in repro.analysis.costmodel, predict the Figure 3/4 curves. Runs
on both presets so the preset choice for the other benchmarks is
grounded.
"""

import pytest

from repro.ec.params import PRESETS
from repro.pairing.group import PairingGroup

_groups = {}


def _group(name):
    if name not in _groups:
        _groups[name] = PairingGroup(PRESETS[name], seed=17)
        _groups[name].gt  # warm the cached GT generator
    return _groups[name]


@pytest.mark.parametrize("preset", ["TOY80", "SS512"])
def test_pairing(benchmark, preset):
    group = _group(preset)
    benchmark.group = f"primitives {preset}"
    x = group.random_g1()
    y = group.random_g1()
    result = benchmark(group.pair, x, y)
    assert (result ** group.order).is_identity()


@pytest.mark.parametrize("preset", ["TOY80", "SS512"])
def test_g1_exponentiation(benchmark, preset):
    group = _group(preset)
    benchmark.group = f"primitives {preset}"
    exponent = group.random_scalar()
    result = benchmark(lambda: group.g ** exponent)
    assert not result.is_identity()


@pytest.mark.parametrize("preset", ["TOY80", "SS512"])
def test_gt_exponentiation(benchmark, preset):
    group = _group(preset)
    benchmark.group = f"primitives {preset}"
    exponent = group.random_scalar()
    result = benchmark(lambda: group.gt ** exponent)
    assert not result.is_identity()


@pytest.mark.parametrize("preset", ["TOY80", "SS512"])
def test_hash_to_g1(benchmark, preset):
    group = _group(preset)
    benchmark.group = f"primitives {preset}"
    counter = [0]

    def hash_fresh():
        counter[0] += 1
        return group.hash_to_g1(f"gid-{counter[0]}")

    result = benchmark(hash_fresh)
    assert (result ** group.order).is_identity()


@pytest.mark.parametrize("preset", ["TOY80", "SS512"])
def test_multi_pairing_two_pairs(benchmark, preset):
    """Shared final exponentiation: 2-pairing product vs 2 pairings."""
    group = _group(preset)
    benchmark.group = f"primitives {preset}"
    x, y = group.random_g1(), group.random_g1()
    result = benchmark(group.pair_prod, [(x, group.g), (y, group.g)])
    assert result == group.pair(x, group.g) * group.pair(y, group.g)

"""One-command reproduction report.

``generate_report`` produces a self-contained markdown document with
everything the paper's analytic evaluation contains — Table I, and
Tables II-IV for a given shape at a given preset, models next to live
measured sizes — plus substrate primitive timings. The CLI exposes it as
``python -m repro report``; the timing figures are deliberately left to
the benchmark harness (they take minutes, this takes seconds).
"""

from __future__ import annotations

import time

from repro.analysis.costmodel import (
    SystemShape,
    table2_lewko,
    table2_ours,
    table3_lewko,
    table3_ours,
    table4_lewko,
    table4_ours,
)
from repro.analysis.scalability import TABLE1
from repro.analysis.timing import build_lewko, build_ours
from repro.ec.params import TypeAParams
from repro.pairing.group import PairingGroup
from repro.pairing.serialize import element_sizes
from repro.system.sizes import measure


def _markdown_table(headers, rows) -> str:
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def _time_once(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def generate_report(params: TypeAParams, shape: SystemShape = None,
                    seed: int = 7) -> str:
    """The full analytic evaluation as a markdown string."""
    shape = shape or SystemShape(
        n_authorities=5, attrs_per_authority=5,
        user_attrs_per_authority=5, policy_rows=25,
    )
    sizes = element_sizes(params)
    sections = [
        f"# Reproduction report — preset {params.name}",
        "",
        f"Element sizes: |Z_r| = {sizes.zr} B, |G| = {sizes.g1} B, "
        f"|GT| = {sizes.gt} B. Shape: n_A = {shape.n_authorities}, "
        f"n_k = {shape.attrs_per_authority}, "
        f"n_k,UID = {shape.user_attrs_per_authority}, "
        f"l = {shape.policy_rows}.",
        "",
        "## Table I — scalability comparison",
        "",
        _markdown_table(
            ["Scheme", "Global authority?", "Policy", "Colluders",
             "Implemented"],
            [
                (
                    row.scheme,
                    "Yes" if row.requires_global_authority else "No",
                    row.policy_type,
                    row.collusion_bound,
                    row.implemented_here or "—",
                )
                for row in TABLE1
            ],
        ),
    ]

    # Live objects for the measured columns.
    ours_workload = build_ours(
        params, shape.n_authorities, shape.attrs_per_authority, seed=seed
    )
    lewko_workload = build_lewko(
        params, shape.n_authorities, shape.attrs_per_authority, seed=seed
    )
    group = ours_workload.group
    ours_ct = ours_workload.encrypt()
    lewko_ct = lewko_workload.encrypt()
    measured = {
        ("ours", "secret_key"): sum(
            measure(key, group) for key in ours_workload.secret_keys.values()
        ),
        ("ours", "ciphertext"): ours_ct.element_size_bytes(group),
        ("lewko", "secret_key"): sum(
            measure(key, lewko_workload.group)
            for key in lewko_workload.user_keys.values()
        ),
        ("lewko", "ciphertext"): lewko_ct.element_size_bytes(
            lewko_workload.group
        ),
    }

    ours2, lewko2 = table2_ours(shape), table2_lewko(shape)
    sections += [
        "",
        "## Table II — component sizes (bytes; measured where live "
        "objects exist)",
        "",
        _markdown_table(
            ["Component", "Ours (model)", "Ours (measured)",
             "Lewko (model)", "Lewko (measured)"],
            [
                (
                    component,
                    ours2[component].bytes(sizes),
                    measured.get(("ours", component), "—"),
                    lewko2[component].bytes(sizes),
                    measured.get(("lewko", component), "—"),
                )
                for component in ("authority_key", "public_key",
                                  "secret_key", "ciphertext")
            ],
        ),
    ]

    ours3, lewko3 = table3_ours(shape), table3_lewko(shape)
    sections += [
        "",
        "## Table III — storage overhead (bytes)",
        "",
        _markdown_table(
            ["Entity", "Ours", "Lewko", "Formula (ours)"],
            [
                (entity, ours3[entity].bytes(sizes),
                 lewko3[entity].bytes(sizes), ours3[entity].formula)
                for entity in ("authority", "owner", "user", "server")
            ],
        ),
    ]

    ours4, lewko4 = table4_ours(shape), table4_lewko(shape)
    sections += [
        "",
        "## Table IV — communication cost (bytes)",
        "",
        _markdown_table(
            ["Channel", "Ours", "Lewko"],
            [
                (f"{a}↔{b}", ours4[(a, b)].bytes(sizes),
                 lewko4[(a, b)].bytes(sizes))
                for a, b in (("aa", "user"), ("aa", "owner"),
                             ("server", "user"), ("owner", "server"))
            ],
        ),
    ]

    # Primitive timings (one-shot; see the benchmark harness for stats).
    exponent = group.random_scalar()
    base = group.random_g1()
    other = group.random_g1()
    primitives = [
        ("pairing", _time_once(lambda: group.pair(base, other))),
        ("G exponentiation (generic)", _time_once(lambda: base ** exponent)),
        ("G exponentiation (generator)",
         _time_once(lambda: group.g ** exponent)),
        ("GT exponentiation", _time_once(lambda: group.gt ** exponent)),
        ("hash to Z_r",
         _time_once(lambda: group.hash_to_scalar("attribute"))),
    ]
    sections += [
        "",
        "## Substrate primitives (single shot)",
        "",
        _markdown_table(
            ["Operation", "Time (ms)"],
            [(name, f"{seconds * 1000:.3f}") for name, seconds in primitives],
        ),
        "",
        "Timing figures (Figs 3-4) are regenerated by "
        "`pytest benchmarks/ --benchmark-only` or "
        "`python -m repro figures`.",
        "",
    ]
    return "\n".join(sections)

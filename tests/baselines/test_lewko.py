"""Tests for the Lewko-Waters decentralized CP-ABE baseline."""

import pytest

from repro.baselines import lewko
from repro.errors import PolicyError, PolicyNotSatisfiedError, SchemeError


@pytest.fixture()
def setup(group):
    uni = lewko.LewkoAuthority(group, "uni", ["prof", "student", "dean"])
    gov = lewko.LewkoAuthority(group, "gov", ["citizen", "official"])
    public_keys = {}
    public_keys.update(uni.public_key().elements)
    public_keys.update(gov.public_key().elements)
    return uni, gov, public_keys


class TestSetup:
    def test_attributes_qualified(self, setup):
        uni, _, _ = setup
        assert "uni:prof" in uni.attributes

    def test_public_key_structure(self, group, setup):
        uni, _, _ = setup
        pk = uni.public_key()
        assert len(pk) == 3
        entry = pk["uni:prof"]
        assert (entry.e_alpha ** group.order).is_identity()
        assert (entry.g_y ** group.order).is_identity()

    def test_empty_authority_rejected(self, group):
        with pytest.raises(SchemeError):
            lewko.LewkoAuthority(group, "empty", [])

    def test_secret_size(self, setup):
        uni, _, _ = setup
        assert uni.secret_size_scalars() == 6  # 2 per attribute


class TestKeyGen:
    def test_key_algebra(self, group, setup):
        """K = g^α · H(GID)^y verified against the published values:
        e(K, g) = e(g,g)^α · e(H(GID), g^y)."""
        uni, _, _ = setup
        key = uni.keygen("alice", ["prof"])
        pk = uni.public_key()["uni:prof"]
        h_gid = group.hash_to_g1("alice")
        lhs = group.pair(key.elements["uni:prof"], group.g)
        rhs = pk.e_alpha * group.pair(h_gid, pk.g_y)
        assert lhs == rhs

    def test_unknown_attribute_rejected(self, setup):
        uni, _, _ = setup
        with pytest.raises(SchemeError):
            uni.keygen("alice", ["pilot"])


class TestEncryptDecrypt:
    @pytest.mark.parametrize(
        "policy,attrs",
        [
            ("uni:prof", {"uni": ["prof"]}),
            ("uni:prof AND gov:citizen", {"uni": ["prof"], "gov": ["citizen"]}),
            ("uni:prof OR uni:dean", {"uni": ["dean"]}),
            (
                "(uni:prof AND gov:citizen) OR (uni:dean AND gov:official)",
                {"uni": ["dean"], "gov": ["official"]},
            ),
        ],
    )
    def test_roundtrip(self, group, setup, policy, attrs):
        uni, gov, public_keys = setup
        authorities = {"uni": uni, "gov": gov}
        message = group.random_gt()
        ciphertext = lewko.encrypt(group, message, policy, public_keys)
        keys = {
            aid: authorities[aid].keygen("bob", names)
            for aid, names in attrs.items()
        }
        assert lewko.decrypt(group, ciphertext, "bob", keys) == message

    def test_partial_authority_decryption_works(self, group, setup):
        """Unlike the reproduced scheme, Lewko's decryption only touches
        the rows it uses — keys from uninvolved authorities are not
        needed when an OR branch suffices."""
        uni, gov, public_keys = setup
        message = group.random_gt()
        ciphertext = lewko.encrypt(
            group, message, "uni:prof OR gov:citizen", public_keys
        )
        keys = {"uni": uni.keygen("carol", ["prof"])}
        assert lewko.decrypt(group, ciphertext, "carol", keys) == message

    def test_unsatisfying_attributes_rejected(self, group, setup):
        uni, gov, public_keys = setup
        ciphertext = lewko.encrypt(
            group, group.random_gt(), "uni:prof AND gov:citizen", public_keys
        )
        keys = {"uni": uni.keygen("dave", ["student"])}
        with pytest.raises(PolicyNotSatisfiedError):
            lewko.decrypt(group, ciphertext, "dave", keys)

    def test_missing_public_keys_rejected(self, group, setup):
        _, _, public_keys = setup
        with pytest.raises(PolicyError):
            lewko.encrypt(group, group.random_gt(), "nasa:astronaut",
                          public_keys)


class TestCollusion:
    def test_mixed_gids_rejected(self, group, setup):
        uni, gov, public_keys = setup
        ciphertext = lewko.encrypt(
            group, group.random_gt(), "uni:prof AND gov:citizen", public_keys
        )
        pooled = {
            "uni": uni.keygen("alice", ["prof"]),
            "gov": gov.keygen("bob", ["citizen"]),
        }
        with pytest.raises(SchemeError, match="belongs"):
            lewko.decrypt(group, ciphertext, "bob", pooled)

    def test_forced_mixed_gid_decryption_gives_garbage(self, group, setup):
        """Even bypassing the GID check by relabelling, the H(GID) terms
        do not cancel and the result is not the message."""
        import dataclasses

        uni, gov, public_keys = setup
        message = group.random_gt()
        ciphertext = lewko.encrypt(
            group, message, "uni:prof AND gov:citizen", public_keys
        )
        alice_key = uni.keygen("alice", ["prof"])
        forged = dataclasses.replace(alice_key, gid="bob")
        pooled = {"uni": forged, "gov": gov.keygen("bob", ["citizen"])}
        result = lewko.decrypt(group, ciphertext, "bob", pooled)
        assert result != message


class TestSizes:
    def test_ciphertext_size_formula(self, group, setup):
        _, _, public_keys = setup
        ciphertext = lewko.encrypt(
            group, group.random_gt(), "uni:prof AND gov:citizen", public_keys
        )
        l = ciphertext.n_rows
        expected = (l + 1) * group.gt_bytes + 2 * l * group.g1_bytes
        assert ciphertext.element_size_bytes(group) == expected
        assert l == 2

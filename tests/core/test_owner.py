"""Tests for DataOwner: master keys, ledger, and update information."""

import pytest

from repro.core.owner import DataOwner
from repro.core.revocation import rekey_standard
from repro.errors import RevocationError, SchemeError


class TestOwnerGen:
    def test_secret_key_structure(self, deployment):
        group = deployment.scheme.group
        owner = deployment.owner
        master = owner.master_key
        secret = owner.secret_key
        # g^{1/β} raised to β gives back g.
        assert secret.g_inv_beta ** master.beta == group.g
        # r/β times β gives r.
        assert (
            secret.r_over_beta * master.beta % group.order == master.r_exp
        )

    def test_distinct_owners_distinct_keys(self, group):
        a = DataOwner(group, "a")
        b = DataOwner(group, "b")
        assert a.master_key.beta != b.master_key.beta

    def test_known_authorities(self, deployment):
        assert deployment.owner.known_authorities() == {"hospital", "trial"}


class TestLedger:
    def test_record_created_per_ciphertext(self, deployment):
        ciphertext = deployment.owner.encrypt(
            deployment.scheme.random_message(), "hospital:doctor"
        )
        record = deployment.owner.record(ciphertext.ciphertext_id)
        assert record.policy == ciphertext.policy_string
        assert record.versions == {"hospital": 0}
        assert 1 <= record.s < deployment.scheme.group.order

    def test_explicit_ciphertext_id(self, deployment):
        ciphertext = deployment.owner.encrypt(
            deployment.scheme.random_message(), "hospital:doctor",
            ciphertext_id="my-ct",
        )
        assert ciphertext.ciphertext_id == "my-ct"
        assert "my-ct" in deployment.owner.ciphertext_ids

    def test_duplicate_id_rejected(self, deployment):
        deployment.owner.encrypt(
            deployment.scheme.random_message(), "hospital:doctor",
            ciphertext_id="dup",
        )
        with pytest.raises(SchemeError, match="already used"):
            deployment.owner.encrypt(
                deployment.scheme.random_message(), "hospital:nurse",
                ciphertext_id="dup",
            )

    def test_unknown_record_raises(self, deployment):
        with pytest.raises(SchemeError):
            deployment.owner.record("ghost")

    def test_records_involving(self, deployment):
        deployment.owner.encrypt(
            deployment.scheme.random_message(), "hospital:doctor",
            ciphertext_id="h-only",
        )
        deployment.owner.encrypt(
            deployment.scheme.random_message(),
            "hospital:doctor AND trial:pi",
            ciphertext_id="both",
        )
        assert set(deployment.owner.records_involving("hospital")) == {
            "h-only", "both"
        }
        assert deployment.owner.records_involving("trial") == ["both"]


class TestUpdateInfo:
    def test_record_and_ciphertext_paths_agree(self, deployment):
        deployment.add_user("victim", hospital_attrs=["doctor"])
        ciphertext = deployment.owner.encrypt(
            deployment.scheme.random_message(),
            "hospital:doctor AND trial:researcher",
        )
        result = rekey_standard(deployment.hospital, "victim", ["doctor"])
        from_ciphertext = deployment.owner.update_info(
            ciphertext, result.update_key
        )
        from_record = deployment.owner.update_info_for_record(
            ciphertext.ciphertext_id, result.update_key
        )
        assert from_ciphertext.elements == from_record.elements
        assert from_ciphertext.aid == from_record.aid == "hospital"

    def test_only_affected_attributes_included(self, deployment):
        deployment.add_user("victim", hospital_attrs=["doctor"])
        ciphertext = deployment.owner.encrypt(
            deployment.scheme.random_message(),
            "hospital:doctor AND trial:researcher",
        )
        result = rekey_standard(deployment.hospital, "victim", ["doctor"])
        info = deployment.owner.update_info(ciphertext, result.update_key)
        assert set(info.elements) == {"hospital:doctor"}

    def test_uninvolved_authority_rejected(self, deployment):
        deployment.add_user("victim", trial_attrs=["pi"])
        ciphertext = deployment.owner.encrypt(
            deployment.scheme.random_message(), "hospital:doctor"
        )
        result = rekey_standard(deployment.trial, "victim", ["pi"])
        with pytest.raises(RevocationError, match="not involved"):
            deployment.owner.update_info(ciphertext, result.update_key)

    def test_foreign_ciphertext_rejected(self, deployment):
        deployment.add_user("victim", hospital_attrs=["doctor"])
        other = deployment.scheme.setup_owner(
            "bob", [deployment.hospital, deployment.trial]
        )
        foreign = other.encrypt(
            deployment.scheme.random_message(), "hospital:doctor"
        )
        result = rekey_standard(deployment.hospital, "victim", ["doctor"])
        with pytest.raises(RevocationError, match="different owner"):
            deployment.owner.update_info(foreign, result.update_key)

    def test_note_reencrypted_updates_ledger(self, deployment):
        deployment.add_user("victim", hospital_attrs=["doctor"])
        ciphertext = deployment.owner.encrypt(
            deployment.scheme.random_message(), "hospital:doctor"
        )
        result = rekey_standard(deployment.hospital, "victim", ["doctor"])
        deployment.owner.note_reencrypted(
            ciphertext.ciphertext_id, result.update_key
        )
        record = deployment.owner.record(ciphertext.ciphertext_id)
        assert record.versions["hospital"] == 1
        with pytest.raises(RevocationError):
            deployment.owner.note_reencrypted(
                ciphertext.ciphertext_id, result.update_key
            )

    def test_apply_update_key_unknown_authority(self, deployment):
        deployment.add_user("victim", hospital_attrs=["doctor"])
        result = rekey_standard(deployment.hospital, "victim", ["doctor"])
        fresh_owner = DataOwner(deployment.scheme.group, "loner")
        with pytest.raises(RevocationError):
            fresh_owner.apply_update_key(result.update_key)


class TestLearnAuthority:
    def test_mismatched_bundle_rejected(self, deployment):
        apk = deployment.hospital.authority_public_key()
        pak = deployment.trial.public_attribute_keys()
        with pytest.raises(SchemeError, match="mismatched"):
            deployment.owner.learn_authority(apk, pak)

"""Owner self-reads and record deletion."""

import pytest

from repro.ec.params import TOY80
from repro.errors import RevocationError, SchemeError, StorageError
from repro.system.workflow import CloudStorageSystem


@pytest.fixture()
def system():
    deployment = CloudStorageSystem(TOY80, seed=333)
    deployment.add_authority("aa", ["x"])
    deployment.add_owner("alice")
    deployment.add_user("bob")
    deployment.issue_keys("bob", "aa", ["x"], "alice")
    deployment.upload("alice", "rec", {"c": (b"owner data", "aa:x")})
    return deployment


class TestReadOwn:
    def test_owner_reads_without_abe_keys(self, system):
        assert system.read_own("alice", "rec", "c") == b"owner data"

    def test_matches_user_read(self, system):
        assert system.read_own("alice", "rec", "c") == system.read(
            "bob", "rec", "c"
        )

    def test_foreign_owner_cannot(self, system):
        system.add_owner("mallory")
        with pytest.raises(SchemeError):
            system.read_own("mallory", "rec", "c")

    def test_after_reencryption(self, system):
        """The version-bumped ciphertext still opens for the owner: the
        ledger tracked the version through note_reencrypted and the
        cached authority keys advanced in lockstep."""
        system.add_user("victim")
        system.issue_keys("victim", "aa", ["x"], "alice")
        system.revoke("aa", "victim", ["x"])
        assert system.read_own("alice", "rec", "c") == b"owner data"

    def test_stale_cache_detected(self, system):
        """If the ledger version and cached keys disagree, the owner gets
        a clear error instead of garbage."""
        owner = system.owners["alice"].core
        record = owner.record("rec/c")
        # Forge a ledger entry claiming a future version.
        from repro.core.owner import EncryptionRecord

        owner._records["rec/c"] = EncryptionRecord(
            ciphertext_id=record.ciphertext_id,
            s=record.s,
            policy=record.policy,
            versions={"aa": 7},
        )
        with pytest.raises(RevocationError):
            system.read_own("alice", "rec", "c")


class TestDeleteRecord:
    def test_delete_removes_from_server(self, system):
        system.delete_record("alice", "rec")
        with pytest.raises(StorageError):
            system.read("bob", "rec", "c")
        assert system.server.record_ids == frozenset()

    def test_foreign_owner_cannot_delete(self, system):
        system.add_owner("mallory")
        with pytest.raises(SchemeError):
            system.delete_record("mallory", "rec")
        assert system.server.record_ids == {"rec"}

    def test_deleted_records_skip_revocation_updates(self, system):
        system.add_user("victim")
        system.issue_keys("victim", "aa", ["x"], "alice")
        system.delete_record("alice", "rec")
        # Revocation must not trip over the deleted ciphertext.
        system.revoke("aa", "victim", ["x"])
        assert system.read_own.__name__  # reached: no exception above

    def test_delete_unknown_record(self, system):
        with pytest.raises(StorageError):
            system.delete_record("alice", "ghost")

"""REENCRYPT_SWEEP over real sockets: one request re-encrypts a whole
store, streams progress, survives chaos, and never starves the loop."""

import asyncio
import io

import pytest

from repro.core.revocation import rekey_standard
from repro.ec.params import TOY80
from repro.service.client import BaseClient, OwnerClient, ServiceConnection
from repro.service.faults import ChaosProxy
from repro.service.protocol import MessageType
from repro.service.retry import RetryPolicy
from repro.service.smoke import run_sweep_cycle

from .conftest import run, start_service


async def connect(scenario, host, port, role, name, *, retry=None,
                  timeout=5.0) -> ServiceConnection:
    conn = ServiceConnection(scenario.group, host, port, role=role,
                             name=name, retry=retry, timeout=timeout)
    return await conn.connect()


async def make_owner(scenario, host, port, **kwargs) -> OwnerClient:
    return OwnerClient(
        await connect(scenario, host, port, "owner", "owner:alice",
                      **kwargs),
        scenario.owner_core,
    )


async def populate(owner_client, count) -> list:
    ids = []
    for index in range(count):
        record_id = f"rec-{index:03d}"
        await owner_client.upload(record_id, {
            "note": (f"body {index}".encode("utf-8"), "hospital:doctor"),
        })
        ids.append(f"{record_id}/note")
    return ids


def revoke_bob(scenario):
    return rekey_standard(scenario.aa, "bob", ["doctor"]).update_key


# -- the full cycle, inline and through a real process pool -------------------

@pytest.mark.parametrize("workers", [0, 2])
def test_sweep_cycle_over_a_real_socket(group, store_root, workers):
    async def scenario():
        service = await start_service(group, store_root, workers=workers,
                                      sweep_chunk=3)
        out = io.StringIO()
        try:
            rc = await run_sweep_cycle(TOY80, service.host, service.port,
                                       out=out, seed=7, records=7)
        finally:
            await service.stop()
        return rc, out.getvalue()

    rc, transcript = run(scenario())
    assert rc == 0, transcript
    assert "sweep cycle passed" in transcript
    assert "sweep progress" in transcript


# -- one request, whole store -------------------------------------------------

def test_sweep_updates_every_record_and_streams_progress(
        group, scenario, store_root):
    async def flow():
        service = await start_service(group, store_root, sweep_chunk=2)
        owner = await make_owner(scenario, service.host, service.port)
        try:
            ciphertext_ids = await populate(owner, 5)
            update_key = revoke_bob(scenario)
            frames = []
            summary = await owner.sweep_revocation(
                update_key, on_progress=frames.append
            )
            component = await owner._fetch_component("rec-000", "note")
            repeat = await owner.sweep_revocation(update_key)
        finally:
            await owner.close()
            await service.stop()
        return ciphertext_ids, summary, frames, component, repeat

    ciphertext_ids, summary, frames, component, repeat = run(flow())
    assert sorted(summary["updated"]) == ciphertext_ids
    assert summary["records"] == 5
    assert summary["requested"] == 5
    assert not summary["errors"] and not summary["missing"]
    # chunk=2 over 5 records -> 3 progress frames, cumulative counters.
    assert [f["done"] for f in frames] == [2, 4, 5]
    assert frames[-1]["updated"] == 5
    assert component.abe_ciphertext.version_of("hospital") == 1
    # The owner's ledger advanced, so a replayed sweep ships nothing.
    assert repeat["requested"] == 0 and repeat["updated"] == []


# -- chaos: a dropped progress frame mid-stream -------------------------------

def test_sweep_survives_dropped_progress_frame(group, scenario, store_root):
    async def flow():
        service = await start_service(group, store_root, sweep_chunk=2)
        proxy = await ChaosProxy(service.host, service.port).start()
        retry = RetryPolicy(max_attempts=6, base_delay=0.01,
                            max_delay=0.05)
        owner = await make_owner(scenario, proxy.host, proxy.port,
                                 retry=retry)
        try:
            ciphertext_ids = await populate(owner, 4)
            update_key = revoke_bob(scenario)
            # The very next reply frame is the sweep's first progress
            # frame; sever the connection right there.
            proxy.schedule[proxy._reply_counter] = "drop"
            frames = []
            summary = await owner.sweep_revocation(
                update_key, on_progress=frames.append
            )
            stats = await owner.stats()
        finally:
            await owner.close()
            await proxy.stop()
            await service.stop()
        return ciphertext_ids, summary, proxy.injected, stats

    ciphertext_ids, summary, injected, stats = run(flow())
    assert [f["fault"] for f in injected] == ["drop"]
    assert injected[0]["frame_type"] == MessageType.SWEEP_PROGRESS
    # The retried sweep hit the idempotency table: the server replayed
    # its cached SWEEP_DONE instead of re-running the re-encryption.
    assert sorted(summary["updated"]) == ciphertext_ids
    assert stats["dedup_hits"] >= 1


# -- regression: the loop must keep answering during a sweep ------------------

def test_ping_answers_while_a_sweep_is_running(group, scenario, store_root):
    async def flow():
        service = await start_service(group, store_root, sweep_chunk=1)
        owner = await make_owner(scenario, service.host, service.port)
        pinger = BaseClient(
            await connect(scenario, service.host, service.port,
                          "user", "user:ping")
        )
        loop = asyncio.get_running_loop()
        try:
            await populate(owner, 10)
            update_key = revoke_bob(scenario)
            started = asyncio.Event()
            sweep = asyncio.ensure_future(owner.sweep_revocation(
                update_key, on_progress=lambda frame: started.set()
            ))
            await asyncio.wait_for(started.wait(), 30)
            latencies = []
            while not sweep.done():
                begin = loop.time()
                assert await pinger.ping()
                latencies.append(loop.time() - begin)
            summary = await sweep
        finally:
            await pinger.close()
            await owner.close()
            await service.stop()
        return summary, latencies

    summary, latencies = run(flow())
    assert len(summary["updated"]) == 10
    # At least one ping completed while the sweep was still in flight,
    # and none of them waited for the crypto to finish.
    assert latencies, "sweep finished before a single concurrent ping"
    assert max(latencies) < 2.0



"""The self-contained cluster smoke cycle (``repro cluster smoke``).

Boots N in-process :class:`repro.service.StorageService` nodes on
temporary stores, places records over them with replication factor R,
and drives the acceptance story of the sharded fabric end to end:

1. authority keys publish to **every** node; replicated uploads land on
   R replicas each (quorum-acked);
2. a replica's blob is corrupted on disk — the next read digest-detects
   it server-side, fails over, serves intact bytes from a peer, and
   repairs the corrupt copy back to digest-identical;
3. one node is **killed** — every record stays fetchable through the
   surviving replicas;
4. a revocation sweep with the node still dead converges everywhere it
   can and reports the rest ``pending`` (the epoch does *not* roll);
   the node restarts on its old store, the *same* sweep reruns as the
   resume, already-swept replicas answer ``already_current``, and the
   epoch rolls with **no node left stale**;
5. the revoked read fails, surviving reads stay bit-identical, every
   replica of every record is digest-identical, and a scrub finds
   nothing left to repair;
6. finally an identically seeded **single-node world** replays the same
   logical operations, and every re-encrypted ABE ciphertext in the
   cluster must be byte-identical to its single-node counterpart —
   sharding and the dead-node detour changed *where* the ciphertexts
   live, never *which* bytes ``ReEncrypt`` produced.

With ``chaos`` set, one node (``node-0``) sits behind a
:class:`repro.service.faults.ChaosFleet` proxy injecting seeded faults
while the other nodes forward faithfully — the cycle must survive the
same way the single-node chaos smoke does, through per-node retrying
connections with decorrelated jitter.

Every server runs on its *own* seeded :class:`PairingGroup`, so
server-side verification draws never perturb the client world's
randomness — that isolation is what makes step 6's byte comparison
exact.
"""

from __future__ import annotations

import hashlib
import sys
import tempfile
from pathlib import Path

from repro.cluster.client import (
    ClusterAuthority,
    ClusterClient,
    ClusterOwner,
    ClusterUser,
)
from repro.cluster.topology import ClusterMap, ClusterNode
from repro.core.revocation import rekey_standard
from repro.errors import ReproError
from repro.pairing.group import PairingGroup
from repro.service.client import (
    AuthorityClient,
    OwnerClient,
    ServiceConnection,
    UserClient,
)
from repro.service.faults import ChaosFleet, FaultSpec
from repro.service.server import StorageService
from repro.service.smoke import SmokeFailure, TrustFabric
from repro.service.store import RecordStore
from repro.system.meter import Meter


def _policies():
    return ("hospital:doctor", "hospital:doctor OR hospital:nurse")


def _abe_digests(record) -> dict:
    """component name -> digest of its ABE ciphertext bytes.

    The cross-world identity check targets the ABE ciphertexts — the
    part ``ReEncrypt`` rewrites — because the sealed DEM body carries a
    fresh OS-random nonce per encryption, so *whole-record* identity
    only holds within one world (where replicas share literal bytes).
    """
    return {
        name: hashlib.sha256(
            component.abe_ciphertext.to_bytes()
        ).hexdigest()
        for name, component in record.components.items()
    }


def _record_ids(records: int) -> list:
    return [f"rec-{index:03d}" for index in range(records)]


async def _start_node(params, seed, name: str, root: Path) -> StorageService:
    # Each node gets a private group: its verification/decode draws must
    # never advance the client world's RNG (byte-identity depends on it).
    node_group = PairingGroup(params, seed=f"{seed}:{name}")
    service = StorageService(node_group, RecordStore(root, node_group),
                             name=name, workers=0)
    await service.start()
    return service


async def run_cluster_smoke(params, *, nodes: int = 3, replication: int = 2,
                            records: int = 6, out=None, seed=1,
                            chaos: FaultSpec = None, chaos_seed: int = 0,
                            ring_seed=0, timeout: float = 30.0,
                            verify_single: bool = True,
                            report: dict = None) -> int:
    """Run the full cluster acceptance cycle; returns a process exit code."""
    out = out or sys.stdout
    group = PairingGroup(params, seed=seed)

    def step(label: str) -> None:
        print(f"ok: {label}", file=out, flush=True)

    services = {}
    fleet = None
    clients = []
    single_service = None
    with tempfile.TemporaryDirectory(prefix="repro-cluster-") as tmp:
        tmp_root = Path(tmp)
        try:
            names = [f"node-{index}" for index in range(nodes)]
            for name in names:
                services[name] = await _start_node(
                    params, seed, name, tmp_root / name
                )
            addresses = {name: (services[name].host, services[name].port)
                         for name in names}
            max_attempts = 3
            if chaos is not None:
                # Faults in front of node-0 only: the other proxies
                # forward faithfully, which pins down (via the fleet's
                # per-name seeding) that one node's chaos never shifts
                # another node's stream.
                fleet = ChaosFleet(addresses, specs={names[0]: chaos},
                                   seed=chaos_seed)
                await fleet.start()
                addresses = {name: fleet.address(name) for name in names}
                max_attempts = 8
                step(f"chaos fleet up: faults on {names[0]}, "
                     f"{nodes - 1} faithful proxies (seed {chaos_seed})")

            cluster_map = ClusterMap(
                [ClusterNode(name, *addresses[name]) for name in names],
                replication=replication, ring_seed=ring_seed,
            )
            meter = Meter(group)

            def cluster_client(role, name):
                return ClusterClient(
                    group, cluster_map, role=role, name=name, meter=meter,
                    timeout=timeout, retry_seed=chaos_seed,
                    max_attempts=max_attempts,
                )

            fabric = TrustFabric(group)
            authority = ClusterAuthority(
                cluster_client("aa", "AA:hospital"), fabric.aa
            )
            owner = ClusterOwner(
                cluster_client("owner", "owner:alice"), fabric.owner_core
            )
            bob = ClusterUser(cluster_client("user", "user:bob"), "bob")
            carol = ClusterUser(cluster_client("user", "user:carol"),
                                "carol")
            clients = [authority, owner, bob, carol]

            await authority.publish_keys()
            await owner.learn_authorities("hospital")
            step(f"authority keys published to all {nodes} nodes")

            bob.receive_public_key(fabric.bob_pk)
            carol.receive_public_key(fabric.carol_pk)
            bob.receive_secret_key(
                fabric.aa.keygen(fabric.bob_pk, ["doctor"], "alice")
            )
            carol.receive_secret_key(
                fabric.aa.keygen(fabric.carol_pk, ["doctor", "nurse"],
                                 "alice")
            )
            step("user keys issued (out-of-band, as in the paper)")

            policies = _policies()
            record_ids = _record_ids(records)
            for index, record_id in enumerate(record_ids):
                await owner.upload(record_id, {
                    "note": (f"note {index}".encode("utf-8"),
                             policies[index % len(policies)]),
                })
            shards = {
                name: len(held)
                for name, held in cluster_map.placement_summary(
                    record_ids
                ).items()
            }
            step(f"{records} records replicated {replication}x, "
                 f"quorum {cluster_map.write_quorum}; shards {shards}")

            for index, record_id in enumerate(record_ids):
                if await carol.read(record_id, "note") \
                        != f"note {index}".encode("utf-8"):
                    raise SmokeFailure(f"{record_id} read is not "
                                       f"bit-identical")
            if await owner.read_own(record_ids[0], "note") != b"note 0":
                raise SmokeFailure("owner self-read failed")
            step("reads are bit-identical from the fleet "
                 "(user + owner paths)")

            # -- corrupt one replica; the next read must repair it ------
            victim_record = record_ids[0]
            primary = cluster_map.replicas_for(victim_record)[0].name
            primary_store = services[primary].store
            digest = primary_store.digest(victim_record)
            blob_path = primary_store.blobs._path(digest)
            blob_path.write_bytes(b"bit rot" + blob_path.read_bytes()[7:])
            primary_store.blobs._cache_drop(digest)  # force the disk read
            if await carol.read(victim_record, "note") != b"note 0":
                raise SmokeFailure("read through a corrupt primary did "
                                   "not serve intact bytes")
            if not primary_store.verify_record(victim_record):
                raise SmokeFailure(f"{primary}'s corrupt copy of "
                                   f"{victim_record} was not repaired")
            if primary_store.digest(victim_record) != digest:
                raise SmokeFailure("repair changed the record's bytes")
            repairs = meter.counter(f"cluster.repair.{primary}")
            if not repairs:
                raise SmokeFailure("no repair was recorded for the "
                                   "corrupted replica")
            step(f"corrupt replica on {primary} digest-detected, served "
                 f"from a peer, repaired in place ({repairs} repair)")

            # -- kill a node; every record must stay fetchable ----------
            victim_node = names[1]
            await services[victim_node].stop()
            for index, record_id in enumerate(record_ids):
                if await carol.read(record_id, "note") \
                        != f"note {index}".encode("utf-8"):
                    raise SmokeFailure(
                        f"{record_id} unreadable with {victim_node} dead"
                    )
            step(f"{victim_node} killed: all {records} records still "
                 f"fetchable via surviving replicas")

            # -- revoke; sweep around the dead node, then resume --------
            result = rekey_standard(fabric.aa, "bob", ["doctor"])
            update_key = result.update_key
            for new_key in result.revoked_user_keys.values():
                bob.receive_secret_key(new_key)
            if "alice" not in result.revoked_user_keys:
                bob.drop_keys("hospital", "alice")
            carol.apply_update_key(update_key)

            progress_frames = []

            def on_progress(frame):
                progress_frames.append(frame)
                print(f"  sweep progress [{frame['node']}]: "
                      f"{frame['done']}/{frame['total']} records",
                      file=out, flush=True)

            partial = await owner.sweep_revocation(update_key,
                                                   on_progress=on_progress)
            dead_shard = sum(
                victim_node in [node.name for node in
                                cluster_map.replicas_for(record_id)]
                for record_id in record_ids
            )
            if dead_shard and victim_node not in partial["errors"]:
                raise SmokeFailure(
                    f"sweep did not report the dead node: "
                    f"{partial['errors']}"
                )
            if dead_shard and (partial["epoch_rolled"]
                               or len(partial["pending"]) != dead_shard):
                raise SmokeFailure(
                    f"sweep with a dead node holding {dead_shard} records "
                    f"left {len(partial['pending'])} pending, epoch_rolled="
                    f"{partial['epoch_rolled']}"
                )
            step(f"sweep with {victim_node} dead: "
                 f"{len(partial['converged'])} converged, "
                 f"{len(partial['pending'])} pending, epoch held back")

            services[victim_node] = await _start_node(
                params, seed, f"{victim_node}:restarted",
                tmp_root / victim_node,
            )
            # Same name, same store, new port: rebind the address so
            # placement (keyed on the name) is untouched. Direct — the
            # restarted node is not behind the chaos fleet.
            cluster_map.with_address(victim_node,
                                     services[victim_node].host,
                                     services[victim_node].port)
            resumed = await owner.sweep_revocation(update_key,
                                                   on_progress=on_progress)
            if resumed["pending"] or resumed["errors"] \
                    or not (resumed["epoch_rolled"]
                            or partial["epoch_rolled"]):
                raise SmokeFailure(f"resumed sweep did not converge: "
                                   f"{resumed['errors']} / "
                                   f"{resumed['pending']} pending")
            step(f"{victim_node} restarted on its old store; resumed sweep "
                 f"converged everywhere and rolled the epoch "
                 f"({len(progress_frames)} progress frames)")

            # -- no stale node, no divergent replica --------------------
            for record_id in record_ids:
                digests = set()
                for node in cluster_map.replicas_for(record_id):
                    store = services[node.name].store
                    digests.add(store.digest(record_id))
                    stored = store.get(record_id)
                    for component in stored.components.values():
                        version = component.abe_ciphertext.version_of(
                            "hospital"
                        )
                        if version != update_key.to_version:
                            raise SmokeFailure(
                                f"{node.name} serves {record_id} at stale "
                                f"version {version}"
                            )
                if len(digests) != 1:
                    raise SmokeFailure(
                        f"{record_id} replicas diverged after the sweep"
                    )
            step("every replica of every record is digest-identical at "
                 "the new version")

            try:
                await bob.read(record_ids[0], "note")
                raise SmokeFailure("revoked user still decrypts")
            except ReproError as exc:
                if isinstance(exc, SmokeFailure):
                    raise
            if await carol.read(record_ids[1], "note") != b"note 1":
                raise SmokeFailure("surviving user lost access after the "
                                   "sweep")
            step("revoked read fails; surviving read is bit-identical")

            health = await owner.health()
            if health["status"] != "ok":
                raise SmokeFailure(f"fleet not healthy after recovery: "
                                   f"{health['status']}")
            scrub = await owner.cluster.scrub()
            if scrub["repaired"] or scrub["lost"] or scrub["unreachable"]:
                raise SmokeFailure(f"post-recovery scrub found damage: "
                                   f"{scrub}")
            step(f"fleet healthy; scrub of {scrub['checked']} records "
                 f"found nothing to repair")

            if verify_single:
                single_digests, single_service = await _single_node_world(
                    params, seed, records, tmp_root / "single"
                )
                for record_id in record_ids:
                    primary_name = cluster_map.replicas_for(
                        record_id
                    )[0].name
                    stored = services[primary_name].store.get(record_id)
                    if _abe_digests(stored) != single_digests[record_id]:
                        raise SmokeFailure(
                            f"{record_id}: re-encrypted ciphertexts "
                            f"diverge from the single-node world"
                        )
                step(f"all {records} re-encrypted ciphertexts "
                     f"byte-identical to an identically seeded "
                     f"single-node sweep")

            if fleet is not None:
                step(f"chaos survived: {fleet.fault_counts()} across the "
                     f"fleet; retry events "
                     f"{dict(owner.cluster.retry_log.counts())}")
            if report is not None:
                report["partial_sweep"] = partial
                report["resumed_sweep"] = resumed
                report["counters"] = meter.counter_summary("cluster.")
                report["health"] = health
                report["scrub"] = scrub
                if fleet is not None:
                    report["fault_counts"] = fleet.fault_counts()
        except SmokeFailure as exc:
            print(f"FAIL: {exc}", file=out, flush=True)
            return 1
        except (ReproError, OSError) as exc:
            print(f"FAIL: cluster cycle died with {exc!r}", file=out,
                  flush=True)
            return 1
        finally:
            for client in clients:
                await client.close()
            for service in services.values():
                await service.stop()
            if single_service is not None:
                await single_service.stop()
            if fleet is not None:
                await fleet.stop()
    print("cluster smoke passed", file=out, flush=True)
    return 0


async def _single_node_world(params, seed, records: int, root: Path):
    """Replay the smoke's draw-bearing operations against ONE node.

    Built on a client group seeded exactly like the cluster world's, and
    replaying the same randomness-consuming operations in the same order
    (fabric, key issuance, uploads, one rekey) — reads and sweeps draw
    nothing, so the resulting post-sweep records must be byte-identical
    to the cluster's. Returns ``(record id -> digest, service)``.
    """
    group = PairingGroup(params, seed=seed)
    service = await _start_node(params, seed, "single", root)
    fabric = TrustFabric(group)

    async def connect(role, name):
        conn = ServiceConnection(group, service.host, service.port,
                                 role=role, name=name)
        return await conn.connect()

    aa_client = AuthorityClient(await connect("aa", "AA:hospital"),
                                fabric.aa)
    owner_client = OwnerClient(await connect("owner", "owner:alice"),
                               fabric.owner_core)
    bob = UserClient(await connect("user", "user:bob"), "bob")
    try:
        await aa_client.publish_keys()
        await owner_client.learn_authorities("hospital")
        bob.receive_public_key(fabric.bob_pk)
        bob.receive_secret_key(
            fabric.aa.keygen(fabric.bob_pk, ["doctor"], "alice")
        )
        fabric.aa.keygen(fabric.carol_pk, ["doctor", "nurse"], "alice")
        policies = _policies()
        for index, record_id in enumerate(_record_ids(records)):
            await owner_client.upload(record_id, {
                "note": (f"note {index}".encode("utf-8"),
                         policies[index % len(policies)]),
            })
        result = rekey_standard(fabric.aa, "bob", ["doctor"])
        await owner_client.sweep_revocation(result.update_key)
        digests = {record_id: _abe_digests(service.store.get(record_id))
                   for record_id in _record_ids(records)}
        return digests, service
    finally:
        for client in (aa_client, owner_client, bob):
            await client.close()

"""Tests for the prime field F_p context."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MathError
from repro.math.field import PrimeField

P = 0x82AB3A7FE43647067E8563A38CC0A04EC6E335B7  # TOY80 base field prime
FIELD = PrimeField(P, check_prime=False)

elements = st.integers(0, P - 1)
nonzero = st.integers(1, P - 1)


class TestConstruction:
    def test_rejects_even(self):
        with pytest.raises(MathError):
            PrimeField(10)

    def test_rejects_composite(self):
        with pytest.raises(MathError):
            PrimeField(91)  # 7 * 13

    def test_byte_length(self):
        assert FIELD.byte_length == 20
        assert PrimeField(13).byte_length == 1

    def test_equality_and_hash(self):
        other = PrimeField(P, check_prime=False)
        assert FIELD == other
        assert hash(FIELD) == hash(other)
        assert FIELD != PrimeField(13)


class TestFieldAxioms:
    @given(elements, elements, elements)
    def test_add_associative_commutative(self, a, b, c):
        assert FIELD.add(FIELD.add(a, b), c) == FIELD.add(a, FIELD.add(b, c))
        assert FIELD.add(a, b) == FIELD.add(b, a)

    @given(elements, elements, elements)
    def test_mul_distributes(self, a, b, c):
        assert FIELD.mul(a, FIELD.add(b, c)) == FIELD.add(
            FIELD.mul(a, b), FIELD.mul(a, c)
        )

    @given(elements)
    def test_additive_inverse(self, a):
        assert FIELD.add(a, FIELD.neg(a)) == 0

    @given(nonzero)
    def test_multiplicative_inverse(self, a):
        assert FIELD.mul(a, FIELD.inv(a)) == 1

    @given(nonzero, nonzero)
    def test_div_mul_roundtrip(self, a, b):
        assert FIELD.mul(FIELD.div(a, b), b) == a

    @given(elements)
    def test_square_matches_mul(self, a):
        assert FIELD.square(a) == FIELD.mul(a, a)

    @given(elements, st.integers(0, 2**40))
    def test_pow_matches_python(self, a, e):
        assert FIELD.pow(a, e) == pow(a, e, P)


class TestSqrt:
    @given(elements)
    def test_sqrt_of_square(self, a):
        square = FIELD.square(a)
        root = FIELD.sqrt(square)
        assert FIELD.square(root) == square

    @given(nonzero)
    def test_is_square_consistent(self, a):
        assert FIELD.is_square(FIELD.square(a))

    def test_zero_is_square(self):
        assert FIELD.is_square(0)
        assert FIELD.sqrt(0) == 0

    def test_exactly_half_nonzero_are_squares(self):
        field = PrimeField(103)
        squares = sum(field.is_square(a) for a in range(1, 103))
        assert squares == 51


class TestCodecAndSampling:
    @given(elements)
    def test_bytes_roundtrip(self, a):
        encoded = FIELD.to_bytes(a)
        assert len(encoded) == FIELD.byte_length
        assert FIELD.from_bytes(encoded) == a

    def test_from_bytes_rejects_out_of_range(self):
        with pytest.raises(MathError):
            FIELD.from_bytes(b"\xff" * FIELD.byte_length)

    def test_random_in_range(self):
        rng = random.Random(3)
        for _ in range(100):
            assert 0 <= FIELD.random(rng) < P
            assert 1 <= FIELD.random_nonzero(rng) < P

"""Tests for element-size accounting."""

from repro.ec.params import SS512, TOY80
from repro.pairing.group import PairingGroup
from repro.pairing.serialize import ElementSizes, element_sizes


class TestElementSizes:
    def test_ss512_matches_paper_proportions(self):
        sizes = element_sizes(SS512)
        # 512-bit base field: |G| = 64+1 compressed, |GT| = 128, |p| = 20.
        assert sizes.g1 == 65
        assert sizes.gt == 128
        assert sizes.zr == 20

    def test_toy80(self):
        sizes = element_sizes(TOY80)
        assert sizes.g1 == 21
        assert sizes.gt == 40
        assert sizes.zr == 10

    def test_of_arithmetic(self):
        sizes = ElementSizes(zr=2, g1=3, gt=5)
        assert sizes.of() == 0
        assert sizes.of(n_zr=1, n_g1=2, n_gt=3) == 2 + 6 + 15

    def test_matches_group_encodings(self, group):
        sizes = element_sizes(group.params)
        assert sizes.g1 == len(group.encode_g1(group.g))
        assert sizes.gt == len(group.encode_gt(group.gt))
        assert sizes.zr == len(group.encode_scalar(1))

    def test_consistent_with_group_attributes(self):
        group = PairingGroup(TOY80, seed=0)
        sizes = element_sizes(TOY80)
        assert (sizes.g1, sizes.gt, sizes.zr) == (
            group.g1_bytes,
            group.gt_bytes,
            group.scalar_bytes,
        )

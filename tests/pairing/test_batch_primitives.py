"""Batch substrate primitives must be bit-identical to their scalar
counterparts — that identity is what lets the parallel ReEncrypt engine
claim byte-for-byte equality with the paper's sequential path."""

import pytest

from repro.ec.curve import INFINITY
from repro.errors import MathError
from repro.pairing.miller import (
    final_exponentiation,
    final_exponentiation_many,
)


def test_pair_many_matches_pair(group):
    fixed = group.random_g1()
    prepared = group.prepare_pairing(fixed)
    others = [group.random_g1() for _ in range(5)]
    batched = prepared.pair_many([q.point for q in others])
    for q, value in zip(others, batched):
        assert value == group.pair(fixed, q).value


def test_pair_many_handles_empty_and_identity(group):
    prepared = group.prepare_pairing(group.random_g1())
    assert prepared.pair_many([]) == []
    [value] = prepared.pair_many([INFINITY])
    assert value == group.identity_gt().value


def test_final_exponentiation_many_matches_scalar(group):
    ext = group.ext
    values = [group.random_g1() for _ in range(4)]
    raws = [group.prepare_pairing(v).miller(group.g.point) for v in values]
    batched = final_exponentiation_many(ext, raws, group.order)
    assert batched == [
        final_exponentiation(ext, raw, group.order) for raw in raws
    ]
    assert final_exponentiation_many(ext, [], group.order) == []


def test_decode_g1_batch_matches_per_point(group):
    elements = [group.random_g1() for _ in range(6)]
    blobs = [group.encode_g1(e) for e in elements]
    decoded = group.decode_g1_batch(blobs)
    assert [group.encode_g1(d) for d in decoded] == blobs


def _out_of_subgroup_blob(group) -> bytes:
    """Encode a curve point that is NOT in the order-r subgroup (the
    curve has h·r points, so small-x lifts usually land outside)."""
    for x in range(2, 500):
        point = group.curve.lift_x(x)
        if point is None:
            continue
        if group.curve.mul(point, group.order) is INFINITY:
            continue
        return bytes([2 + (point[1] & 1)]) + group.field.to_bytes(x)
    pytest.fail("no out-of-subgroup x found in range")  # pragma: no cover


def test_decode_g1_batch_names_the_bad_element(group):
    blobs = [group.encode_g1(group.random_g1()) for _ in range(3)]
    blobs.insert(1, _out_of_subgroup_blob(group))
    with pytest.raises(MathError, match="batch element 1"):
        group.decode_g1_batch(blobs)


def test_decode_g1_batch_rejects_paired_two_torsion(group):
    # Regression: the cofactor is divisible by 4, so (0, 0) is an
    # order-2 curve point outside the order-r subgroup. Two points
    # carrying that same residual cancel it in any linear combination
    # with same-parity coefficients, which defeated a batched
    # random-linear-combination subgroup check deterministically — the
    # per-point check must reject both.
    torsion = (0, 0)
    assert group.curve.is_on_curve(torsion)
    assert group.curve.mul(torsion, 2) is INFINITY
    blobs = []
    for _ in range(2):
        point = group.curve.add(group.random_g1().point, torsion)
        blobs.append(
            bytes([2 + (point[1] & 1)]) + group.field.to_bytes(point[0])
        )
    with pytest.raises(MathError, match="batch element 0"):
        group.decode_g1_batch(blobs)

"""Chase's multi-authority ABE (TCC 2007) — the central-authority baseline.

The first multi-authority ABE scheme, reference [7] of the paper and the
first comparison row of Table I. Reproducing it makes the table's two
criticisms *executable*:

* it needs a **central authority** whose master secret decrypts every
  ciphertext in the system (demonstrated by
  ``central_authority_decrypt`` and its test) — the vulnerability/
  bottleneck the reproduced paper removes;
* its policies are a fixed **d_k-out-of-n_k threshold per authority,
  ANDed across all authorities** — no LSSS expressiveness.

Construction (symmetric pairing of order r, generator g):

* Central authority (CA): master secret ``y_0``; system key
  ``Y = e(g,g)^{y_0}``. It also knows every AA's PRF seed.
* Authority ``k``: threshold ``d_k``, per-attribute secrets ``t_{k,i}``
  with public ``T_{k,i} = g^{t_{k,i}}``, and a PRF ``F_k`` mapping a
  user's GID to ``y_{k,u}``.
* User key from authority ``k`` for attribute set ``A``: a fresh Shamir
  polynomial ``p`` of degree ``d_k - 1`` with ``p(0) = y_{k,u}``;
  components ``S_{k,i} = g^{p(i)/t_{k,i}}`` for ``i ∈ A``.
* Central key for user ``u``: ``D_u = g^{y_0 - Σ_k y_{k,u}}`` — this is
  what ties the authorities together and why the CA must know all seeds.
* Encrypt(m, attribute set per authority): ``s`` random;
  ``C_0 = m·Y^s``, ``C_1 = g^s``, ``C_{k,i} = T_{k,i}^s``.
* Decrypt: per authority, pair ``d_k`` components
  ``e(S_{k,i}, C_{k,i}) = e(g,g)^{p(i)·s}`` and Lagrange-combine to
  ``e(g,g)^{y_{k,u}·s}``; multiply across authorities and by
  ``e(D_u, C_1)`` to reach ``Y^s``.

PRFs are instantiated as HMAC-SHA256 into Z_r (the standard
random-oracle instantiation).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.core.attributes import qualify, validate_identifier
from repro.errors import PolicyNotSatisfiedError, SchemeError
from repro.math.integers import invmod
from repro.math.polynomial import Polynomial, lagrange_coefficients_at_zero
from repro.pairing.group import G1Element, GTElement, PairingGroup


def _prf(seed: bytes, gid: str, order: int) -> int:
    """F_seed(gid) → Z_r via HMAC-SHA256 expansion."""
    stream = b""
    counter = 0
    needed = 2 * ((order.bit_length() + 7) // 8)
    while len(stream) < needed:
        stream += hmac.new(
            seed, gid.encode("utf-8") + counter.to_bytes(4, "big"),
            hashlib.sha256,
        ).digest()
        counter += 1
    return int.from_bytes(stream[:needed], "big") % order


@dataclass(frozen=True)
class ChaseUserKey:
    """One user's components from one authority."""

    gid: str
    aid: str
    components: dict  # qualified attribute -> (index i, S_{k,i})


@dataclass(frozen=True)
class ChaseCentralKey:
    """D_u from the central authority."""

    gid: str
    element: G1Element


@dataclass(frozen=True)
class ChaseCiphertext:
    c0: GTElement
    c1: G1Element
    per_attribute: dict   # qualified attribute -> T^s
    thresholds: dict      # aid -> d_k required from that authority

    @property
    def involved_aids(self) -> frozenset:
        return frozenset(self.thresholds)


class ChaseAuthority:
    """One attribute authority of Chase's scheme."""

    def __init__(self, group: PairingGroup, aid: str, attributes,
                 threshold: int, seed: bytes):
        validate_identifier(aid, "authority id")
        names = list(attributes)
        if not 1 <= threshold <= len(names):
            raise SchemeError(
                f"threshold {threshold} out of range for {len(names)} attributes"
            )
        self.group = group
        self.aid = aid
        self.threshold = threshold
        self._seed = seed
        # Attribute index i ∈ {1, …, n_k} doubles as the Shamir x-coord.
        self._indices = {}
        self._secrets = {}
        for position, name in enumerate(names, start=1):
            validate_identifier(name, "attribute name")
            qualified = qualify(aid, name)
            self._indices[qualified] = position
            self._secrets[qualified] = group.random_scalar()

    @property
    def attributes(self) -> frozenset:
        return frozenset(self._secrets)

    def public_key(self) -> dict:
        """{qualified attribute: T_{k,i} = g^{t_{k,i}}}."""
        return {
            name: self.group.g ** secret
            for name, secret in self._secrets.items()
        }

    def user_secret(self, gid: str) -> int:
        """y_{k,u} = F_k(GID) — shared with the central authority."""
        return _prf(self._seed, gid, self.group.order)

    def keygen(self, gid: str, attributes) -> ChaseUserKey:
        group = self.group
        order = group.order
        y_ku = self.user_secret(gid)
        # Shamir polynomial of degree d_k - 1 with p(0) = y_{k,u}.
        polynomial = Polynomial.random_with_constant(
            y_ku, self.threshold - 1, order, group.rng
        )
        components = {}
        for name in attributes:
            qualified = qualify(self.aid, name)
            secret = self._secrets.get(qualified)
            if secret is None:
                raise SchemeError(
                    f"authority {self.aid!r} does not manage {name!r}"
                )
            index = self._indices[qualified]
            exponent = polynomial.evaluate(index) * invmod(secret, order) % order
            components[qualified] = (index, group.g ** exponent)
        if not components:
            raise SchemeError("Chase keys need at least one attribute")
        return ChaseUserKey(gid=gid, aid=self.aid, components=components)


class ChaseCentralAuthority:
    """The trusted third party Chase's scheme cannot avoid.

    Holds the system master secret y_0 *and* every authority's PRF seed,
    which is exactly why it is "a vulnerable point for security attacks
    and the performance bottleneck for large scale systems".
    """

    def __init__(self, group: PairingGroup):
        self.group = group
        self._y0 = group.random_scalar()
        self._authorities = {}

    def register_authority(self, authority: ChaseAuthority) -> None:
        if authority.aid in self._authorities:
            raise SchemeError(f"authority {authority.aid!r} already registered")
        self._authorities[authority.aid] = authority

    def system_key(self) -> GTElement:
        """Y = e(g,g)^{y_0} — the encryption key of the whole system."""
        return self.group.gt ** self._y0

    def central_key(self, gid: str) -> ChaseCentralKey:
        """D_u = g^{y_0 - Σ_k y_{k,u}}."""
        order = self.group.order
        total = sum(
            authority.user_secret(gid)
            for authority in self._authorities.values()
        )
        return ChaseCentralKey(
            gid=gid, element=self.group.g ** ((self._y0 - total) % order)
        )

    def central_authority_decrypt(self, ciphertext: ChaseCiphertext) -> GTElement:
        """The flaw, made executable: the CA decrypts *any* ciphertext
        with its master secret alone — no attributes needed."""
        return ciphertext.c0 / (
            self.group.pair(self.group.g ** self._y0, ciphertext.c1)
        )


def encrypt(group: PairingGroup, message: GTElement,
            attribute_sets: dict, authorities: dict) -> ChaseCiphertext:
    """Encrypt for a per-authority attribute set (implicit AND across AAs).

    ``attribute_sets`` maps AID → iterable of unqualified attribute
    names; ``authorities`` maps AID → :class:`ChaseAuthority` (for their
    public keys and thresholds). The policy this realizes is
    "d_k of the listed attributes from EVERY listed authority".
    """
    central = authorities.get("__central__")
    if central is None:
        raise SchemeError("pass the central authority under key '__central__'")
    s = group.random_scalar()
    per_attribute = {}
    thresholds = {}
    for aid, names in attribute_sets.items():
        authority = authorities.get(aid)
        if authority is None:
            raise SchemeError(f"unknown authority {aid!r}")
        public = authority.public_key()
        chosen = list(names)
        if len(chosen) < authority.threshold:
            raise SchemeError(
                f"ciphertext lists {len(chosen)} attributes from {aid!r}; "
                f"its threshold is {authority.threshold}"
            )
        for name in chosen:
            qualified = qualify(aid, name)
            if qualified not in public:
                raise SchemeError(
                    f"authority {aid!r} does not manage {name!r}"
                )
            per_attribute[qualified] = public[qualified] ** s
        thresholds[aid] = authority.threshold
    return ChaseCiphertext(
        c0=message * (central.system_key() ** s),
        c1=group.g ** s,
        per_attribute=per_attribute,
        thresholds=thresholds,
    )


def decrypt(group: PairingGroup, ciphertext: ChaseCiphertext,
            central_key: ChaseCentralKey, keys: dict) -> GTElement:
    """Decrypt with d_k matching attributes from every involved authority.

    ``keys`` maps AID → :class:`ChaseUserKey`; all must share the central
    key's GID (PRF-bound, so mixing users cannot work even if forced).
    """
    order = group.order
    accumulator = group.identity_gt()
    for aid, threshold in ciphertext.thresholds.items():
        key = keys.get(aid)
        if key is None:
            raise SchemeError(f"no key from involved authority {aid!r}")
        if key.gid != central_key.gid:
            raise SchemeError(
                f"key from {aid!r} belongs to {key.gid!r}, "
                f"not {central_key.gid!r}"
            )
        usable = [
            (index, component, ciphertext.per_attribute[name])
            for name, (index, component) in key.components.items()
            if name in ciphertext.per_attribute
        ]
        if len(usable) < threshold:
            raise PolicyNotSatisfiedError(
                f"user holds {len(usable)} matching attributes from {aid!r}; "
                f"threshold is {threshold}"
            )
        usable = usable[:threshold]
        lagrange = lagrange_coefficients_at_zero(
            [index for index, _, _ in usable], order
        )
        for index, component, blinded in usable:
            term = group.pair(component, blinded)
            accumulator = accumulator * (term ** lagrange[index])
    accumulator = accumulator * group.pair(central_key.element, ciphertext.c1)
    return ciphertext.c0 / accumulator

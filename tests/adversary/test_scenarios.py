"""Every built-in scenario, honest and control, at one seed.

These are the same runs CI's ``adversary-matrix`` job executes over
more seeds; here they run with shrunken workloads (fewer records, a
lighter spam calibration target) so the whole file stays in unit-test
time. What is asserted per run:

* honest mode — the verdict is ok, meaning every invariant passed;
* control mode — the verdict is ok, meaning the run *completed* and
  the scenario's declared invariant FAILED with the defense disabled
  (the checker has teeth).
"""

import pytest

from repro.adversary.engine import run_scenario, scenario_names

#: Shrunken knobs so a full both-modes pass stays fast under pytest.
FAST_PARAMS = {"records": 4, "spam_decode_target": 0.15}


def _run(name, control):
    verdict = run_scenario(name, seed=1, control=control,
                           params=FAST_PARAMS)
    detail = "\n".join(
        f"  {'PASS' if inv['ok'] else 'FAIL'} [{inv['name']}] "
        f"{inv['detail']}" for inv in verdict["invariants"]
    )
    assert verdict["ok"], (
        f"{name} [{verdict['mode']}] not ok "
        f"(error={verdict['error']!r}):\n{detail}"
    )
    return verdict


@pytest.mark.parametrize("name", scenario_names())
def test_honest_run_passes_every_invariant(name):
    verdict = _run(name, control=False)
    assert verdict["passed"]
    assert not verdict["error"]
    assert verdict["invariants"], "a scenario must check something"


@pytest.mark.parametrize("name", scenario_names())
def test_control_run_fails_its_declared_invariant(name):
    verdict = _run(name, control=True)
    target = next(inv for inv in verdict["invariants"]
                  if inv["name"] == verdict["control_invariant"])
    assert not target["ok"], (
        f"{name}: control run left {verdict['control_invariant']!r} "
        f"passing — the defense was not actually load-bearing"
    )
    assert not verdict["error"]

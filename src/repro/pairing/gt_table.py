"""Fixed-base windowed exponentiation in GT ⊂ F_p²^*.

The cached GT generator ``e(g, g)`` appears in every Encrypt
(``C = m·e(g,g)^s``), and the per-authority public keys
``e(g,g)^{α_k}`` are exponentiated by every owner; both are *fixed
bases* exponentiated with fresh scalars, the exact shape fixed-base
tables accelerate. This is the multiplicative-group analogue of
:class:`repro.ec.fixed_base.FixedBaseTable`: ``levels[i][j] =
base^(j·W^i)`` for window width ``w`` (``W = 2^w``), so one
exponentiation costs at most ``ceil(bits/w)`` F_p² multiplications and
zero squarings — roughly 4× fewer base-field multiplications than
square-and-multiply.

Memory: ``(W-1)·ceil(bits/w)`` F_p² elements; for a 160-bit order and
w = 4 that is 600 elements (~75 KB at 512-bit p), built once per base
with ~600 F_p² multiplications.
"""

from __future__ import annotations

from repro.math.field_ext import Fp2Element, QuadraticExtension


class GTFixedBaseTable:
    """Precomputed powers of one F_p² element for windowed exponentiation."""

    __slots__ = ("ext", "base", "window", "levels")

    def __init__(self, ext: QuadraticExtension, base: Fp2Element, order: int,
                 window: int = 4):
        if not 1 <= window <= 8:
            raise ValueError("window width must be in [1, 8]")
        self.ext = ext
        self.base = base
        self.window = window
        width = 1 << window
        n_levels = (order.bit_length() + window - 1) // window
        mul = ext.mul
        self.levels = []
        level_base = base
        for _ in range(n_levels):
            row = [ext.one]
            accumulator = ext.one
            for _ in range(width - 1):
                accumulator = mul(accumulator, level_base)
                row.append(accumulator)
            self.levels.append(row)
            # level_base ← level_base^(2^window) for the next digit position.
            level_base = mul(accumulator, level_base)

    def pow(self, exponent: int) -> Fp2Element:
        """``base^exponent`` using the precomputed table."""
        if exponent < 0:
            return self.ext.inv(self.pow(-exponent))
        ext = self.ext
        mul = ext.mul
        mask = (1 << self.window) - 1
        result = ext.one
        level = 0
        while exponent and level < len(self.levels):
            digit = exponent & mask
            if digit:
                result = mul(result, self.levels[level][digit])
            exponent >>= self.window
            level += 1
        if exponent:
            # Exponent exceeded the table (not reduced mod order): fall
            # back for the remaining high part.
            high = ext.pow(self.base, exponent << (self.window * level))
            result = mul(result, high)
        return result

"""Tests for the Hur-Noh attribute-group revocation baseline."""

import pytest

from repro.baselines.bsw import BswScheme
from repro.baselines.hur import HurSystem, decrypt as hur_decrypt
from repro.errors import AuthorizationError, SchemeError


@pytest.fixture()
def setup(group):
    bsw = BswScheme(group)
    hur = HurSystem(bsw, capacity=8, seed=7)
    keks = {}
    for uid in ("u1", "u2", "u3"):
        keks[uid] = hur.register_user(uid)
        for attribute in ("a", "b"):
            hur.grant(uid, attribute)
    return bsw, hur, keks


class TestMembership:
    def test_grant_requires_registration(self, setup):
        _, hur, _ = setup
        with pytest.raises(SchemeError):
            hur.grant("ghost", "a")

    def test_members_tracked(self, setup):
        _, hur, _ = setup
        assert hur.members_of("a") == {"u1", "u2", "u3"}
        assert hur.members_of("unknown") == frozenset()

    def test_group_key_versions(self, setup):
        _, hur, _ = setup
        assert hur.group_key_version("a") == 0
        assert hur.group_key_version("unknown") == -1


class TestHeaders:
    def test_member_unwraps(self, group, setup):
        _, hur, keks = setup
        header = hur.header("a")
        key = HurSystem.unwrap_group_key(header, keks["u1"],
                                         group.scalar_bytes)
        assert 1 <= key < group.order

    def test_all_members_get_same_key(self, group, setup):
        _, hur, keks = setup
        header = hur.header("a")
        keys = {
            uid: HurSystem.unwrap_group_key(header, keks[uid],
                                            group.scalar_bytes)
            for uid in ("u1", "u2", "u3")
        }
        assert len(set(keys.values())) == 1

    def test_non_member_cannot_unwrap(self, group, setup):
        _, hur, keks = setup
        keks_u4 = hur.register_user("u4")  # registered but not granted
        header = hur.header("a")
        with pytest.raises(AuthorizationError):
            HurSystem.unwrap_group_key(header, keks_u4, group.scalar_bytes)

    def test_header_for_unknown_attribute(self, setup):
        _, hur, _ = setup
        with pytest.raises(SchemeError):
            hur.header("unknown")


class TestDecryption:
    def test_member_roundtrip(self, group, setup):
        bsw, hur, keks = setup
        message = group.random_gt()
        stored = [hur.reencrypt(bsw.encrypt(message, "a AND b"))]
        headers = {attr: hur.header(attr) for attr in ("a", "b")}
        key = bsw.keygen(["a", "b"])
        assert hur_decrypt(group, stored[0], key, keks["u1"], headers,
                           bsw) == message

    def test_reencrypt_requires_group_keys(self, group, setup):
        bsw, hur, _ = setup
        ciphertext = bsw.encrypt(group.random_gt(), "a AND zzz")
        with pytest.raises(SchemeError):
            hur.reencrypt(ciphertext)

    def test_missing_header_rejected(self, group, setup):
        bsw, hur, keks = setup
        stored = [hur.reencrypt(bsw.encrypt(group.random_gt(), "a AND b"))]
        key = bsw.keygen(["a", "b"])
        with pytest.raises(SchemeError, match="no header"):
            hur_decrypt(group, stored[0], key, keks["u1"],
                        {"a": hur.header("a")}, bsw)


class TestRevocation:
    def test_revoked_user_blocked(self, group, setup):
        bsw, hur, keks = setup
        message = group.random_gt()
        stored = [hur.reencrypt(bsw.encrypt(message, "a AND b"))]
        headers = {attr: hur.header(attr) for attr in ("a", "b")}
        key = bsw.keygen(["a", "b"])
        headers["a"] = hur.revoke("u1", "a", stored)
        with pytest.raises(AuthorizationError):
            hur_decrypt(group, stored[0], key, keks["u1"], headers, bsw)

    def test_survivors_keep_access(self, group, setup):
        bsw, hur, keks = setup
        message = group.random_gt()
        stored = [hur.reencrypt(bsw.encrypt(message, "a AND b"))]
        headers = {attr: hur.header(attr) for attr in ("a", "b")}
        headers["a"] = hur.revoke("u1", "a", stored)
        key = bsw.keygen(["a", "b"])
        assert hur_decrypt(group, stored[0], key, keks["u2"], headers,
                           bsw) == message

    def test_stale_header_version_detected(self, group, setup):
        bsw, hur, keks = setup
        stored = [hur.reencrypt(bsw.encrypt(group.random_gt(), "a AND b"))]
        old_headers = {attr: hur.header(attr) for attr in ("a", "b")}
        hur.revoke("u1", "a", stored)
        key = bsw.keygen(["a", "b"])
        with pytest.raises(SchemeError, match="version"):
            hur_decrypt(group, stored[0], key, keks["u2"], old_headers, bsw)

    def test_revoking_nonmember_rejected(self, setup):
        _, hur, _ = setup
        hur.register_user("u4")
        with pytest.raises(SchemeError):
            hur.revoke("u4", "a", [])

    def test_unaffected_ciphertexts_untouched(self, group, setup):
        bsw, hur, keks = setup
        message = group.random_gt()
        stored = [hur.reencrypt(bsw.encrypt(message, "b"))]
        before = stored[0]
        hur.revoke("u1", "a", stored)
        assert stored[0] is before  # attribute 'a' not in this ciphertext

    def test_multiple_revocations(self, group, setup):
        bsw, hur, keks = setup
        message = group.random_gt()
        stored = [hur.reencrypt(bsw.encrypt(message, "a"))]
        headers = {"a": hur.revoke("u1", "a", stored)}
        headers = {"a": hur.revoke("u2", "a", stored)}
        key = bsw.keygen(["a"])
        assert hur_decrypt(group, stored[0], key, keks["u3"], headers,
                           bsw) == message
        with pytest.raises(AuthorizationError):
            hur_decrypt(group, stored[0], key, keks["u2"], headers, bsw)

"""Cross-scheme evaluation matrix: all four implemented ABE designs.

Not a paper table; a harness-level summary that times Encrypt/Decrypt
and reports ciphertext sizes for the reproduced scheme and all three
comparison schemes on one logical workload (one attribute from each of
two authority domains, ANDed). Complements Table I with measured
numbers.
"""

import pytest

from benchmarks.conftest import PRESET, run_once
from repro.baselines import bsw, chase, lewko
from repro.core.authority import AttributeAuthority
from repro.core.ca import CertificateAuthority
from repro.core.decrypt import decrypt as ours_decrypt
from repro.core.owner import DataOwner
from repro.pairing.group import PairingGroup
from repro.system.sizes import measure


@pytest.fixture(scope="module")
def group():
    return PairingGroup(PRESET, seed=3407)


@pytest.fixture(scope="module")
def ours_world(group):
    ca = CertificateAuthority(group)
    ca.register_authority("h")
    ca.register_authority("t")
    h = AttributeAuthority(group, "h", ["doctor"])
    t = AttributeAuthority(group, "t", ["researcher"])
    owner = DataOwner(group, "owner")
    for authority in (h, t):
        authority.register_owner(owner.secret_key)
        owner.learn_authority(
            authority.authority_public_key(),
            authority.public_attribute_keys(),
        )
    public = ca.register_user("u")
    keys = {
        "h": h.keygen(public, ["doctor"], "owner"),
        "t": t.keygen(public, ["researcher"], "owner"),
    }
    message = group.random_gt()
    return owner, public, keys, message


def test_ours(benchmark, group, ours_world):
    benchmark.group = "baseline matrix"
    owner, public, keys, message = ours_world
    ciphertext = owner.encrypt(message, "h:doctor AND t:researcher")
    recovered = run_once(
        benchmark, ours_decrypt, group, ciphertext, public, keys
    )
    assert recovered == message
    print(f"\n[matrix] ours: CT {ciphertext.element_size_bytes(group)} B")


def test_lewko(benchmark, group):
    benchmark.group = "baseline matrix"
    h = lewko.LewkoAuthority(group, "h", ["doctor"])
    t = lewko.LewkoAuthority(group, "t", ["researcher"])
    public = {**h.public_key().elements, **t.public_key().elements}
    keys = {
        "h": h.keygen("u", ["doctor"]),
        "t": t.keygen("u", ["researcher"]),
    }
    message = group.random_gt()
    ciphertext = lewko.encrypt(
        group, message, "h:doctor AND t:researcher", public
    )
    recovered = run_once(
        benchmark, lewko.decrypt, group, ciphertext, "u", keys
    )
    assert recovered == message
    print(f"\n[matrix] lewko: CT {ciphertext.element_size_bytes(group)} B")


def test_chase(benchmark, group):
    benchmark.group = "baseline matrix"
    central = chase.ChaseCentralAuthority(group)
    h = chase.ChaseAuthority(group, "h", ["doctor"], 1, b"h")
    t = chase.ChaseAuthority(group, "t", ["researcher"], 1, b"t")
    central.register_authority(h)
    central.register_authority(t)
    authorities = {"h": h, "t": t, "__central__": central}
    keys = {
        "h": h.keygen("u", ["doctor"]),
        "t": t.keygen("u", ["researcher"]),
    }
    message = group.random_gt()
    ciphertext = chase.encrypt(
        group, message, {"h": ["doctor"], "t": ["researcher"]}, authorities
    )
    recovered = run_once(
        benchmark, chase.decrypt, group, ciphertext,
        central.central_key("u"), keys,
    )
    assert recovered == message
    size = group.gt_bytes + group.g1_bytes * (
        1 + len(ciphertext.per_attribute)
    )
    print(f"\n[matrix] chase: CT {size} B (+ central authority trust)")


def test_bsw(benchmark, group):
    benchmark.group = "baseline matrix"
    scheme = bsw.BswScheme(group)
    key = scheme.keygen(["h:doctor", "t:researcher"])
    message = group.random_gt()
    ciphertext = scheme.encrypt(message, "h:doctor AND t:researcher")
    recovered = run_once(benchmark, scheme.decrypt, ciphertext, key)
    assert recovered == message
    print(f"\n[matrix] bsw: CT {measure(ciphertext, group)} B "
          f"(single authority)")

"""Read-only *recovery*: the way back from degraded to writable.

Degradation (an ``OSError`` on the write path flips the server
read-only instead of corrupting state) is covered in test_faults; these
tests cover the other half of the contract: a degraded server probes
the store's write path and recovers by itself once the fault clears,
the probe is rate-limited so a refused-write stampede cannot become a
probe stampede, the recovered retry applies its mutation exactly once,
and *configured* read-only — policy, not damage — never self-recovers.
"""

import pytest

from repro.errors import UnavailableError
from repro.service.client import BaseClient
from repro.service.protocol import MessageType

from .conftest import run, start_service
from .test_faults import make_connection, quick_retry


def _fail_writes(store, times):
    """Make the next ``times`` store.put calls die like a full disk."""
    original = store.put
    state = {"left": times, "applied": 0}

    def failing_put(record, **kwargs):
        if state["left"] > 0:
            state["left"] -= 1
            raise OSError(28, "No space left on device")
        state["applied"] += 1
        return original(record, **kwargs)

    store.put = failing_put
    return state


async def _store_attempt(client, record):
    await client.connection.request(MessageType.STORE_RECORD,
                                    record.to_bytes(),
                                    expect=MessageType.OK)


def test_degraded_server_recovers_and_applies_the_retry_once(
        group, store_root, scenario):
    async def scenario_run():
        service = await start_service(group, store_root,
                                      probe_interval=0.0)
        connection = make_connection(group, service.host, service.port,
                                     role="owner", name="owner:alice",
                                     retry=quick_retry())
        client = BaseClient(await connection.connect())
        state = _fail_writes(service.store, times=1)
        record = scenario.make_record("record")
        try:
            # Attempt 1 dies on the "disk", degrading the server; the
            # retry probes the now-healthy write path, recovers, and
            # applies the SAME idempotency-keyed mutation exactly once.
            await _store_attempt(client, record)
            assert state["applied"] == 1
            assert not service.read_only
            assert service.degraded_reason is None
            health = await client.health()
            assert health["status"] == "ok" and not health["degraded"]
            assert connection.retry_log.events("retry")
            fetched = await client.fetch_record("record")
            assert fetched.to_bytes() == record.to_bytes()
        finally:
            await client.close()
            await service.stop()

    run(scenario_run())


def test_probe_is_rate_limited_while_the_disk_stays_broken(
        group, store_root, scenario):
    async def scenario_run():
        service = await start_service(group, store_root,
                                      probe_interval=60.0)
        connection = make_connection(group, service.host, service.port,
                                     role="owner", name="owner:alice")
        client = BaseClient(await connection.connect())
        _fail_writes(service.store, times=1)
        probes = {"count": 0}
        original_probe = service.store.probe_writable

        def counting_probe():
            probes["count"] += 1
            return False  # the disk is still broken

        service.store.probe_writable = counting_probe
        record = scenario.make_record("record")
        try:
            with pytest.raises(UnavailableError):
                await _store_attempt(client, record)  # degrades
            assert service.read_only and service.degraded_reason
            for _ in range(5):
                with pytest.raises(UnavailableError):
                    await _store_attempt(client, record)
            # Five refused writes, ONE probe: the 60 s interval gates
            # the rest. Reads keep serving throughout.
            assert probes["count"] == 1
            assert (await client.health())["degraded"]
            assert await client.list_records() == []
            # The fault clears; the interval is up to the operator.
            service.store.probe_writable = original_probe
            service.probe_interval = 0.0
            await _store_attempt(client, record)
            assert not service.read_only
            assert await client.list_records() == ["record"]
        finally:
            await client.close()
            await service.stop()

    run(scenario_run())


def test_configured_read_only_is_policy_and_never_recovers(
        group, store_root, scenario):
    async def scenario_run():
        service = await start_service(group, store_root,
                                      read_only=True,
                                      probe_interval=0.0)

        def forbidden_probe():  # policy must never even probe
            raise AssertionError("configured read-only probed the disk")

        service.store.probe_writable = forbidden_probe
        connection = make_connection(group, service.host, service.port,
                                     role="owner", name="owner:alice")
        client = BaseClient(await connection.connect())
        record = scenario.make_record("record")
        try:
            for _ in range(3):
                with pytest.raises(UnavailableError):
                    await _store_attempt(client, record)
            health = await client.health()
            assert health["status"] == "read-only"
            assert not health["degraded"]
        finally:
            await client.close()
            await service.stop()

    run(scenario_run())

"""Abstract syntax trees for monotone access policies.

A policy is a monotone boolean formula over attribute names, with AND,
OR and k-of-n threshold gates. Attribute names are strings; in the
multi-authority setting they carry their authority identifier as a
prefix (``"aid:attribute"``, see :mod:`repro.core.attributes`), which is
what makes same-named attributes from different authorities
distinguishable — the paper's "with the AID, all the attributes are
distinguishable even though some attributes present the same meaning".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import PolicyError

# Expanding a k-of-n threshold gate into OR-of-ANDs produces C(n, k)
# branches; beyond this bound the expansion is refused as pathological.
MAX_THRESHOLD_EXPANSION = 4096


class PolicyNode:
    """Base class for policy AST nodes."""

    def attributes(self):
        """All attribute names at the leaves (with duplicates, DFS order)."""
        raise NotImplementedError

    def evaluate(self, attribute_set) -> bool:
        """Truth value of the formula for a given attribute set."""
        raise NotImplementedError

    def expand_thresholds(self) -> "PolicyNode":
        """An equivalent AND/OR-only formula (thresholds expanded)."""
        raise NotImplementedError

    def __str__(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Attribute(PolicyNode):
    """A leaf: satisfied iff the user holds this attribute."""

    name: str

    def __post_init__(self):
        if not self.name or any(ch.isspace() for ch in self.name):
            raise PolicyError(f"invalid attribute name {self.name!r}")

    def attributes(self):
        yield self.name

    def evaluate(self, attribute_set) -> bool:
        return self.name in attribute_set

    def expand_thresholds(self) -> PolicyNode:
        return self

    def __str__(self) -> str:
        return self.name


def _check_children(children, gate: str):
    children = tuple(children)
    if len(children) < 1:
        raise PolicyError(f"{gate} gate needs at least one child")
    for child in children:
        if not isinstance(child, PolicyNode):
            raise PolicyError(f"{gate} child {child!r} is not a policy node")
    return children


@dataclass(frozen=True, init=False)
class And(PolicyNode):
    """Satisfied iff every child is satisfied."""

    children: tuple

    def __init__(self, *children):
        if len(children) == 1 and isinstance(children[0], (list, tuple)):
            children = tuple(children[0])
        object.__setattr__(self, "children", _check_children(children, "AND"))

    def attributes(self):
        for child in self.children:
            yield from child.attributes()

    def evaluate(self, attribute_set) -> bool:
        return all(child.evaluate(attribute_set) for child in self.children)

    def expand_thresholds(self) -> PolicyNode:
        expanded = [child.expand_thresholds() for child in self.children]
        return expanded[0] if len(expanded) == 1 else And(expanded)

    def __str__(self) -> str:
        return "(" + " AND ".join(str(child) for child in self.children) + ")"


@dataclass(frozen=True, init=False)
class Or(PolicyNode):
    """Satisfied iff at least one child is satisfied."""

    children: tuple

    def __init__(self, *children):
        if len(children) == 1 and isinstance(children[0], (list, tuple)):
            children = tuple(children[0])
        object.__setattr__(self, "children", _check_children(children, "OR"))

    def attributes(self):
        for child in self.children:
            yield from child.attributes()

    def evaluate(self, attribute_set) -> bool:
        return any(child.evaluate(attribute_set) for child in self.children)

    def expand_thresholds(self) -> PolicyNode:
        expanded = [child.expand_thresholds() for child in self.children]
        return expanded[0] if len(expanded) == 1 else Or(expanded)

    def __str__(self) -> str:
        return "(" + " OR ".join(str(child) for child in self.children) + ")"


@dataclass(frozen=True, init=False)
class Threshold(PolicyNode):
    """Satisfied iff at least ``k`` of the children are satisfied."""

    k: int
    children: tuple

    def __init__(self, k: int, children):
        children = _check_children(children, "threshold")
        if not 1 <= k <= len(children):
            raise PolicyError(
                f"threshold {k} out of range for {len(children)} children"
            )
        object.__setattr__(self, "k", k)
        object.__setattr__(self, "children", children)

    def attributes(self):
        for child in self.children:
            yield from child.attributes()

    def evaluate(self, attribute_set) -> bool:
        satisfied = sum(child.evaluate(attribute_set) for child in self.children)
        return satisfied >= self.k

    def expand_thresholds(self) -> PolicyNode:
        expanded = [child.expand_thresholds() for child in self.children]
        if self.k == 1:
            return Or(expanded) if len(expanded) > 1 else expanded[0]
        if self.k == len(expanded):
            return And(expanded) if len(expanded) > 1 else expanded[0]
        n_branches = _binomial(len(expanded), self.k)
        if n_branches > MAX_THRESHOLD_EXPANSION:
            raise PolicyError(
                f"{self.k}-of-{len(expanded)} expands to {n_branches} branches "
                f"(limit {MAX_THRESHOLD_EXPANSION}); restructure the policy"
            )
        branches = [
            And(list(combo))
            for combo in itertools.combinations(expanded, self.k)
        ]
        return Or(branches)

    def __str__(self) -> str:
        inner = ", ".join(str(child) for child in self.children)
        return f"{self.k} of ({inner})"


def _binomial(n: int, k: int) -> int:
    result = 1
    for i in range(min(k, n - k)):
        result = result * (n - i) // (i + 1)
    return result

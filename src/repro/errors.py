"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class. Subclasses partition errors by the
subsystem that raised them: mathematical preconditions, policy language
problems, scheme-level protocol violations, and the simulated storage
system.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class MathError(ReproError):
    """A mathematical precondition was violated (e.g. non-invertible element)."""


class ParameterError(ReproError):
    """Invalid or inconsistent pairing/curve parameters."""


class PolicyError(ReproError):
    """The access-policy string or structure is malformed."""


class PolicyNotSatisfiedError(ReproError):
    """An attribute set does not satisfy the ciphertext's access structure."""


class SchemeError(ReproError):
    """A protocol step was invoked with inconsistent keys or state."""


class RevocationError(SchemeError):
    """Attribute revocation was requested in an inconsistent state."""


class AuthorizationError(ReproError):
    """An entity attempted an operation it is not authorized to perform."""


class IntegrityError(ReproError):
    """Authenticated decryption failed: the ciphertext was tampered with."""


class StorageError(ReproError):
    """The cloud server was asked for a record it does not hold."""


class UnavailableError(StorageError):
    """The server cannot apply writes right now (read-only mode, disk
    failure); the request is safe to retry later."""


class ProtocolError(ReproError):
    """A wire-protocol frame was malformed, unexpected, or over-sized."""


class TransportError(ProtocolError):
    """The connection failed mid-exchange (dropped, timed out, or the
    reply frame was garbled) before a usable reply arrived; the request
    may be retried on a fresh connection."""


class RetryExhaustedError(TransportError):
    """The retry layer gave up on a request — its total wall-clock
    deadline ran out while the failure was still retryable.

    Carries the ``attempts`` trace (the :class:`repro.service.retry.
    RetryLog` entries for the exhausted request) so callers and
    adversarial harnesses can see exactly what was tried before the
    budget died. Subclasses :class:`TransportError` on purpose: to a
    *higher* layer (e.g. the cluster client's failover reads) an
    exhausted node is indistinguishable from an unreachable one and
    should be skipped, not fatal."""

    def __init__(self, message: str, attempts: list = None):
        super().__init__(message)
        self.attempts = list(attempts or [])

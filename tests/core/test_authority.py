"""Tests for AttributeAuthority: setup, key material, KeyGen, ReKey."""

import pytest

from repro.core.authority import AttributeAuthority
from repro.errors import RevocationError, SchemeError


class TestSetup:
    def test_attributes_and_qualification(self, deployment):
        hospital = deployment.hospital
        assert "doctor" in hospital.attributes
        assert hospital.qualified("doctor") == "hospital:doctor"
        assert "hospital:nurse" in hospital.qualified_attributes()

    def test_unknown_attribute_rejected(self, deployment):
        with pytest.raises(SchemeError):
            deployment.hospital.qualified("pilot")

    def test_needs_attributes(self, group):
        with pytest.raises(SchemeError):
            AttributeAuthority(group, "empty", [])

    def test_version_key(self, deployment):
        vk = deployment.hospital.version_key()
        assert vk.aid == "hospital"
        assert vk.version == 0
        assert 1 <= vk.alpha < deployment.scheme.group.order


class TestPublishedKeys:
    def test_authority_public_key_consistent_with_version_key(self, deployment):
        group = deployment.scheme.group
        hospital = deployment.hospital
        apk = hospital.authority_public_key()
        assert apk.value == group.gt ** hospital.version_key().alpha

    def test_public_attribute_keys_structure(self, deployment):
        group = deployment.scheme.group
        hospital = deployment.hospital
        pak = hospital.public_attribute_keys()
        alpha = hospital.version_key().alpha
        for name, element in pak.elements.items():
            expected = group.g ** (alpha * group.hash_to_scalar(name))
            assert element == expected
        assert len(pak) == len(hospital.attributes)
        assert "hospital:doctor" in pak


class TestKeyGen:
    def test_key_algebra(self, deployment):
        """Verify K = g^{(u·r + α)/β} via the pairing identity
        e(K, g^β) = e(PK_UID, g)^r · e(g,g)^α."""
        group = deployment.scheme.group
        hospital = deployment.hospital
        owner = deployment.owner
        pk, keys = deployment.add_user("u1", hospital_attrs=["doctor"])
        sk = keys["hospital"]
        beta = owner.master_key.beta
        r_exp = owner.master_key.r_exp
        alpha = hospital.version_key().alpha
        lhs = group.pair(sk.k, group.g ** beta)
        rhs = (group.pair(pk.element, group.g) ** r_exp) * (group.gt ** alpha)
        assert lhs == rhs

    def test_attribute_key_algebra(self, deployment):
        group = deployment.scheme.group
        hospital = deployment.hospital
        pk, keys = deployment.add_user("u2", hospital_attrs=["doctor"])
        sk = keys["hospital"]
        alpha = hospital.version_key().alpha
        h = group.hash_to_scalar("hospital:doctor")
        assert sk.attribute_keys["hospital:doctor"] == pk.element ** (alpha * h)

    def test_unknown_owner_rejected(self, deployment):
        pk, _ = deployment.add_user("u3", hospital_attrs=["nurse"])
        with pytest.raises(SchemeError):
            deployment.hospital.keygen(pk, ["nurse"], "stranger")

    def test_unknown_attribute_rejected(self, deployment):
        pk, _ = deployment.add_user("u4", hospital_attrs=["nurse"])
        with pytest.raises(SchemeError):
            deployment.hospital.keygen(pk, ["pilot"], "alice")

    def test_registry_tracks_issuance(self, deployment):
        deployment.add_user("u5", hospital_attrs=["doctor", "nurse"])
        issued = deployment.hospital.issued_attributes("u5", "alice")
        assert issued == {"hospital:doctor", "hospital:nurse"}

    def test_key_carries_metadata(self, deployment):
        _, keys = deployment.add_user("u6", trial_attrs=["pi"])
        sk = keys["trial"]
        assert (sk.uid, sk.aid, sk.owner_id, sk.version) == (
            "u6", "trial", "alice", 0
        )
        assert sk.attributes == frozenset({"trial:pi"})


class TestRekey:
    def test_bumps_version_and_alpha(self, deployment):
        hospital = deployment.hospital
        deployment.add_user("victim", hospital_attrs=["doctor", "nurse"])
        old_alpha = hospital.version_key().alpha
        new_keys, update_key = hospital.rekey("victim", ["doctor"])
        assert hospital.version == 1
        assert hospital.version_key().alpha != old_alpha
        assert update_key.from_version == 0 and update_key.to_version == 1

    def test_revoked_user_gets_reduced_key(self, deployment):
        hospital = deployment.hospital
        deployment.add_user("victim", hospital_attrs=["doctor", "nurse"])
        new_keys, _ = hospital.rekey("victim", ["doctor"])
        reduced = new_keys["alice"]
        assert reduced.attributes == frozenset({"hospital:nurse"})
        assert reduced.version == 1

    def test_full_revocation_drops_registry(self, deployment):
        hospital = deployment.hospital
        deployment.add_user("victim", hospital_attrs=["doctor"])
        new_keys, _ = hospital.rekey("victim", ["doctor"])
        assert new_keys == {}
        assert hospital.issued_attributes("victim", "alice") == frozenset()

    def test_uk2_is_alpha_ratio(self, deployment):
        group = deployment.scheme.group
        hospital = deployment.hospital
        deployment.add_user("victim", hospital_attrs=["doctor"])
        old_alpha = hospital.version_key().alpha
        _, update_key = hospital.rekey("victim", ["doctor"])
        new_alpha = hospital.version_key().alpha
        assert update_key.uk2 * old_alpha % group.order == new_alpha

    def test_uk1_per_owner(self, deployment):
        hospital = deployment.hospital
        deployment.add_user("victim", hospital_attrs=["doctor"])
        _, update_key = hospital.rekey("victim", ["doctor"])
        assert set(update_key.uk1) == {"alice"}

    def test_unknown_user_rejected(self, deployment):
        with pytest.raises(RevocationError):
            deployment.hospital.rekey("ghost", ["doctor"])

    def test_unknown_attribute_rejected(self, deployment):
        deployment.add_user("victim", hospital_attrs=["doctor"])
        with pytest.raises(RevocationError):
            deployment.hospital.rekey("victim", ["pilot"])

"""The bounded parse / LSSS memo caches and their counters."""

import pytest

from repro.policy import lsss as lsss_module
from repro.policy import parser as parser_module
from repro.policy.ast import Attribute
from repro.policy.lsss import (
    clear_lsss_cache,
    lsss_cache_stats,
    lsss_from_policy,
)
from repro.policy.parser import (
    MAX_PARSE_CACHE,
    clear_parse_cache,
    parse,
    parse_cache_stats,
)
from repro.errors import PolicyError
from repro.system.meter import Meter


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_parse_cache()
    clear_lsss_cache()
    yield
    clear_parse_cache()
    clear_lsss_cache()


class TestParseCache:
    def test_hit_returns_same_ast(self):
        first = parse("a AND (b OR c)")
        second = parse("a AND (b OR c)")
        assert second is first
        assert parse_cache_stats() == {"hits": 1, "misses": 1}

    def test_ast_passthrough_skips_cache(self):
        node = Attribute("a")
        assert parse(node) is node
        assert parse_cache_stats() == {"hits": 0, "misses": 0}

    def test_failures_not_cached(self):
        for _ in range(2):
            with pytest.raises(PolicyError):
                parse("a AND")
        assert parse_cache_stats()["misses"] == 2
        assert len(parser_module._parse_cache) == 0

    def test_bounded_eviction(self):
        for index in range(MAX_PARSE_CACHE + 10):
            parse(f"attr{index}")
        assert len(parser_module._parse_cache) == MAX_PARSE_CACHE
        # Oldest-first: the earliest entries were evicted.
        assert "attr0" not in parser_module._parse_cache
        assert f"attr{MAX_PARSE_CACHE + 9}" in parser_module._parse_cache

    def test_clear_resets_counters(self):
        parse("a")
        parse("a")
        clear_parse_cache()
        assert parse_cache_stats() == {"hits": 0, "misses": 0}


class TestLsssCache:
    def test_hit_returns_same_matrix(self):
        first = lsss_from_policy("a AND b")
        second = lsss_from_policy("a AND b")
        assert second is first
        assert lsss_cache_stats() == {"hits": 1, "misses": 1}

    def test_threshold_method_keys_separately(self):
        expand = lsss_from_policy("2 of (a, b, c)", "expand")
        insert = lsss_from_policy("2 of (a, b, c)", "insert")
        assert expand is not insert
        assert lsss_cache_stats() == {"hits": 0, "misses": 2}

    def test_ast_input_not_cached(self):
        node = Attribute("a")
        lsss_from_policy(node)
        assert lsss_cache_stats() == {"hits": 0, "misses": 0}

    def test_meter_counters_bumped(self, group):
        meter = Meter(group)
        lsss_from_policy("a AND b", meter=meter)
        lsss_from_policy("a AND b", meter=meter)
        lsss_from_policy("a AND b", meter=meter)
        assert meter.counter("lsss-cache-miss") == 1
        assert meter.counter("lsss-cache-hit") == 2

    def test_bounded_eviction(self):
        for index in range(lsss_module.MAX_LSSS_CACHE + 5):
            lsss_from_policy(f"attr{index}")
        assert len(lsss_module._lsss_cache) == lsss_module.MAX_LSSS_CACHE

"""HKDF-style key derivation (RFC 5869 shape, SHA-256 based).

Used to (a) derive independent encryption/MAC keys for the data
encapsulation mechanism from a single content key, and (b) turn a GT
session element recovered by CP-ABE decryption into a symmetric content
key (the standard KEM/DEM hybrid the paper sketches in Section V-A).
"""

from __future__ import annotations

import hashlib
import hmac

_HASH_LEN = 32


def hkdf_extract(salt: bytes, input_key_material: bytes) -> bytes:
    """Extract step: PRK = HMAC-SHA256(salt, IKM)."""
    if not salt:
        salt = b"\x00" * _HASH_LEN
    return hmac.new(salt, input_key_material, hashlib.sha256).digest()


def hkdf_expand(pseudo_random_key: bytes, info: bytes, length: int) -> bytes:
    """Expand step: OKM of ``length`` bytes bound to ``info``."""
    if length > 255 * _HASH_LEN:
        raise ValueError("HKDF-Expand output too long")
    output = b""
    block = b""
    counter = 1
    while len(output) < length:
        block = hmac.new(
            pseudo_random_key, block + info + bytes([counter]), hashlib.sha256
        ).digest()
        output += block
        counter += 1
    return output[:length]


def hkdf(input_key_material: bytes, info: bytes, length: int,
         salt: bytes = b"") -> bytes:
    """One-call extract-then-expand."""
    return hkdf_expand(hkdf_extract(salt, input_key_material), info, length)


def derive_content_key(session_bytes: bytes, context: bytes = b"") -> bytes:
    """Map a serialized GT session element to a 32-byte content key.

    The owner encrypts a random GT element under the ABE access structure;
    both owner and authorized users derive the symmetric content key from
    it with this function, so the ABE layer never has to embed raw key
    bytes in a group element.
    """
    return hkdf(session_bytes, b"repro.content-key" + context, 32)

"""Figure 4(b): decryption time vs attributes the user holds per authority.

Paper setup: the number of authorities is fixed at 5; the x-axis sweeps
the per-authority attribute count. Expected: linear in used rows, ours
slightly above Lewko's.
"""

import pytest

from repro.fastpath import DecryptionSession

from benchmarks.conftest import (
    ATTRIBUTE_SWEEP,
    FIXED_AUTHORITIES,
    lewko_ciphertext,
    lewko_workload,
    ours_ciphertext,
    ours_workload,
    run_once,
)


@pytest.mark.parametrize("attrs", ATTRIBUTE_SWEEP)
def test_ours_decrypt(benchmark, attrs):
    workload = ours_workload(FIXED_AUTHORITIES, attrs)
    ciphertext = ours_ciphertext(FIXED_AUTHORITIES, attrs)
    benchmark.group = f"fig4b decrypt attrs/AA={attrs}"
    message = run_once(benchmark, workload.decrypt, ciphertext)
    assert message == workload.message


@pytest.mark.parametrize("attrs", ATTRIBUTE_SWEEP)
def test_lewko_decrypt(benchmark, attrs):
    workload = lewko_workload(FIXED_AUTHORITIES, attrs)
    ciphertext = lewko_ciphertext(FIXED_AUTHORITIES, attrs)
    benchmark.group = f"fig4b decrypt attrs/AA={attrs}"
    message = run_once(benchmark, workload.decrypt, ciphertext)
    assert message == workload.message


# Runs LAST in this file so its prepared-pairing chains never leak into
# the cold series above (pytest preserves definition order).
@pytest.mark.parametrize("attrs", ATTRIBUTE_SWEEP)
def test_ours_session_decrypt(benchmark, attrs):
    """The amortized read path: per-ciphertext cost once a
    :class:`DecryptionSession` is warm (setup excluded — it is paid
    once per (user, policy) and amortizes across the record class)."""
    workload = ours_workload(FIXED_AUTHORITIES, attrs)
    ciphertext = ours_ciphertext(FIXED_AUTHORITIES, attrs)
    session = DecryptionSession(
        workload.group, ciphertext, workload.user_public_key,
        workload.secret_keys,
    )
    benchmark.group = f"fig4b decrypt attrs/AA={attrs}"
    message = run_once(benchmark, session.decrypt, ciphertext)
    assert message == workload.message

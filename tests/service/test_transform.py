"""Server-side transform offload over real localhost sockets.

``PUT_TRANSFORM_KEY`` / ``TRANSFORM_FETCH`` end to end: registration,
pairing-free client reads, and the revocation discipline — both
re-encryption paths (per-ciphertext ``REENCRYPT`` and the bulk sweep)
must evict every registered transform key the epoch roll outran, and a
replayed stale token must be version-rejected with a typed error, never
served as a garbage partial.
"""

import pytest

from repro.core.outsourcing import make_transform_key
from repro.core.revocation import rekey_standard
from repro.errors import AuthorizationError, SchemeError
from repro.pairing.group import PairingGroup
from repro.service.client import OwnerClient, ServiceConnection, UserClient

from .conftest import run, start_service

PLAINTEXT = b"transformed body \x00\xff"
POLICY = "hospital:doctor OR hospital:nurse"


async def connect(group, service, role, name) -> ServiceConnection:
    conn = ServiceConnection(
        group, service.host, service.port, role=role, name=name
    )
    return await conn.connect()


async def make_user(scenario, service, uid, *, client_group=None):
    """A UserClient on its own group, so client-side op counters never
    absorb the in-process server's pairing work."""
    if client_group is None:
        client_group = PairingGroup(
            scenario.group.params, seed=f"client:{uid}"
        )
    user = UserClient(
        await connect(client_group, service, "user", f"user:{uid}"), uid
    )
    user.receive_public_key(getattr(scenario, f"{uid}_pk"))
    user.receive_secret_key(getattr(scenario, f"{uid}_sk"))
    return user


async def upload(scenario, service) -> OwnerClient:
    owner = OwnerClient(
        await connect(scenario.group, service, "owner", "owner:alice"),
        scenario.owner_core,
    )
    await owner.upload("record", {"note": (PLAINTEXT, POLICY)})
    return owner


def test_outsourced_read_is_pairing_free(group, scenario, store_root):
    async def body():
        service = await start_service(group, store_root)
        try:
            owner = await upload(scenario, service)
            bob = await make_user(scenario, service, "bob")
            await bob.register_transform_key("alice")
            before = bob.group.op_counts()["pairings"]
            got = await bob.read_outsourced("record", "note")
            client_pairings = bob.group.op_counts()["pairings"] - before
            stats = await bob.stats()
            await owner.close()
            await bob.close()
            return got, client_pairings, stats
        finally:
            await service.stop()

    got, client_pairings, stats = run(body())
    assert got == PLAINTEXT
    assert client_pairings == 0
    assert stats["transform_keys"] == 1
    assert stats["counters"]["transform.cache.hit"] == 1


def test_fetch_without_registration_fails(group, scenario, store_root):
    async def body():
        service = await start_service(group, store_root)
        try:
            owner = await upload(scenario, service)
            bob = await make_user(scenario, service, "bob")
            with pytest.raises(AuthorizationError, match="transform key"):
                await bob.read_outsourced("record", "note")
            await owner.close()
            await bob.close()
        finally:
            await service.stop()

    run(body())


def _revoke_bob(scenario):
    """ReKey bob out of 'doctor'; carol rolls forward."""
    result = rekey_standard(scenario.aa, "bob", ["doctor"])
    update_key = result.update_key
    from repro.core.authority import apply_update_key

    scenario.carol_sk = apply_update_key(scenario.carol_sk, update_key)
    return update_key


@pytest.mark.parametrize("via_sweep", [False, True],
                         ids=["reencrypt", "sweep"])
def test_epoch_roll_evicts_transform_keys(group, scenario, store_root,
                                          via_sweep):
    async def body():
        service = await start_service(group, store_root)
        try:
            owner = await upload(scenario, service)
            bob = await make_user(scenario, service, "bob")
            carol = await make_user(scenario, service, "carol")
            # Keep bob's pre-revocation token for the replay below.
            stale_token, _ = make_transform_key(
                bob.group, scenario.bob_pk, {"hospital": scenario.bob_sk}
            )
            await bob.put_transform_key(stale_token)
            await carol.register_transform_key("alice")
            assert (await bob.stats())["transform_keys"] == 2

            update_key = _revoke_bob(scenario)
            carol.apply_update_key(update_key)
            if via_sweep:
                await owner.sweep_revocation(update_key)
            else:
                await owner.push_revocation_updates(update_key)

            stats = await bob.stats()
            # Conservative eviction: survivors' tokens embed the old
            # version too, so the roll drops every registered token.
            assert stats["transform_keys"] == 0
            assert stats["counters"]["transform.cache.evict"] >= 2
            with pytest.raises(AuthorizationError, match="transform key"):
                await bob.read_outsourced("record", "note")

            # Replaying the stale token re-registers it (the UID still
            # checks out), but the fetch is version-REJECTED server-side
            # before any pairing — a typed SchemeError, never a garbage
            # partial that dies at the AEAD layer.
            await bob.put_transform_key(stale_token)
            with pytest.raises(SchemeError, match="version"):
                await bob.read_outsourced("record", "note")

            # The survivor re-registers over rolled keys and reads on.
            await carol.register_transform_key("alice")
            assert await carol.read_outsourced("record", "note") \
                == PLAINTEXT
            await owner.close()
            await bob.close()
            await carol.close()
        finally:
            await service.stop()

    run(body())

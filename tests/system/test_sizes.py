"""Tests for the payload size model."""

import pytest

from repro.baselines import lewko
from repro.baselines.bsw import BswScheme
from repro.core.scheme import MultiAuthorityABE
from repro.ec.params import TOY80
from repro.system.sizes import UnmeasurablePayload, measure


@pytest.fixture(scope="module")
def deployment():
    scheme = MultiAuthorityABE(TOY80, seed=777)
    hospital = scheme.setup_authority("hospital", ["doctor", "nurse"])
    owner = scheme.setup_owner("alice", [hospital])
    pk = scheme.register_user("bob")
    sk = hospital.keygen(pk, ["doctor", "nurse"], "alice")
    ct = owner.encrypt(
        scheme.random_message(), "hospital:doctor AND hospital:nurse"
    )
    return scheme, hospital, owner, pk, sk, ct


class TestPrimitives:
    def test_scalars_and_elements(self, group):
        assert measure(None, group) == 0
        assert measure(True, group) == 1
        assert measure(b"abcd", group) == 4
        assert measure("héllo", group) == len("héllo".encode("utf-8"))
        assert measure(42, group) == group.scalar_bytes
        assert measure(group.g, group) == group.g1_bytes
        assert measure(group.gt, group) == group.gt_bytes

    def test_containers_sum(self, group):
        assert measure([group.g, group.g], group) == 2 * group.g1_bytes
        assert measure({"k": group.g}, group) == 1 + group.g1_bytes

    def test_unknown_type_raises(self, group):
        with pytest.raises(UnmeasurablePayload):
            measure(object(), group)


class TestCorePayloads:
    def test_user_public_key(self, deployment):
        scheme, _, _, pk, _, _ = deployment
        g = scheme.group
        assert measure(pk, g) == g.g1_bytes + 3  # + len("bob")

    def test_user_secret_key(self, deployment):
        scheme, _, _, _, sk, _ = deployment
        g = scheme.group
        assert measure(sk, g) == (1 + 2) * g.g1_bytes  # K + 2 attribute keys

    def test_public_attribute_keys(self, deployment):
        scheme, hospital, _, _, _, _ = deployment
        g = scheme.group
        assert measure(hospital.public_attribute_keys(), g) == 2 * g.g1_bytes

    def test_authority_public_key(self, deployment):
        scheme, hospital, _, _, _, _ = deployment
        g = scheme.group
        assert measure(hospital.authority_public_key(), g) == g.gt_bytes

    def test_owner_secret_key(self, deployment):
        scheme, _, owner, _, _, _ = deployment
        g = scheme.group
        assert (
            measure(owner.secret_key, g)
            == g.g1_bytes + g.scalar_bytes + len("alice")
        )

    def test_version_key(self, deployment):
        scheme, hospital, _, _, _, _ = deployment
        g = scheme.group
        assert measure(hospital.version_key(), g) == g.scalar_bytes

    def test_ciphertext_matches_formula(self, deployment):
        scheme, _, _, _, _, ct = deployment
        g = scheme.group
        assert measure(ct, g) == g.gt_bytes + (ct.n_rows + 1) * g.g1_bytes

    def test_update_key_and_info(self, deployment):
        scheme, hospital, owner, _, _, ct = deployment
        g = scheme.group
        pk = scheme.register_user("victim")
        hospital.keygen(pk, ["doctor"], "alice")
        result = scheme.revoke("hospital", "victim", ["doctor"])
        assert (
            measure(result.update_key, g)
            == len(result.update_key.uk1) * g.g1_bytes + g.scalar_bytes
        )
        info = owner.update_info(ct, result.update_key)
        assert measure(info, g) == len(info.elements) * g.g1_bytes


class TestBaselinePayloads:
    def test_lewko_sizes(self, group):
        authority = lewko.LewkoAuthority(group, "uni", ["a", "b", "c"])
        public = authority.public_key()
        assert measure(public, group) == 3 * (group.gt_bytes + group.g1_bytes)
        key = authority.keygen("gid", ["a", "b"])
        assert measure(key, group) == 2 * group.g1_bytes
        ct = lewko.encrypt(
            group, group.random_gt(), "uni:a AND uni:b", public.elements
        )
        assert measure(ct, group) == ct.element_size_bytes(group)

    def test_bsw_sizes(self, group):
        bsw = BswScheme(group)
        key = bsw.keygen(["a", "b"])
        assert measure(key, group) == 5 * group.g1_bytes
        ct = bsw.encrypt(group.random_gt(), "a AND b")
        assert measure(ct, group) == group.gt_bytes + 5 * group.g1_bytes
        assert measure(bsw.public_key, group) == group.g1_bytes + group.gt_bytes

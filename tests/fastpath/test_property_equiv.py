"""Property: session ciphertexts are indistinguishable from cold ones.

Every policy shape the repo's policy tests exercise must decrypt the
same whether the ciphertext came from ``DataOwner.encrypt`` or from an
:class:`EncryptionSession` — through the standard Decrypt, the
prepared-pairing fast path, AND the outsourced transform/finalize
pipeline — and must serialize to the same size. TOY-80 covers the full
shape matrix; one SS512 case smoke-checks the paper-sized curve.
"""

import pytest

from repro.core.outsourcing import (
    make_transform_key,
    server_transform,
    user_finalize,
)
from repro.core.scheme import MultiAuthorityABE
from repro.ec.params import SS512, TOY80

# The shapes from tests/policy (AND/OR nesting, thresholds), qualified
# over the two-fabric authorities. Thresholds use the injectivity-
# preserving insertion construction, as the core scheme requires.
POLICY_SHAPES = [
    ("hospital:doctor", "expand"),
    ("hospital:doctor AND trial:researcher", "expand"),
    ("hospital:doctor OR hospital:nurse", "expand"),
    ("hospital:doctor AND (trial:researcher OR trial:pi)", "expand"),
    ("(hospital:doctor AND hospital:nurse) OR (trial:researcher AND trial:pi)",
     "expand"),
    ("hospital:doctor AND hospital:nurse AND hospital:surgeon", "expand"),
    ("2 of (hospital:doctor, hospital:nurse, trial:researcher)", "insert"),
    ("2 of (hospital:doctor AND trial:pi, hospital:nurse, trial:researcher)",
     "insert"),
]


def _assert_equivalent(fabric, policy, threshold_method):
    scheme, owner = fabric.scheme, fabric.owner
    message = scheme.random_message()
    cold = owner.encrypt(
        message, policy, ciphertext_id="eq-cold",
        threshold_method=threshold_method,
    )
    session = owner.session_for(policy, threshold_method=threshold_method)
    fast = session.encrypt(message, ciphertext_id="eq-sess")
    assert len(fast.to_bytes()) == len(cold.to_bytes())

    for ciphertext in (cold, fast):
        assert scheme.decrypt(
            ciphertext, fabric.bob_pk, fabric.bob_keys
        ) == message
        assert scheme.decrypt_fast(
            ciphertext, fabric.bob_pk, fabric.bob_keys
        ) == message
        transform_key, retrieval_key = make_transform_key(
            scheme.group, fabric.bob_pk, fabric.bob_keys
        )
        partial = server_transform(scheme.group, ciphertext, transform_key)
        assert user_finalize(ciphertext, partial, retrieval_key) == message


@pytest.mark.parametrize("policy,threshold_method", POLICY_SHAPES)
def test_session_equals_cold_toy80(fabric, policy, threshold_method):
    _assert_equivalent(fabric, policy, threshold_method)


def test_session_equals_cold_ss512():
    scheme = MultiAuthorityABE(SS512, seed=512512)
    hospital = scheme.setup_authority("hospital", ["doctor", "nurse"])
    trial = scheme.setup_authority("trial", ["researcher"])
    owner = scheme.setup_owner("alice", [hospital, trial])
    bob = scheme.register_user("bob")
    keys = {
        "hospital": hospital.keygen(bob, ["doctor", "nurse"], "alice"),
        "trial": trial.keygen(bob, ["researcher"], "alice"),
    }

    class _Fabric:
        pass

    fabric = _Fabric()
    fabric.scheme, fabric.owner = scheme, owner
    fabric.bob_pk, fabric.bob_keys = bob, keys
    _assert_equivalent(
        fabric, "hospital:doctor AND (trial:researcher OR hospital:nurse)",
        "expand",
    )

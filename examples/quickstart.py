#!/usr/bin/env python3
"""Quickstart: the multi-authority CP-ABE core API in ~40 lines.

Two independent authorities (a hospital and a clinical-trial admin) issue
attributes; a data owner encrypts under a cross-authority policy; a user
whose combined attributes satisfy it decrypts. No global authority is
involved — the CA only hands out identifiers.

Run:  python examples/quickstart.py
"""

from repro.core import MultiAuthorityABE
from repro.ec import TOY80
from repro.errors import PolicyNotSatisfiedError


def main():
    # System Initialization (Phase 1): CA + two independent authorities.
    scheme = MultiAuthorityABE(TOY80, seed=7)
    hospital = scheme.setup_authority("hospital", ["doctor", "nurse"])
    trial = scheme.setup_authority("trial", ["researcher"])

    # OwnerGen: the owner's SK_o goes to each AA; public keys come back.
    owner = scheme.setup_owner("alice", [hospital, trial])

    # Key Generation (Phase 2): each AA issues keys independently, tied
    # together only by the user's global UID.
    bob = scheme.register_user("bob")
    bob_keys = {
        "hospital": hospital.keygen(bob, ["doctor"], "alice"),
        "trial": trial.keygen(bob, ["researcher"], "alice"),
    }

    # Encryption (Phase 3): any LSSS policy over qualified attributes.
    message = scheme.random_message()  # a GT session element (the KEM key)
    ciphertext = owner.encrypt(
        message, "hospital:doctor AND trial:researcher"
    )
    print(f"policy     : {ciphertext.policy_string}")
    print(f"authorities: {sorted(ciphertext.involved_aids)}")
    print(f"size       : {ciphertext.element_size_bytes(scheme.group)} bytes")

    # Decryption (Phase 4).
    recovered = scheme.decrypt(ciphertext, bob, bob_keys)
    assert recovered == message
    print("bob (doctor + researcher) decrypts: OK")

    # A nurse cannot, even with a valid trial key.
    eve = scheme.register_user("eve")
    eve_keys = {
        "hospital": hospital.keygen(eve, ["nurse"], "alice"),
        "trial": trial.keygen(eve, ["researcher"], "alice"),
    }
    try:
        scheme.decrypt(ciphertext, eve, eve_keys)
    except PolicyNotSatisfiedError:
        print("eve (nurse + researcher) is denied : OK")


if __name__ == "__main__":
    main()

"""Audit queries over the network's message log.

Cloud-storage deployments need an answer to "who transferred what,
when": this module provides the query layer over
:class:`repro.system.network.Network`'s append-only log — filtering by
entity, role and message kind, per-entity traffic summaries, and a JSONL
export suitable for shipping to an external audit store.

The log records *metadata only* (entities, kinds, byte counts) — never
payloads — so exporting it cannot leak key material or ciphertexts.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass

from repro.system.network import MessageLogEntry, Network


@dataclass(frozen=True)
class TrafficSummary:
    """Aggregate view of one entity's traffic."""

    entity: str
    sent_messages: int
    sent_bytes: int
    received_messages: int
    received_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.sent_bytes + self.received_bytes


class AuditLog:
    """Read-only query interface over a network's message log."""

    def __init__(self, network: Network):
        self._network = network

    @property
    def entries(self) -> tuple:
        return tuple(self._network.log)

    def __len__(self) -> int:
        return len(self._network.log)

    # -- filters ---------------------------------------------------------------

    def by_kind(self, kind: str) -> list:
        return [entry for entry in self._network.log if entry.kind == kind]

    def by_entity(self, name: str) -> list:
        """Entries where the named entity is sender or recipient."""
        return [
            entry for entry in self._network.log
            if name in (entry.sender, entry.recipient)
        ]

    def between_roles(self, role_a: str, role_b: str) -> list:
        wanted = {role_a, role_b}
        return [
            entry for entry in self._network.log
            if {entry.sender_role, entry.recipient_role} == wanted
        ]

    def kinds(self) -> frozenset:
        return frozenset(entry.kind for entry in self._network.log)

    # -- summaries ------------------------------------------------------------------

    def summary(self, entity: str) -> TrafficSummary:
        sent_messages = sent_bytes = received_messages = received_bytes = 0
        for entry in self._network.log:
            if entry.sender == entity:
                sent_messages += 1
                sent_bytes += entry.size_bytes
            if entry.recipient == entity:
                received_messages += 1
                received_bytes += entry.size_bytes
        return TrafficSummary(
            entity=entity,
            sent_messages=sent_messages,
            sent_bytes=sent_bytes,
            received_messages=received_messages,
            received_bytes=received_bytes,
        )

    def top_talkers(self, limit: int = 5) -> list:
        """Entities ranked by total traffic, descending."""
        totals = defaultdict(int)
        for entry in self._network.log:
            totals[entry.sender] += entry.size_bytes
            totals[entry.recipient] += entry.size_bytes
        ranked = sorted(totals.items(), key=lambda item: -item[1])
        return [self.summary(entity) for entity, _ in ranked[:limit]]

    # -- export ------------------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per line, in transfer order."""
        lines = []
        for index, entry in enumerate(self._network.log):
            lines.append(json.dumps(
                {
                    "seq": index,
                    "sender": entry.sender,
                    "sender_role": entry.sender_role,
                    "recipient": entry.recipient,
                    "recipient_role": entry.recipient_role,
                    "kind": entry.kind,
                    "bytes": entry.size_bytes,
                },
                separators=(",", ":"), sort_keys=True,
            ))
        return "\n".join(lines) + ("\n" if lines else "")

    @staticmethod
    def parse_jsonl(text: str) -> list:
        """Inverse of :meth:`to_jsonl` (returns MessageLogEntry objects)."""
        entries = []
        for line in text.splitlines():
            if not line.strip():
                continue
            raw = json.loads(line)
            entries.append(MessageLogEntry(
                sender=raw["sender"],
                sender_role=raw["sender_role"],
                recipient=raw["recipient"],
                recipient_role=raw["recipient_role"],
                kind=raw["kind"],
                size_bytes=int(raw["bytes"]),
            ))
        return entries

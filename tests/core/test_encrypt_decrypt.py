"""Encrypt/Decrypt round-trips, failure modes, and collusion resistance."""

import dataclasses

import pytest

from repro.core.decrypt import can_decrypt, decrypt, decrypt_fast
from repro.errors import PolicyError, PolicyNotSatisfiedError, SchemeError


class TestRoundTrips:
    @pytest.mark.parametrize(
        "policy,hospital_attrs,trial_attrs",
        [
            ("hospital:doctor", ["doctor"], []),
            ("hospital:doctor AND hospital:nurse", ["doctor", "nurse"], []),
            ("hospital:doctor OR hospital:nurse", ["nurse"], []),
            (
                "hospital:doctor AND trial:researcher",
                ["doctor"],
                ["researcher"],
            ),
            # Note: the user still needs *a* key from every involved
            # authority (structural property of the scheme), even when
            # the satisfied branch does not use its attributes.
            (
                "(hospital:doctor AND trial:pi) OR hospital:admin",
                ["admin"],
                ["monitor"],
            ),
            (
                "hospital:surgeon AND (trial:researcher OR trial:monitor)",
                ["surgeon"],
                ["monitor"],
            ),
        ],
    )
    def test_authorized_roundtrip(self, deployment, policy, hospital_attrs,
                                  trial_attrs):
        deployment.add_user(
            "u", hospital_attrs=hospital_attrs, trial_attrs=trial_attrs
        )
        message = deployment.scheme.random_message()
        ciphertext = deployment.owner.encrypt(message, policy)
        assert deployment.decrypt(ciphertext, "u") == message

    def test_fast_decrypt_agrees(self, deployment):
        deployment.add_user("u", hospital_attrs=["doctor"],
                            trial_attrs=["researcher"])
        message = deployment.scheme.random_message()
        ciphertext = deployment.owner.encrypt(
            message, "hospital:doctor AND trial:researcher"
        )
        group = deployment.scheme.group
        slow = decrypt(group, ciphertext, deployment.user_public["u"],
                       deployment.user_keys["u"])
        fast = decrypt_fast(group, ciphertext, deployment.user_public["u"],
                            deployment.user_keys["u"])
        assert slow == fast == message

    def test_threshold_policy_with_rho_reuse(self, deployment):
        deployment.add_user("u", hospital_attrs=["doctor", "nurse"])
        message = deployment.scheme.random_message()
        ciphertext = deployment.owner.encrypt(
            message,
            "2 of (hospital:doctor, hospital:nurse, hospital:admin)",
            require_injective_rho=False,
        )
        assert deployment.decrypt(ciphertext, "u") == message

    def test_extra_attributes_do_not_hurt(self, deployment):
        deployment.add_user(
            "u",
            hospital_attrs=["doctor", "nurse", "surgeon", "admin"],
            trial_attrs=["researcher", "pi", "monitor"],
        )
        message = deployment.scheme.random_message()
        ciphertext = deployment.owner.encrypt(
            message, "hospital:doctor AND trial:pi"
        )
        assert deployment.decrypt(ciphertext, "u") == message

    def test_multiple_ciphertexts_independent(self, deployment):
        deployment.add_user("u", hospital_attrs=["doctor"])
        m1 = deployment.scheme.random_message()
        m2 = deployment.scheme.random_message()
        c1 = deployment.owner.encrypt(m1, "hospital:doctor")
        c2 = deployment.owner.encrypt(m2, "hospital:doctor")
        assert deployment.decrypt(c1, "u") == m1
        assert deployment.decrypt(c2, "u") == m2
        assert c1.c != c2.c


class TestFailures:
    def test_unsatisfying_attributes_rejected(self, deployment):
        deployment.add_user("u", hospital_attrs=["nurse"],
                            trial_attrs=["researcher"])
        ciphertext = deployment.owner.encrypt(
            deployment.scheme.random_message(),
            "hospital:doctor AND trial:researcher",
        )
        with pytest.raises(PolicyNotSatisfiedError):
            deployment.decrypt(ciphertext, "u")

    def test_missing_authority_key_rejected(self, deployment):
        deployment.add_user("u", hospital_attrs=["doctor"])  # no trial key
        ciphertext = deployment.owner.encrypt(
            deployment.scheme.random_message(),
            "hospital:doctor AND trial:researcher",
        )
        with pytest.raises(SchemeError, match="missing"):
            deployment.decrypt(ciphertext, "u")

    def test_missing_authority_even_if_policy_satisfiable_without_it(
        self, deployment
    ):
        # OR policy across authorities: the numerator still runs over all
        # involved authorities, a structural property of the scheme.
        deployment.add_user("u", hospital_attrs=["doctor"])
        ciphertext = deployment.owner.encrypt(
            deployment.scheme.random_message(),
            "hospital:doctor OR trial:researcher",
        )
        with pytest.raises(SchemeError, match="missing"):
            deployment.decrypt(ciphertext, "u")

    def test_wrong_owner_scope_rejected(self, deployment):
        scheme = deployment.scheme
        other_owner = scheme.setup_owner(
            "mallory-owner", [deployment.hospital, deployment.trial]
        )
        pk = scheme.register_user("u")
        keys = {
            "hospital": deployment.hospital.keygen(
                pk, ["doctor"], "mallory-owner"
            ),
            "trial": deployment.trial.keygen(
                pk, ["researcher"], "mallory-owner"
            ),
        }
        ciphertext = deployment.owner.encrypt(
            scheme.random_message(), "hospital:doctor AND trial:researcher"
        )
        with pytest.raises(SchemeError, match="scoped to owner"):
            decrypt(scheme.group, ciphertext, pk, keys)

    def test_injective_rho_enforced_by_default(self, deployment):
        with pytest.raises(PolicyError, match="injective"):
            deployment.owner.encrypt(
                deployment.scheme.random_message(),
                "2 of (hospital:doctor, hospital:nurse, hospital:admin)",
            )

    def test_unknown_authority_in_policy(self, deployment):
        with pytest.raises(SchemeError, match="no public keys"):
            deployment.owner.encrypt(
                deployment.scheme.random_message(), "nasa:astronaut"
            )

    def test_wrong_plaintext_on_forced_decrypt(self, deployment):
        """Bypassing validation with a mismatched UID yields garbage, not
        the message (the algebraic collusion barrier)."""
        deployment.add_user("honest", hospital_attrs=["doctor"],
                            trial_attrs=["researcher"])
        deployment.add_user("evil", hospital_attrs=["nurse"],
                            trial_attrs=["researcher"])
        message = deployment.scheme.random_message()
        ciphertext = deployment.owner.encrypt(
            message, "hospital:doctor AND trial:researcher"
        )
        forged = dataclasses.replace(
            deployment.user_keys["honest"]["hospital"], uid="evil"
        )
        mixed = {
            "hospital": forged,
            "trial": deployment.user_keys["evil"]["trial"],
        }
        result = decrypt(
            deployment.scheme.group, ciphertext,
            deployment.user_public["evil"], mixed,
        )
        assert result != message


class TestCollusion:
    def test_two_users_cannot_pool_keys(self, deployment):
        """The validation layer rejects key bundles with mixed UIDs."""
        deployment.add_user("u1", hospital_attrs=["doctor"])
        deployment.add_user("u2", trial_attrs=["researcher"])
        ciphertext = deployment.owner.encrypt(
            deployment.scheme.random_message(),
            "hospital:doctor AND trial:researcher",
        )
        pooled = {
            "hospital": deployment.user_keys["u1"]["hospital"],
            "trial": deployment.user_keys["u2"]["trial"],
        }
        with pytest.raises(SchemeError, match="belongs"):
            decrypt(
                deployment.scheme.group, ciphertext,
                deployment.user_public["u1"], pooled,
            )

    def test_fast_path_also_validates(self, deployment):
        deployment.add_user("u1", hospital_attrs=["doctor"])
        deployment.add_user("u2", trial_attrs=["researcher"])
        ciphertext = deployment.owner.encrypt(
            deployment.scheme.random_message(),
            "hospital:doctor AND trial:researcher",
        )
        pooled = {
            "hospital": deployment.user_keys["u1"]["hospital"],
            "trial": deployment.user_keys["u2"]["trial"],
        }
        with pytest.raises(SchemeError):
            decrypt_fast(
                deployment.scheme.group, ciphertext,
                deployment.user_public["u2"], pooled,
            )


class TestCanDecrypt:
    def test_predicate(self, deployment):
        deployment.add_user("yes", hospital_attrs=["doctor"],
                            trial_attrs=["researcher"])
        deployment.add_user("no", hospital_attrs=["nurse"],
                            trial_attrs=["researcher"])
        deployment.add_user("partial", hospital_attrs=["doctor"])
        group = deployment.scheme.group
        ciphertext = deployment.owner.encrypt(
            deployment.scheme.random_message(),
            "hospital:doctor AND trial:researcher",
        )
        assert can_decrypt(group, ciphertext, deployment.user_keys["yes"])
        assert not can_decrypt(group, ciphertext, deployment.user_keys["no"])
        assert not can_decrypt(
            group, ciphertext, deployment.user_keys["partial"]
        )

"""Figure 3(a): encryption time vs number of authorities.

Paper setup: attributes per authority fixed at 5; the x-axis sweeps the
number of involved authorities; both schemes encrypt one message under
the all-AND policy over every attribute. Expected shape: both linear in
the total attribute count, ours below Lewko's by roughly 2-3× (per LSSS
row we pay ~2 G exponentiations versus Lewko's ~3 G + 2 GT).
"""

import pytest

from benchmarks.conftest import (
    AUTHORITY_SWEEP,
    FIXED_ATTRS,
    lewko_workload,
    ours_workload,
    run_once,
)


@pytest.mark.parametrize("n_authorities", AUTHORITY_SWEEP)
def test_ours_encrypt(benchmark, n_authorities):
    workload = ours_workload(n_authorities, FIXED_ATTRS)
    benchmark.group = f"fig3a encrypt nA={n_authorities}"
    ciphertext = run_once(benchmark, workload.encrypt)
    assert ciphertext.n_rows == n_authorities * FIXED_ATTRS


@pytest.mark.parametrize("n_authorities", AUTHORITY_SWEEP)
def test_lewko_encrypt(benchmark, n_authorities):
    workload = lewko_workload(n_authorities, FIXED_ATTRS)
    benchmark.group = f"fig3a encrypt nA={n_authorities}"
    ciphertext = run_once(benchmark, workload.encrypt)
    assert ciphertext.n_rows == n_authorities * FIXED_ATTRS

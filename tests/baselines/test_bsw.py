"""Tests for the BSW single-authority CP-ABE baseline."""

import pytest

from repro.baselines.bsw import BswScheme
from repro.errors import PolicyNotSatisfiedError, SchemeError


@pytest.fixture()
def bsw(group):
    return BswScheme(group)


class TestRoundTrips:
    @pytest.mark.parametrize(
        "policy,attrs",
        [
            ("a", ["a"]),
            ("a AND b", ["a", "b"]),
            ("a OR b", ["b"]),
            ("2 of (a, b, c)", ["a", "c"]),
            ("3 of (a, b, c, d)", ["a", "b", "d"]),
            ("a AND (b OR 2 of (c, d, e))", ["a", "d", "e"]),
        ],
    )
    def test_authorized(self, group, bsw, policy, attrs):
        message = group.random_gt()
        ciphertext = bsw.encrypt(message, policy)
        key = bsw.keygen(attrs)
        assert bsw.decrypt(ciphertext, key) == message

    def test_native_threshold_no_expansion(self, group, bsw):
        """BSW handles k-of-n natively; leaf count is n, not C(n,k)."""
        ciphertext = bsw.encrypt(group.random_gt(), "5 of (a,b,c,d,e,f,g,h)")
        assert ciphertext.n_leaves == 8

    def test_extra_attributes_harmless(self, group, bsw):
        message = group.random_gt()
        ciphertext = bsw.encrypt(message, "a AND b")
        key = bsw.keygen(["a", "b", "c", "d"])
        assert bsw.decrypt(ciphertext, key) == message


class TestFailures:
    def test_unsatisfying_key(self, group, bsw):
        ciphertext = bsw.encrypt(group.random_gt(), "a AND b")
        key = bsw.keygen(["a"])
        with pytest.raises(PolicyNotSatisfiedError):
            bsw.decrypt(ciphertext, key)

    def test_empty_attribute_key_rejected(self, bsw):
        with pytest.raises(SchemeError):
            bsw.keygen([])

    def test_satisfies_predicate(self, group, bsw):
        ciphertext = bsw.encrypt(group.random_gt(), "a AND b")
        assert bsw.satisfies(ciphertext, bsw.keygen(["a", "b"]))
        assert not bsw.satisfies(ciphertext, bsw.keygen(["a"]))


class TestCollusion:
    def test_keys_are_user_randomized(self, group, bsw):
        """Two keys for the same attributes differ (fresh t per user) —
        the randomization that defeats collusion in BSW."""
        k1 = bsw.keygen(["a"])
        k2 = bsw.keygen(["a"])
        assert k1.d != k2.d
        assert k1.components["a"] != k2.components["a"]

    def test_mixed_key_components_fail(self, group, bsw):
        """Splicing attribute components from another user's key breaks
        decryption because the embedded t differs."""
        from repro.baselines.bsw import BswUserKey

        message = group.random_gt()
        ciphertext = bsw.encrypt(message, "a AND b")
        alice = bsw.keygen(["a"])
        bob = bsw.keygen(["b"])
        spliced = BswUserKey(
            d=alice.d,
            components={**alice.components, **bob.components},
        )
        result = bsw.decrypt(ciphertext, spliced)
        assert result != message


class TestIndependence:
    def test_two_deployments_are_incompatible(self, group):
        a = BswScheme(group)
        b = BswScheme(group)
        message = group.random_gt()
        ciphertext = a.encrypt(message, "x")
        key_from_b = b.keygen(["x"])
        assert b.decrypt(ciphertext, key_from_b) != message

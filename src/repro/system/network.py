"""Byte-metered message passing between simulated entities.

The paper's communication-cost analysis (Table IV) counts the bytes that
travel between role pairs — AA↔User, AA↔Owner, Server↔User,
Server↔Owner. :class:`Network` is the single chokepoint every
cross-entity transfer goes through in the simulation: it measures the
payload with :mod:`repro.system.sizes`, appends a log entry, updates the
per-role-pair counters, and hands the payload to the recipient.

The network is synchronous and lossless — the paper measures sizes and
local crypto time, not latency or loss (see DESIGN.md §2).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.pairing.group import PairingGroup
from repro.system.sizes import measure

# Canonical role names used by the Table IV aggregation.
ROLE_CA = "ca"
ROLE_AA = "aa"
ROLE_OWNER = "owner"
ROLE_USER = "user"
ROLE_SERVER = "server"


@dataclass(frozen=True)
class MessageLogEntry:
    """One recorded transfer."""

    sender: str
    sender_role: str
    recipient: str
    recipient_role: str
    kind: str
    size_bytes: int


@dataclass
class ChannelStats:
    """Aggregate traffic between one (unordered) pair of roles."""

    messages: int = 0
    bytes: int = 0

    def add(self, size: int) -> None:
        self.messages += 1
        self.bytes += size


def role_pair(role_a: str, role_b: str) -> tuple:
    """Unordered, canonical key for a role pair (AA↔User == User↔AA)."""
    return tuple(sorted((role_a, role_b)))


@dataclass
class Network:
    """The metering fabric all entities share."""

    group: PairingGroup
    log: list = field(default_factory=list)
    channels: dict = field(default_factory=lambda: defaultdict(ChannelStats))

    def send(self, sender, recipient, kind: str, payload):
        """Record a transfer and return the payload (synchronous delivery)."""
        size = measure(payload, self.group)
        entry = MessageLogEntry(
            sender=sender.name,
            sender_role=sender.role,
            recipient=recipient.name,
            recipient_role=recipient.role,
            kind=kind,
            size_bytes=size,
        )
        self.log.append(entry)
        self.channels[role_pair(sender.role, recipient.role)].add(size)
        return payload

    # -- reporting -------------------------------------------------------------

    def bytes_between(self, role_a: str, role_b: str) -> int:
        return self.channels[role_pair(role_a, role_b)].bytes

    def messages_between(self, role_a: str, role_b: str) -> int:
        return self.channels[role_pair(role_a, role_b)].messages

    def bytes_by_kind(self) -> dict:
        totals = defaultdict(int)
        for entry in self.log:
            totals[entry.kind] += entry.size_bytes
        return dict(totals)

    def total_bytes(self) -> int:
        return sum(entry.size_bytes for entry in self.log)

    def reset(self) -> None:
        """Clear counters (e.g. after setup, before the measured phase)."""
        self.log.clear()
        self.channels.clear()

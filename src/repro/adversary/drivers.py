"""The adversary's toolbox: forged keys, pooled wallets, forced decrypts.

These helpers deliberately construct key material the honest protocol
never produces — attribute keys pooled across two UIDs, keys relabeled
to another user, version fields forged forward — and then attempt
decryption both the honest way (:func:`repro.core.decrypt.decrypt`,
which validates uid/owner/version bookkeeping eagerly) and the
attacker's way (:func:`repro.core.decrypt.decrypt_unchecked`, raw
Eq. (1) math with validation skipped). The distinction matters for
what a scenario can claim: a *rejected* outcome only shows the
bookkeeping said no; a *garbage* outcome shows the pairing algebra
itself produced a wrong GT blinding — the sealed payload's
authenticated decryption fails — which is the paper's actual security
argument (collusion resistance via ``PK_UID = g^u``, revocation via
the version-key rotation).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.decrypt import decrypt, decrypt_unchecked
from repro.core.keys import UserPublicKey, UserSecretKey
from repro.crypto.hybrid import open_sealed
from repro.errors import (
    IntegrityError,
    PolicyNotSatisfiedError,
    SchemeError,
)
from repro.pairing.group import PairingGroup
from repro.system.records import StoredComponent

#: Outcome classes of :func:`attempt_component_decrypt`.
PLAINTEXT = "plaintext"      # full recovery — the attack (or honest read) won
REJECTED = "rejected"        # bookkeeping validation refused (SchemeError)
GARBAGE = "garbage"          # math ran, wrong GT session → IntegrityError
UNSATISFIED = "unsatisfied"  # attributes cannot span the LSSS matrix


@dataclass(frozen=True)
class AttackOutcome:
    """How one decryption attempt ended, as a checkable value."""

    outcome: str
    detail: str = ""
    plaintext: bytes = None

    @property
    def recovered(self) -> bool:
        return self.outcome == PLAINTEXT

    @property
    def cryptographically_dead(self) -> bool:
        """The math itself failed — not just a validation gate."""
        return self.outcome in (GARBAGE, UNSATISFIED)


def attempt_component_decrypt(group: PairingGroup,
                              component: StoredComponent,
                              public_key: UserPublicKey,
                              secret_keys: dict, *,
                              validate: bool = True) -> AttackOutcome:
    """Try to open one stored component with the given key material.

    ``validate=True`` is the honest client's path; ``validate=False``
    is the attacker's, bypassing every bookkeeping gate so only the
    pairing algebra stands between the keys and the plaintext.
    """
    ciphertext = component.abe_ciphertext
    try:
        if validate:
            session = decrypt(group, ciphertext, public_key, secret_keys)
        else:
            session = decrypt_unchecked(group, ciphertext, public_key,
                                        secret_keys)
    except SchemeError as exc:
        return AttackOutcome(REJECTED, repr(exc))
    except PolicyNotSatisfiedError as exc:
        return AttackOutcome(UNSATISFIED, repr(exc))
    try:
        plaintext = open_sealed(session, ciphertext.ciphertext_id,
                                component.data_ciphertext)
    except IntegrityError as exc:
        return AttackOutcome(GARBAGE, repr(exc))
    return AttackOutcome(PLAINTEXT, plaintext=plaintext)


def snapshot_keys(secret_keys: dict) -> dict:
    """Freeze a wallet's current AID→key view (keys are immutable)."""
    return dict(secret_keys)


def relabel_key(key: UserSecretKey, uid: str) -> UserSecretKey:
    """Forge the uid label on a secret key (the elements still embed
    the original user's ``u`` exponent — that is the point)."""
    return replace(key, uid=uid)


def forge_key_version(key: UserSecretKey, version: int) -> UserSecretKey:
    """Forge the version counter forward without the update key's
    ``α̃/α`` exponent ever touching the attribute elements."""
    return replace(key, version=version)


def forge_public_key(uid: str, element) -> UserPublicKey:
    """A PK_UID the CA never certified for this uid."""
    return UserPublicKey(uid=uid, element=element)


def pool_secret_keys(base_keys: dict, donor_keys: dict) -> dict:
    """Collude: graft a donor user's attribute keys into a base wallet.

    Per shared AID the donor's ``K_x`` elements are merged over the
    base user's (so the pooled attribute set spans the policy); AIDs
    only the donor holds are relabeled to the base uid wholesale. The
    result *looks* like one user's wallet — uid labels all match — but
    the grafted elements embed the donor's CA exponent, so Eq. (1)'s
    products cannot cancel. This is exactly the collusion Section VI
    argues is defeated by the CA's uid binding.
    """
    base_uid = next(iter(base_keys.values())).uid if base_keys else None
    pooled = dict(base_keys)
    for aid, donor in donor_keys.items():
        base = pooled.get(aid)
        if base is None:
            pooled[aid] = relabel_key(donor, base_uid or donor.uid)
        else:
            pooled[aid] = replace(
                base,
                attribute_keys={**base.attribute_keys,
                                **donor.attribute_keys},
            )
    return pooled

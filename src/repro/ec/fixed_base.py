"""Fixed-base windowed scalar multiplication.

Exponentiations of the *generator* dominate KeyGen and Encrypt (every
``g^x`` in the scheme). For a fixed base, precomputing the table
``T[i][j] = (j · W^i) · P`` for a window width ``w`` (``W = 2^w``)
reduces a scalar multiplication to at most ``ceil(bits/w)`` point
additions and no doublings — a 4-6× speedup over double-and-add in this
pure-Python setting.

The table costs ``(W - 1) · ceil(bits/w)`` precomputed points; for a
160-bit order and w = 4 that is 600 points, built once per group.
"""

from __future__ import annotations

from repro.ec.curve import INFINITY, SupersingularCurve


class FixedBaseTable:
    """Precomputed multiples of one point for windowed multiplication."""

    __slots__ = ("curve", "point", "window", "levels")

    def __init__(self, curve: SupersingularCurve, point, order: int,
                 window: int = 4):
        if not 1 <= window <= 8:
            raise ValueError("window width must be in [1, 8]")
        self.curve = curve
        self.point = point
        self.window = window
        width = 1 << window
        n_levels = (order.bit_length() + window - 1) // window
        self.levels = []
        base = point
        for _ in range(n_levels):
            row = [INFINITY]
            accumulator = INFINITY
            for _ in range(width - 1):
                accumulator = curve.add(accumulator, base)
                row.append(accumulator)
            self.levels.append(row)
            # base <- (2^window) * base for the next digit position
            for _ in range(window):
                base = curve.double(base)

    def multiply(self, scalar: int):
        """``scalar · P`` using the precomputed table."""
        if scalar < 0:
            return self.curve.neg(self.multiply(-scalar))
        mask = (1 << self.window) - 1
        result = INFINITY
        level = 0
        while scalar and level < len(self.levels):
            digit = scalar & mask
            if digit:
                result = self.curve.add(result, self.levels[level][digit])
            scalar >>= self.window
            level += 1
        if scalar:
            # Scalar exceeded the table (not reduced mod order): fall back
            # for the remaining high part.
            high = self.curve.mul(self.point, scalar << (self.window * level))
            result = self.curve.add(result, high)
        return result

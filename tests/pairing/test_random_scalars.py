"""Batched scalar sampling (``PairingGroup.random_scalars``)."""

import pytest

from repro.ec.params import TOY80
from repro.errors import MathError
from repro.pairing.group import PairingGroup


class TestContract:
    def test_range_and_count(self, group):
        scalars = group.random_scalars(100)
        assert len(scalars) == 100
        assert all(0 < s < group.order for s in scalars)

    def test_zero_allowed_when_requested(self, group):
        scalars = group.random_scalars(50, nonzero=False)
        assert all(0 <= s < group.order for s in scalars)

    def test_empty_and_invalid_counts(self, group):
        assert group.random_scalars(0) == []
        with pytest.raises(MathError):
            group.random_scalars(-1)

    def test_deterministic_under_seed(self):
        first = PairingGroup(TOY80, seed=31337).random_scalars(20)
        second = PairingGroup(TOY80, seed=31337).random_scalars(20)
        assert first == second
        assert PairingGroup(TOY80, seed=31338).random_scalars(20) != first


class TestStatisticalSanity:
    """Coarse uniformity checks — loose bounds, deterministic seed."""

    N = 4000

    @pytest.fixture(scope="class")
    def sample(self):
        return PairingGroup(TOY80, seed=0xD1CE).random_scalars(self.N)

    def test_mean_near_half_order(self, sample):
        mean = sum(sample) / len(sample)
        assert 0.45 < mean / TOY80.r < 0.55

    def test_halves_balanced(self, sample):
        upper = sum(1 for s in sample if s >= TOY80.r // 2)
        assert 0.45 < upper / len(sample) < 0.55

    def test_top_byte_spread(self, sample):
        # Scalars are reduced mod an 80-bit order; the top 4 bits should
        # hit every bucket for 4000 draws.
        shift = TOY80.r.bit_length() - 4
        buckets = {s >> shift for s in sample}
        assert len(buckets) >= 8

    def test_no_collisions(self, sample):
        # 4000 draws from an 80-bit space: a repeat means broken masking.
        assert len(set(sample)) == self.N

    def test_extremes_reached(self, sample):
        assert min(sample) < TOY80.r * 0.05
        assert max(sample) > TOY80.r * 0.95

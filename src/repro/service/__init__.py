"""A real networked deployment of the paper's cloud-storage framework.

Where :mod:`repro.system` simulates the five entity types in-process,
this package runs the cloud-server role on an actual asyncio TCP socket
with a persistent content-addressed record store, and provides client
wrappers for the owner / user / authority roles that drive the same
upload → read → revoke → re-encrypt lifecycle over the wire:

* :mod:`repro.service.protocol` — length-prefixed framed wire protocol
  (version-negotiating hello, typed error frames); message bodies reuse
  the byte formats of :mod:`repro.core.serialize`,
  :mod:`repro.core.ciphertext` and :mod:`repro.system.records`.
* :mod:`repro.service.store` — SHA-256-keyed blob store with two-level
  sharded directories, atomic tmp-file-then-rename writes and a bounded
  LRU read cache, plus the record/ciphertext index on top of it.
* :mod:`repro.service.server` — the asyncio server hosting the paper's
  server role (Fig. 1): store/fetch records, serve public keys, proxy
  ReEncrypt (Section V-C), per-connection timeouts, graceful shutdown.
* :mod:`repro.service.client` — ``OwnerClient`` / ``UserClient`` /
  ``AuthorityClient`` wrappers over one connection each.
* :mod:`repro.service.retry` — ``RetryPolicy`` (exponential backoff +
  jitter), ``RetryLog``, and the server-side ``IdempotencyTable`` that
  makes retried mutations apply exactly once.
* :mod:`repro.service.faults` — ``ChaosProxy``, a deterministic seeded
  fault injector (drops, delays, corruption, truncation, duplication)
  for reproducing every failure mode in tests.

Every payload-bearing frame is metered through the same
:class:`repro.system.meter.Meter` accounting the simulation uses, so
Table IV communication costs can be measured on real traffic.
"""

from repro.service.client import (
    AuthorityClient,
    OwnerClient,
    ServiceConnection,
    UserClient,
)
from repro.service.faults import ChaosProxy, FaultSpec
from repro.service.retry import IdempotencyTable, RetryLog, RetryPolicy
from repro.service.server import StorageService
from repro.service.store import BlobStore, RecordStore

__all__ = [
    "AuthorityClient",
    "BlobStore",
    "ChaosProxy",
    "FaultSpec",
    "IdempotencyTable",
    "OwnerClient",
    "RecordStore",
    "RetryLog",
    "RetryPolicy",
    "ServiceConnection",
    "StorageService",
    "UserClient",
]

"""Fleet-wide revocation: one epoch, every shard, no stale node.

:func:`sweep_cluster` is the cluster counterpart of
:meth:`repro.service.client.OwnerClient.sweep_revocation`: one
Section V-C revocation pushed through a ``REENCRYPT_SWEEP`` request *per
node*, fanned out concurrently, with each node's progress frames
streamed back tagged by node name.

Determinism is the whole point of the orchestration order:

* the owner computes every update information exactly **once** (one
  bulk :meth:`~repro.core.owner.DataOwner.update_infos_for_records`
  call, identical to the single-node sweep), and each node receives the
  *same encoded bytes* for the ciphertexts it holds — ReEncrypt is
  deterministic given (ciphertext, UK, UI), so all replicas of a record
  land byte-identical to each other *and* to what a single-node sweep
  of the same world would have produced;
* a ciphertext only counts as **converged** when every replica node
  assigned to it reports ``updated`` or ``already_current``. The ledger
  rolls forward (``note_reencrypted``) for converged ciphertexts only,
  and the owner's authority epoch (``apply_update_key``) only rolls
  once *every* eligible ciphertext converged — so no node is ever left
  serving a stale version behind an epoch the owner considers done.

Partial failure needs no checkpoint file: rerunning the same sweep is
the resume. Converged ciphertexts left the eligible set when their
ledger entries rolled; unconverged ones are re-sent, and nodes that
already re-encrypted them answer ``already_current`` (the sweep is
idempotent per node, and each node request rides its own idempotency
envelope besides).
"""

from __future__ import annotations

from repro.core.owner import DataOwner
from repro.core.serialize import encode_update_info, encode_update_key
from repro.parallel import gather_bounded
from repro.service import protocol
from repro.service.protocol import MessageType


async def sweep_cluster(cluster, core: DataOwner, update_key, *,
                        include_uk2: bool = True, on_progress=None) -> dict:
    """Re-encrypt every eligible ciphertext on every node that holds it.

    ``on_progress`` (optional) receives each node's streamed progress
    dict with a ``node`` key added. Returns a summary::

        {"eligible": n, "converged": [...], "pending": [...],
         "nodes": {node: server summary}, "errors": {node: repr},
         "epoch_rolled": bool}

    ``pending`` non-empty means some replica did not confirm — the
    ledger did *not* roll for those ciphertexts and the update key was
    *not* applied; fix the node and rerun the same sweep to resume.
    """
    from repro.core.revocation import strip_uk2

    server_key = update_key if include_uk2 else strip_uk2(update_key)
    eligible = [
        ciphertext_id
        for ciphertext_id in core.records_involving(update_key.aid)
        if core.record(ciphertext_id).versions[update_key.aid]
        == update_key.from_version
    ]
    # One bulk UI computation for the whole fleet: every node sees the
    # same bytes, which is what makes replicas land byte-identical.
    infos = core.update_infos_for_records(eligible, update_key)
    ui_raws = [encode_update_info(update_info) for update_info in infos]

    assignments = {}     # node name -> [index into eligible]
    assigned_nodes = {}  # ciphertext id -> [node names holding it]
    for index, ciphertext_id in enumerate(eligible):
        record_id = ciphertext_id.rsplit("/", 1)[0]
        names = [node.name
                 for node in cluster.map.replicas_for(record_id)]
        assigned_nodes[ciphertext_id] = names
        for name in names:
            assignments.setdefault(name, []).append(index)

    node_summaries, node_errors = {}, {}
    if assignments:
        key_raw = encode_update_key(cluster.group, server_key)

        async def sweep_node(name):
            connection = await cluster.connection(name)
            indices = assignments[name]
            connection.meter_send("update-key", server_key)
            for index in indices:
                connection.meter_send("update-info", infos[index])
            body = protocol.pack_parts(
                protocol.encode_json({"n": len(indices)}),
                key_raw,
                *(ui_raws[index] for index in indices),
            )

            def node_progress(frame):
                if on_progress is not None:
                    on_progress(dict(frame, node=name))

            reply = await connection.request_stream(
                MessageType.REENCRYPT_SWEEP, body,
                final=MessageType.SWEEP_DONE,
                progress=MessageType.SWEEP_PROGRESS,
                on_progress=node_progress,
            )
            return protocol.decode_json(reply)

        names = sorted(assignments)
        outcomes = await gather_bounded(
            [lambda name=name: sweep_node(name) for name in names],
            limit=cluster.fanout_limit,
        )
        for name, outcome in zip(names, outcomes):
            if isinstance(outcome, Exception):
                node_errors[name] = repr(outcome)
                cluster._bump("sweep-failed", name)
            else:
                node_summaries[name] = outcome
                cluster._bump("sweep-done", name)

    def swept_on(name) -> set:
        summary = node_summaries.get(name)
        if summary is None:
            return set()
        return set(summary.get("updated", ())) \
            | set(summary.get("already_current", ()))

    converged, pending = [], []
    for ciphertext_id in eligible:
        if all(ciphertext_id in swept_on(name)
               for name in assigned_nodes[ciphertext_id]):
            converged.append(ciphertext_id)
        else:
            pending.append(ciphertext_id)

    # The ledger rolls only for fully converged ciphertexts: a rerun
    # recomputes `eligible` from the ledger, so everything pending here
    # is re-sent and the already-swept nodes answer `already_current`.
    for ciphertext_id in converged:
        if core.record(ciphertext_id).versions.get(update_key.aid) \
                == update_key.from_version:
            core.note_reencrypted(ciphertext_id, update_key)
    epoch_rolled = False
    if not pending and core.authority_version(update_key.aid) \
            == update_key.from_version:
        core.apply_update_key(update_key)
        epoch_rolled = True
    return {
        "eligible": len(eligible),
        "converged": converged,
        "pending": pending,
        "nodes": node_summaries,
        "errors": node_errors,
        "epoch_rolled": epoch_rolled,
    }

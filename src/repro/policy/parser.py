"""Parser for the textual access-policy language.

Grammar (keywords case-insensitive)::

    policy    := or_expr
    or_expr   := and_expr ( "OR" and_expr )*
    and_expr  := primary ( "AND" primary )*
    primary   := ATTRIBUTE
               | "(" policy ")"
               | INT "of" "(" policy ( "," policy )* ")"

Attribute tokens may contain letters, digits and ``_ . : @ + / -``; the
colon is conventionally used to prefix the issuing authority, e.g.
``"hospital:doctor AND trial:researcher"``.

Examples::

    parse("a AND (b OR c)")
    parse("2 of (hospital:doctor, trial:researcher, uni:professor)")
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import PolicyError
from repro.policy.ast import And, Attribute, Or, PolicyNode, Threshold

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<lparen>\()|(?P<rparen>\))|(?P<comma>,)"
    r"|(?P<word>[A-Za-z0-9_.:@+/-]+))"
)
_KEYWORDS = {"and", "or", "of"}


@dataclass(frozen=True)
class _Token:
    kind: str   # 'lparen' | 'rparen' | 'comma' | 'and' | 'or' | 'of' | 'int' | 'attr'
    text: str
    position: int


def _tokenize(source: str):
    tokens = []
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            remainder = source[position:].strip()
            if not remainder:
                break
            raise PolicyError(
                f"unexpected character {remainder[0]!r} at offset {position}"
            )
        position = match.end()
        if match.lastgroup == "word":
            word = match.group("word")
            lowered = word.lower()
            if lowered in _KEYWORDS:
                tokens.append(_Token(lowered, word, match.start()))
            elif word.isdigit():
                tokens.append(_Token("int", word, match.start()))
            else:
                tokens.append(_Token("attr", word, match.start()))
        else:
            tokens.append(_Token(match.lastgroup, match.group(), match.start()))
    return tokens


class _Parser:
    def __init__(self, tokens, source: str):
        self.tokens = tokens
        self.source = source
        self.index = 0

    def peek(self):
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def advance(self):
        token = self.peek()
        if token is None:
            raise PolicyError(f"unexpected end of policy: {self.source!r}")
        self.index += 1
        return token

    def expect(self, kind: str):
        token = self.advance()
        if token.kind != kind:
            raise PolicyError(
                f"expected {kind} but found {token.text!r} "
                f"at offset {token.position} in {self.source!r}"
            )
        return token

    def parse_policy(self) -> PolicyNode:
        node = self.parse_or()
        leftover = self.peek()
        if leftover is not None:
            raise PolicyError(
                f"trailing input {leftover.text!r} at offset {leftover.position}"
            )
        return node

    def parse_or(self) -> PolicyNode:
        children = [self.parse_and()]
        while self.peek() is not None and self.peek().kind == "or":
            self.advance()
            children.append(self.parse_and())
        return children[0] if len(children) == 1 else Or(children)

    def parse_and(self) -> PolicyNode:
        children = [self.parse_primary()]
        while self.peek() is not None and self.peek().kind == "and":
            self.advance()
            children.append(self.parse_primary())
        return children[0] if len(children) == 1 else And(children)

    def parse_primary(self) -> PolicyNode:
        token = self.advance()
        if token.kind == "attr":
            return Attribute(token.text)
        if token.kind == "lparen":
            node = self.parse_or()
            self.expect("rparen")
            return node
        if token.kind == "int":
            k = int(token.text)
            self.expect("of")
            self.expect("lparen")
            children = [self.parse_or()]
            while self.peek() is not None and self.peek().kind == "comma":
                self.advance()
                children.append(self.parse_or())
            self.expect("rparen")
            return Threshold(k, children)
        raise PolicyError(
            f"unexpected token {token.text!r} at offset {token.position} "
            f"in {self.source!r}"
        )


def parse(source) -> PolicyNode:
    """Parse a policy string into an AST (idempotent on AST input)."""
    if isinstance(source, PolicyNode):
        return source
    if not isinstance(source, str):
        raise PolicyError(f"cannot parse policy of type {type(source).__name__}")
    tokens = _tokenize(source)
    if not tokens:
        raise PolicyError("empty policy")
    return _Parser(tokens, source).parse_policy()

"""Unit and property tests for repro.math.integers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MathError
from repro.math.integers import (
    bytes_to_int,
    crt_pair,
    egcd,
    int_to_bytes,
    invmod,
    jacobi,
    sqrt_mod,
)

P_3MOD4 = 0x82AB3A7FE43647067E8563A38CC0A04EC6E335B7  # TOY80 base field prime
P_1MOD4 = 1000000000000000000000007 * 0 + 13  # small p ≡ 1 (mod 4)
P_1MOD4_BIG = 2**89 - 1  # not prime; replaced below
PRIME_1MOD4 = 1000003 * 0 + 1000033  # 1000033 ≡ 1 (mod 4), prime


class TestEgcd:
    @given(st.integers(-10**12, 10**12), st.integers(-10**12, 10**12))
    def test_bezout_identity(self, a, b):
        g, x, y = egcd(a, b)
        assert a * x + b * y == g
        assert g >= 0
        if a or b:
            assert a % g == 0 and b % g == 0

    def test_zero_zero(self):
        assert egcd(0, 0)[0] == 0

    def test_coprime(self):
        g, x, _ = egcd(17, 31)
        assert g == 1
        assert 17 * x % 31 == 1


class TestInvmod:
    @given(st.integers(1, P_3MOD4 - 1))
    def test_inverse_property(self, a):
        assert a * invmod(a, P_3MOD4) % P_3MOD4 == 1

    def test_zero_raises(self):
        with pytest.raises(MathError):
            invmod(0, 97)

    def test_non_coprime_raises(self):
        with pytest.raises(MathError):
            invmod(6, 9)

    def test_negative_input(self):
        assert (-3) * invmod(-3, 97) % 97 == 1


class TestJacobi:
    def test_squares_are_residues(self):
        for x in range(1, 97):
            assert jacobi(x * x % 97, 97) == 1

    def test_zero(self):
        assert jacobi(0, 97) == 0

    def test_known_non_residue(self):
        # 5 is a non-residue mod 7 (squares mod 7: 1,2,4).
        assert jacobi(5, 7) == -1

    def test_even_modulus_raises(self):
        with pytest.raises(MathError):
            jacobi(3, 8)

    @given(st.integers(1, 10**6), st.integers(1, 10**6))
    def test_multiplicative_in_numerator(self, a, b):
        n = 1000003  # odd prime
        assert jacobi(a * b, n) == jacobi(a, n) * jacobi(b, n)


class TestSqrtMod:
    @given(st.integers(0, P_3MOD4 - 1))
    def test_roundtrip_3mod4(self, x):
        root = sqrt_mod(x * x % P_3MOD4, P_3MOD4)
        assert root * root % P_3MOD4 == x * x % P_3MOD4

    @given(st.integers(0, PRIME_1MOD4 - 1))
    def test_roundtrip_1mod4(self, x):
        assert PRIME_1MOD4 % 4 == 1
        root = sqrt_mod(x * x % PRIME_1MOD4, PRIME_1MOD4)
        assert root * root % PRIME_1MOD4 == x * x % PRIME_1MOD4

    def test_non_residue_raises(self):
        with pytest.raises(MathError):
            sqrt_mod(5, 7)

    def test_zero(self):
        assert sqrt_mod(0, 97) == 0


class TestCrt:
    @given(st.integers(0, 10**9))
    def test_recovers_value(self, x):
        m1, m2 = 10007, 10009
        r, m = crt_pair(x % m1, m1, x % m2, m2)
        assert m == m1 * m2
        assert r == x % m

    def test_inconsistent_raises(self):
        with pytest.raises(MathError):
            crt_pair(1, 4, 2, 6)  # x≡1 mod 4 implies odd; x≡2 mod 6 even

    def test_consistent_non_coprime(self):
        r, m = crt_pair(3, 4, 1, 6)
        assert m == 12
        assert r % 4 == 3 and r % 6 == 1


class TestByteCodec:
    @given(st.integers(0, 2**256))
    def test_roundtrip(self, n):
        assert bytes_to_int(int_to_bytes(n)) == n

    def test_fixed_length(self):
        assert int_to_bytes(1, 4) == b"\x00\x00\x00\x01"

    def test_zero_is_one_byte(self):
        assert int_to_bytes(0) == b"\x00"

    def test_negative_raises(self):
        with pytest.raises(MathError):
            int_to_bytes(-1)


class TestBatchInvmod:
    @given(st.lists(st.integers(1, P_3MOD4 - 1), min_size=1, max_size=20))
    def test_matches_invmod(self, values):
        from repro.math.integers import batch_invmod

        assert batch_invmod(values, P_3MOD4) == [
            invmod(v, P_3MOD4) for v in values
        ]

    def test_empty(self):
        from repro.math.integers import batch_invmod

        assert batch_invmod([], P_3MOD4) == []

    def test_zero_raises(self):
        from repro.math.integers import batch_invmod

        with pytest.raises(MathError):
            batch_invmod([1, 0, 2], P_3MOD4)

    def test_unreduced_inputs(self):
        from repro.math.integers import batch_invmod

        values = [P_3MOD4 + 2, -3]
        assert batch_invmod(values, P_3MOD4) == [
            invmod(v, P_3MOD4) for v in values
        ]

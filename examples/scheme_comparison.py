#!/usr/bin/env python3
"""Side-by-side comparison of the four implemented ABE designs.

Encrypts and decrypts the same logical policy with each scheme,
reporting ciphertext size, timing, and — most importantly — the
qualitative differences Table I of the paper summarizes:

* **Yang-Jia (this paper)** — multi-authority, no global authority,
  any LSSS policy;
* **Lewko-Waters**          — multi-authority, no global authority,
  any LSSS policy, but bigger ciphertexts;
* **Chase**                 — multi-authority but needs a central
  authority that can decrypt everything (demonstrated live);
* **BSW**                   — single authority only: one entity must
  manage every attribute in the system.

Run:  python examples/scheme_comparison.py
"""

import time

from repro.baselines import bsw, chase, lewko
from repro.core import MultiAuthorityABE
from repro.ec import TOY80
from repro.pairing.group import PairingGroup
from repro.system.sizes import measure

# The logical policy: one attribute from each of two domains.
# (Chase expresses it as 1-of-1 thresholds per authority, ANDed.)


def run_ours():
    scheme = MultiAuthorityABE(TOY80, seed=1)
    hospital = scheme.setup_authority("hospital", ["doctor"])
    trial = scheme.setup_authority("trial", ["researcher"])
    owner = scheme.setup_owner("alice", [hospital, trial])
    pk = scheme.register_user("bob")
    keys = {
        "hospital": hospital.keygen(pk, ["doctor"], "alice"),
        "trial": trial.keygen(pk, ["researcher"], "alice"),
    }
    message = scheme.random_message()
    start = time.perf_counter()
    ciphertext = owner.encrypt(
        message, "hospital:doctor AND trial:researcher"
    )
    encrypt_time = time.perf_counter() - start
    start = time.perf_counter()
    ok = scheme.decrypt(ciphertext, pk, keys) == message
    decrypt_time = time.perf_counter() - start
    size = ciphertext.element_size_bytes(scheme.group)
    return ok, size, encrypt_time, decrypt_time, "no global authority"


def run_lewko():
    group = PairingGroup(TOY80, seed=2)
    hospital = lewko.LewkoAuthority(group, "hospital", ["doctor"])
    trial = lewko.LewkoAuthority(group, "trial", ["researcher"])
    public = {}
    public.update(hospital.public_key().elements)
    public.update(trial.public_key().elements)
    keys = {
        "hospital": hospital.keygen("bob", ["doctor"]),
        "trial": trial.keygen("bob", ["researcher"]),
    }
    message = group.random_gt()
    start = time.perf_counter()
    ciphertext = lewko.encrypt(
        group, message, "hospital:doctor AND trial:researcher", public
    )
    encrypt_time = time.perf_counter() - start
    start = time.perf_counter()
    ok = lewko.decrypt(group, ciphertext, "bob", keys) == message
    decrypt_time = time.perf_counter() - start
    size = ciphertext.element_size_bytes(group)
    return ok, size, encrypt_time, decrypt_time, "no global authority"


def run_chase():
    group = PairingGroup(TOY80, seed=3)
    central = chase.ChaseCentralAuthority(group)
    hospital = chase.ChaseAuthority(group, "hospital", ["doctor"], 1, b"h")
    trial = chase.ChaseAuthority(group, "trial", ["researcher"], 1, b"t")
    central.register_authority(hospital)
    central.register_authority(trial)
    authorities = {
        "hospital": hospital, "trial": trial, "__central__": central,
    }
    keys = {
        "hospital": hospital.keygen("bob", ["doctor"]),
        "trial": trial.keygen("bob", ["researcher"]),
    }
    message = group.random_gt()
    start = time.perf_counter()
    ciphertext = chase.encrypt(
        group, message,
        {"hospital": ["doctor"], "trial": ["researcher"]}, authorities,
    )
    encrypt_time = time.perf_counter() - start
    start = time.perf_counter()
    ok = chase.decrypt(
        group, ciphertext, central.central_key("bob"), keys
    ) == message
    decrypt_time = time.perf_counter() - start
    size = (
        group.gt_bytes
        + group.g1_bytes * (1 + len(ciphertext.per_attribute))
    )
    # The central-authority flaw, live:
    ca_reads = central.central_authority_decrypt(ciphertext) == message
    note = ("CENTRAL AUTHORITY DECRYPTS EVERYTHING"
            if ca_reads else "central authority contained")
    return ok, size, encrypt_time, decrypt_time, note


def run_bsw():
    group = PairingGroup(TOY80, seed=4)
    scheme = bsw.BswScheme(group)
    key = scheme.keygen(["hospital:doctor", "trial:researcher"])
    message = group.random_gt()
    start = time.perf_counter()
    ciphertext = scheme.encrypt(
        message, "hospital:doctor AND trial:researcher"
    )
    encrypt_time = time.perf_counter() - start
    start = time.perf_counter()
    ok = scheme.decrypt(ciphertext, key) == message
    decrypt_time = time.perf_counter() - start
    size = measure(ciphertext, group)
    return ok, size, encrypt_time, decrypt_time, (
        "single authority manages ALL attributes"
    )


def main():
    print("Policy: hospital:doctor AND trial:researcher "
          "(preset TOY80 — toy sizes, relative numbers only)\n")
    header = (f"{'Scheme':<14} {'OK':<4} {'CT bytes':>9} "
              f"{'enc ms':>8} {'dec ms':>8}  trust model")
    print(header)
    print("-" * (len(header) + 24))
    for name, runner in (
        ("Yang-Jia", run_ours),
        ("Lewko-Waters", run_lewko),
        ("Chase", run_chase),
        ("BSW", run_bsw),
    ):
        ok, size, enc, dec, note = runner()
        print(f"{name:<14} {'yes' if ok else 'NO':<4} {size:>9} "
              f"{enc * 1000:>8.1f} {dec * 1000:>8.1f}  {note}")


if __name__ == "__main__":
    main()

"""Tests for the Fig. 2 record format."""

import pytest

from repro.core.scheme import MultiAuthorityABE
from repro.crypto import symmetric
from repro.ec.params import TOY80
from repro.errors import StorageError
from repro.system.records import StoredComponent, StoredRecord


@pytest.fixture(scope="module")
def record():
    scheme = MultiAuthorityABE(TOY80, seed=555)
    hospital = scheme.setup_authority("hospital", ["doctor"])
    owner = scheme.setup_owner("alice", [hospital])
    components = {}
    for name in ("a", "b"):
        ct = owner.encrypt(
            scheme.random_message(), "hospital:doctor",
            ciphertext_id=f"rec/{name}",
        )
        components[name] = StoredComponent(
            name=name,
            abe_ciphertext=ct,
            data_ciphertext=symmetric.encrypt(bytes(32), b"payload-" + name.encode()),
        )
    return scheme, StoredRecord(
        record_id="rec", owner_id="alice", components=components
    )


class TestStoredRecord:
    def test_component_lookup(self, record):
        _, stored = record
        assert stored.component("a").name == "a"
        assert stored.component_names() == ("a", "b")

    def test_missing_component_raises(self, record):
        _, stored = record
        with pytest.raises(StorageError):
            stored.component("zz")

    def test_payload_size_sums_components(self, record):
        scheme, stored = record
        group = scheme.group
        total = sum(
            component.payload_size_bytes(group)
            for component in stored.components.values()
        )
        assert stored.payload_size_bytes(group) == total

    def test_component_size_formula(self, record):
        scheme, stored = record
        group = scheme.group
        component = stored.component("a")
        expected = component.abe_ciphertext.element_size_bytes(group) + len(
            component.data_ciphertext
        )
        assert component.payload_size_bytes(group) == expected

    def test_with_component_replaces(self, record):
        scheme, stored = record
        replacement = StoredComponent(
            name="a",
            abe_ciphertext=stored.component("a").abe_ciphertext,
            data_ciphertext=symmetric.encrypt(bytes(32), b"new"),
        )
        updated = stored.with_component(replacement)
        assert updated.component("a") is replacement
        assert updated.component("b") is stored.component("b")
        # original untouched
        assert stored.component("a") is not replacement

    def test_with_component_unknown_name(self, record):
        _, stored = record
        bogus = StoredComponent(
            name="zz",
            abe_ciphertext=stored.component("a").abe_ciphertext,
            data_ciphertext=stored.component("a").data_ciphertext,
        )
        with pytest.raises(StorageError):
            stored.with_component(bogus)

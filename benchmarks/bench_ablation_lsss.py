"""Ablation C: threshold handling in the LSSS layer.

The paper supports "any LSSS access structure" but, with the standard
OR-of-ANDs expansion, a k-of-n threshold costs C(n, k)·k matrix rows and
breaks the injective-ρ requirement. The Vandermonde insertion
construction (``threshold_method="insert"``) costs n rows and keeps ρ
injective. This bench quantifies the gap on ciphertext size and
encryption time for growing thresholds.
"""

import pytest

from benchmarks.conftest import PRESET, run_once
from repro.core.authority import AttributeAuthority
from repro.core.ca import CertificateAuthority
from repro.core.owner import DataOwner
from repro.pairing.group import PairingGroup
from repro.policy.lsss import lsss_from_policy

CASES = [(2, 4), (3, 6), (4, 8)]


def _policy(k, n):
    attributes = ", ".join(f"aa:x{i}" for i in range(n))
    return f"{k} of ({attributes})"


@pytest.fixture(scope="module")
def world():
    group = PairingGroup(PRESET, seed=77)
    ca = CertificateAuthority(group)
    ca.register_authority("aa")
    names = [f"x{i}" for i in range(8)]
    authority = AttributeAuthority(group, "aa", names)
    owner = DataOwner(group, "owner")
    authority.register_owner(owner.secret_key)
    owner.learn_authority(
        authority.authority_public_key(), authority.public_attribute_keys()
    )
    return group, owner


@pytest.mark.parametrize("k,n", CASES)
def test_encrypt_threshold_expand(benchmark, world, k, n):
    group, owner = world
    benchmark.group = f"ablation lsss {k}-of-{n}"
    message = group.random_gt()
    ciphertext = run_once(
        benchmark, lambda: owner.encrypt(
            message, _policy(k, n), require_injective_rho=False,
            threshold_method="expand",
        )
    )
    matrix = lsss_from_policy(_policy(k, n), threshold_method="expand")
    assert ciphertext.n_rows == matrix.n_rows
    print(f"\n[ablation-lsss] expand {k}-of-{n}: {ciphertext.n_rows} rows, "
          f"{ciphertext.element_size_bytes(group)} B ciphertext")


@pytest.mark.parametrize("k,n", CASES)
def test_encrypt_threshold_insert(benchmark, world, k, n):
    group, owner = world
    benchmark.group = f"ablation lsss {k}-of-{n}"
    message = group.random_gt()
    ciphertext = run_once(
        benchmark, lambda: owner.encrypt(
            message, _policy(k, n), threshold_method="insert",
        )
    )
    assert ciphertext.n_rows == n
    print(f"\n[ablation-lsss] insert {k}-of-{n}: {ciphertext.n_rows} rows, "
          f"{ciphertext.element_size_bytes(group)} B ciphertext")

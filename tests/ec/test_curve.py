"""Tests for the supersingular curve group law."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ec.curve import INFINITY, SupersingularCurve
from repro.ec.params import TOY80
from repro.errors import MathError, ParameterError
from repro.math.field import PrimeField

FIELD = PrimeField(TOY80.p, check_prime=False)
CURVE = SupersingularCurve(FIELD)
G = TOY80.generator
R = TOY80.r

scalars = st.integers(1, R - 1)


def mul(k):
    return CURVE.mul(G, k)


class TestConstruction:
    def test_requires_3_mod_4(self):
        with pytest.raises(ParameterError):
            SupersingularCurve(PrimeField(13))

    def test_generator_on_curve(self):
        assert CURVE.is_on_curve(G)

    def test_check_rejects_off_curve(self):
        with pytest.raises(MathError):
            CURVE.check((1, 1))

    def test_infinity_on_curve(self):
        assert CURVE.is_on_curve(INFINITY)


class TestGroupLaw:
    @given(scalars, scalars)
    def test_add_commutative(self, a, b):
        assert CURVE.add(mul(a), mul(b)) == CURVE.add(mul(b), mul(a))

    @given(scalars, scalars, scalars)
    def test_add_associative(self, a, b, c):
        left = CURVE.add(CURVE.add(mul(a), mul(b)), mul(c))
        right = CURVE.add(mul(a), CURVE.add(mul(b), mul(c)))
        assert left == right

    @given(scalars)
    def test_identity(self, a):
        point = mul(a)
        assert CURVE.add(point, INFINITY) == point
        assert CURVE.add(INFINITY, point) == point

    @given(scalars)
    def test_inverse(self, a):
        point = mul(a)
        assert CURVE.add(point, CURVE.neg(point)) is INFINITY

    @given(scalars)
    def test_double_matches_add(self, a):
        point = mul(a)
        assert CURVE.double(point) == CURVE.add(point, point)

    @given(scalars, scalars)
    def test_mul_homomorphism(self, a, b):
        assert CURVE.add(mul(a), mul(b)) == mul((a + b) % R)

    @given(scalars)
    def test_results_stay_on_curve(self, a):
        assert CURVE.is_on_curve(mul(a))

    def test_generator_has_order_r(self):
        assert CURVE.mul(G, R) is INFINITY
        assert CURVE.mul(G, 1) == G

    @given(scalars)
    def test_negative_scalar(self, a):
        assert CURVE.mul(G, -a) == CURVE.neg(mul(a))

    def test_mul_zero(self):
        assert CURVE.mul(G, 0) is INFINITY
        assert CURVE.mul(INFINITY, 12345) is INFINITY

    @given(scalars)
    def test_sub(self, a):
        assert CURVE.sub(mul(a), mul(a)) is INFINITY


class TestPointConstruction:
    def test_lift_x_roundtrip(self):
        x, y = G
        lifted = CURVE.lift_x(x, parity=y % 2)
        assert lifted == G

    def test_lift_x_other_parity_is_negation(self):
        x, y = G
        lifted = CURVE.lift_x(x, parity=(y + 1) % 2)
        assert lifted == CURVE.neg(G)

    def test_lift_x_non_residue_returns_none(self):
        found_none = any(
            CURVE.lift_x(x) is None for x in range(2, 200)
        )
        assert found_none

    def test_random_point_on_curve(self):
        rng = random.Random(4)
        for _ in range(10):
            assert CURVE.is_on_curve(CURVE.random_point(rng))

    @given(st.integers(0, R - 1))
    def test_jacobian_mul_matches_affine_reference(self, scalar):
        """The Jacobian fast path must agree with plain affine
        double-and-add for every scalar."""
        def affine_mul(point, k):
            result = INFINITY
            addend = point
            while k:
                if k & 1:
                    result = CURVE.add(result, addend)
                addend = CURVE.double(addend)
                k >>= 1
            return result

        assert CURVE.mul(G, scalar) == affine_mul(G, scalar)

    def test_jacobian_handles_add_to_negation(self):
        # Scalar path that forces the H == 0, r != 0 branch cannot occur
        # for prime-order points, but near-order scalars stress the
        # doubling-heavy paths.
        for scalar in (R - 1, R - 2, (R + 1) // 2):
            assert CURVE.is_on_curve(CURVE.mul(G, scalar))
            assert CURVE.add(CURVE.mul(G, R - 1), G) is INFINITY

    def test_full_group_order(self):
        # #E(F_p) = p + 1 for this supersingular family: any point killed
        # by p + 1.
        rng = random.Random(5)
        point = CURVE.random_point(rng)
        assert CURVE.mul(point, TOY80.p + 1) is INFINITY

"""Closed-form cost models for Tables II, III and IV of the paper.

Each table entry is a :class:`Cost` — a count of Z_p scalars, G elements
and GT elements — for both the reproduced scheme ("ours") and the
Lewko-Waters baseline. The models are written next to the paper's
printed formulas; where the implementation's true count differs from the
paper's print (one known case, see below), both are exposed so the
benchmark output can show the discrepancy instead of hiding it.

Known print discrepancy: Table II/III/IV give the user secret key as
``|G| + Σ_k n_{k,UID}·|G|`` — a *single* non-attribute component — but
the construction issues one ``K_{UID,AID}`` per authority, so the true
count is ``n_A·|G| + Σ_k n_{k,UID}·|G|``. The measured sizes in
``bench_table2_components`` confirm the implementation count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pairing.serialize import ElementSizes


@dataclass(frozen=True)
class SystemShape:
    """The parameters the paper's tables range over.

    ``n_authorities`` — n_A, authorities involved;
    ``attrs_per_authority`` — n_k, attributes each authority manages;
    ``user_attrs_per_authority`` — n_{k,UID}, attributes the user holds
    from each authority;
    ``policy_rows`` — l, total LSSS rows in the ciphertext.
    """

    n_authorities: int
    attrs_per_authority: int
    user_attrs_per_authority: int
    policy_rows: int

    def __post_init__(self):
        for name in (
            "n_authorities",
            "attrs_per_authority",
            "user_attrs_per_authority",
            "policy_rows",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")


@dataclass(frozen=True)
class Cost:
    """An element-count bundle with its symbolic formula."""

    zr: int = 0
    g1: int = 0
    gt: int = 0
    formula: str = ""

    def bytes(self, sizes: ElementSizes) -> int:
        return sizes.of(n_zr=self.zr, n_g1=self.g1, n_gt=self.gt)

    def __add__(self, other: "Cost") -> "Cost":
        return Cost(
            zr=self.zr + other.zr,
            g1=self.g1 + other.g1,
            gt=self.gt + other.gt,
            formula=f"{self.formula} + {other.formula}".strip(" +"),
        )


# ---------------------------------------------------------------------------
# Table II — size of each component
# ---------------------------------------------------------------------------

def table2_ours(shape: SystemShape) -> dict:
    """Component sizes of the reproduced scheme."""
    n_a = shape.n_authorities
    n_k = shape.attrs_per_authority
    n_ku = shape.user_attrs_per_authority
    l = shape.policy_rows
    return {
        "authority_key": Cost(zr=1, formula="|p|"),
        "public_key": Cost(
            g1=n_a * n_k, gt=n_a, formula="Σ_k (n_k·|G| + |GT|)"
        ),
        "secret_key": Cost(
            g1=n_a + n_a * n_ku,
            formula="n_A·|G| + Σ_k n_k,UID·|G|  (paper prints |G| + Σ_k n_k,UID·|G|)",
        ),
        "ciphertext": Cost(g1=l + 1, gt=1, formula="|GT| + (l+1)·|G|"),
    }


def table2_lewko(shape: SystemShape) -> dict:
    """Component sizes of Lewko-Waters (prime-order)."""
    n_a = shape.n_authorities
    n_k = shape.attrs_per_authority
    n_ku = shape.user_attrs_per_authority
    l = shape.policy_rows
    return {
        "authority_key": Cost(zr=2 * n_a * n_k, formula="n_k·(|p| + |p|) per AA"),
        "public_key": Cost(
            g1=n_a * n_k, gt=n_a * n_k, formula="Σ_k n_k·(|GT| + |G|)"
        ),
        "secret_key": Cost(g1=n_a * n_ku, formula="Σ_k n_k,UID·|G|"),
        "ciphertext": Cost(
            g1=2 * l, gt=l + 1, formula="(l+1)·|GT| + 2l·|G|"
        ),
    }


# ---------------------------------------------------------------------------
# Table III — storage overhead per entity
# ---------------------------------------------------------------------------

def table3_ours(shape: SystemShape) -> dict:
    n_a = shape.n_authorities
    n_k = shape.attrs_per_authority
    n_ku = shape.user_attrs_per_authority
    l = shape.policy_rows
    return {
        "authority": Cost(zr=1, formula="|p|"),
        "owner": Cost(
            zr=2, g1=n_a * n_k, gt=n_a,
            formula="2|p| + Σ_k (n_k·|G| + |GT|)",
        ),
        "user": Cost(
            g1=n_a + n_a * n_ku,
            formula="n_A·|G| + Σ_k n_k,UID·|G|  (paper prints |G| + Σ)",
        ),
        "server": Cost(g1=l + 1, gt=1, formula="|GT| + (l+1)·|G|"),
    }


def table3_lewko(shape: SystemShape) -> dict:
    n_a = shape.n_authorities
    n_k = shape.attrs_per_authority
    n_ku = shape.user_attrs_per_authority
    l = shape.policy_rows
    return {
        "authority": Cost(zr=2 * n_k, formula="2·n_k·|p|"),
        "owner": Cost(
            g1=n_a * n_k, gt=n_a * n_k, formula="Σ_k n_k·(|GT| + |G|)"
        ),
        "user": Cost(g1=n_a * n_ku, formula="Σ_k n_k,UID·|G|"),
        "server": Cost(g1=2 * l, gt=l + 1, formula="(l+1)·|GT| + 2l·|G|"),
    }


# ---------------------------------------------------------------------------
# Table IV — communication cost per channel
# ---------------------------------------------------------------------------

def table4_ours(shape: SystemShape) -> dict:
    n_a = shape.n_authorities
    n_k = shape.attrs_per_authority
    n_ku = shape.user_attrs_per_authority
    l = shape.policy_rows
    ciphertext = Cost(g1=l + 1, gt=1, formula="|GT| + (l+1)·|G|")
    return {
        ("aa", "user"): Cost(
            g1=n_a + n_a * n_ku,
            formula="n_A·|G| + Σ_k n_k,UID·|G|  (paper prints |G| + Σ)",
        ),
        ("aa", "owner"): Cost(
            g1=n_a * n_k, gt=n_a, formula="Σ_k (n_k·|G| + |GT|)"
        ),
        ("server", "user"): ciphertext,
        ("owner", "server"): ciphertext,
    }


def table4_lewko(shape: SystemShape) -> dict:
    n_a = shape.n_authorities
    n_k = shape.attrs_per_authority
    n_ku = shape.user_attrs_per_authority
    l = shape.policy_rows
    ciphertext = Cost(g1=2 * l, gt=l + 1, formula="(l+1)·|GT| + 2l·|G|")
    return {
        ("aa", "user"): Cost(g1=n_a * n_ku, formula="Σ_k n_k,UID·|G|"),
        ("aa", "owner"): Cost(
            g1=n_a * n_k, gt=n_a * n_k, formula="Σ_k n_k·(|GT| + |G|)"
        ),
        ("server", "user"): ciphertext,
        ("owner", "server"): ciphertext,
    }


# ---------------------------------------------------------------------------
# Operation-count models (predict the Figure 3/4 timing shapes)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class OperationCounts:
    """Dominant crypto operations of one algorithm run."""

    pairings: int = 0
    g1_exponentiations: int = 0
    gt_exponentiations: int = 0

    def weighted(self, pairing_cost: float, g1_cost: float,
                 gt_cost: float) -> float:
        """Predicted time given per-operation costs (for shape checks)."""
        return (
            self.pairings * pairing_cost
            + self.g1_exponentiations * g1_cost
            + self.gt_exponentiations * gt_cost
        )


def encrypt_ops_ours(shape: SystemShape) -> OperationCounts:
    """Per Phase 3: C (1 GT exp), C' (1 G exp), each row 2 G exps."""
    l = shape.policy_rows
    return OperationCounts(
        pairings=0, g1_exponentiations=1 + 2 * l, gt_exponentiations=1
    )


def encrypt_ops_lewko(shape: SystemShape) -> OperationCounts:
    """Per row: 2 GT exps (C1) + 1 G exp (C2) + 2 G exps (C3); plus C0."""
    l = shape.policy_rows
    return OperationCounts(
        pairings=0, g1_exponentiations=3 * l, gt_exponentiations=1 + 2 * l
    )


def decrypt_ops_ours(shape: SystemShape) -> OperationCounts:
    """Eq. (1): n_A numerator pairings + 2 per used row + 1 GT exp per row."""
    rows = shape.n_authorities * shape.user_attrs_per_authority
    return OperationCounts(
        pairings=shape.n_authorities + 2 * rows,
        g1_exponentiations=0,
        gt_exponentiations=rows,
    )


def decrypt_ops_lewko(shape: SystemShape) -> OperationCounts:
    """Per used row: 2 pairings + 1 GT exp (the c_x power)."""
    rows = shape.n_authorities * shape.user_attrs_per_authority
    return OperationCounts(
        pairings=2 * rows, g1_exponentiations=0, gt_exponentiations=rows
    )

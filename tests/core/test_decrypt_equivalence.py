"""decrypt and decrypt_fast must agree on every authorized scenario.

The faithful Eq.-(1) path and the multi-pairing rewrite are different
arithmetic over the same algebra; hypothesis drives random policies and
attribute assignments through both (plus the outsourcing path, which is
a third factoring of the same computation).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decrypt import decrypt, decrypt_fast
from repro.core.outsourcing import (
    make_transform_key,
    server_transform,
    user_finalize,
)
from repro.core.scheme import MultiAuthorityABE
from repro.ec.params import TOY80
from repro.policy.ast import And, Attribute, Or

H_ATTRS = ["doctor", "nurse"]
T_ATTRS = ["researcher"]
UNIVERSE = [f"h:{a}" for a in H_ATTRS] + [f"t:{a}" for a in T_ATTRS]


@pytest.fixture(scope="module")
def world():
    scheme = MultiAuthorityABE(TOY80, seed=777888)
    h = scheme.setup_authority("h", H_ATTRS)
    t = scheme.setup_authority("t", T_ATTRS)
    owner = scheme.setup_owner("owner", [h, t])
    public = scheme.register_user("u")
    keys = {
        "h": h.keygen(public, H_ATTRS, "owner"),
        "t": t.keygen(public, T_ATTRS, "owner"),
    }
    return scheme, owner, public, keys


def _policies():
    leaf = st.sampled_from(UNIVERSE).map(Attribute)

    def extend(children):
        pairs = st.lists(children, min_size=2, max_size=3)
        return st.one_of(pairs.map(And), pairs.map(Or))

    return st.recursive(leaf, extend, max_leaves=4)


@settings(max_examples=15, deadline=None)
@given(policy=_policies())
def test_three_decryption_paths_agree(world, policy):
    scheme, owner, public, keys = world
    message = scheme.random_message()
    ciphertext = owner.encrypt(message, policy, require_injective_rho=False)
    group = scheme.group

    faithful = decrypt(group, ciphertext, public, keys)
    fast = decrypt_fast(group, ciphertext, public, keys)
    transform, retrieval = make_transform_key(group, public, keys)
    outsourced = user_finalize(
        ciphertext, server_transform(group, ciphertext, transform), retrieval
    )
    assert faithful == fast == outsourced == message

"""Wire formats for every key type of the scheme.

Ciphertexts serialize in :mod:`repro.core.ciphertext`; this module covers
the key material that actually travels between entities — user public
keys from the CA, owner secret keys to the AAs, public attribute keys
and authority public keys to owners, user secret keys to users, and
update keys / update information during revocation.

Format: a length-prefixed JSON header carrying identifiers, versions and
the attribute-name order, followed by fixed-width group elements in that
order. The byte counts agree exactly with :mod:`repro.system.sizes` up
to the header (identifiers), which both compared schemes share equally.
"""

from __future__ import annotations

import json

from repro.core.keys import (
    AuthorityPublicKey,
    CiphertextUpdateInfo,
    OwnerSecretKey,
    PublicAttributeKeys,
    UpdateKey,
    UserPublicKey,
    UserSecretKey,
)
from repro.errors import SchemeError
from repro.pairing.group import PairingGroup


def _pack(header: dict, body: bytes) -> bytes:
    raw = json.dumps(header, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )
    return len(raw).to_bytes(4, "big") + raw + body


def _unpack(data: bytes) -> tuple:
    """Split a length-prefixed JSON header from its binary body.

    Every failure mode of a hostile encoding — truncated prefix,
    oversized declared length, undecodable/invalid JSON, or a header
    that is valid JSON but not an object — raises :class:`SchemeError`;
    no stdlib exception ever escapes to the caller.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise SchemeError("key encodings must be bytes")
    data = bytes(data)
    if len(data) < 4:
        raise SchemeError("truncated key encoding")
    header_len = int.from_bytes(data[:4], "big")
    if header_len > len(data) - 4:
        raise SchemeError("truncated key header")
    try:
        header = json.loads(data[4:4 + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SchemeError("malformed key header") from exc
    if not isinstance(header, dict):
        raise SchemeError("key header is not a JSON object")
    return header, data[4 + header_len:]


def _header_str(header: dict, key: str) -> str:
    value = header.get(key)
    if not isinstance(value, str):
        raise SchemeError(f"key header field {key!r} missing or not a string")
    return value


def _header_int(header: dict, key: str) -> int:
    value = header.get(key)
    if isinstance(value, bool) or not isinstance(value, int):
        raise SchemeError(f"key header field {key!r} missing or not an integer")
    return value


def _header_str_list(header: dict, key: str) -> list:
    value = header.get(key)
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise SchemeError(
            f"key header field {key!r} missing or not a list of strings"
        )
    if len(set(value)) != len(value):
        raise SchemeError(f"key header field {key!r} has duplicate entries")
    return value


def _split_elements(group: PairingGroup, body: bytes, count: int, *,
                    check_subgroup: bool = True) -> list:
    width = group.g1_bytes
    if len(body) != count * width:
        raise SchemeError(
            f"key body has {len(body)} bytes; expected {count * width}"
        )
    return [
        group.decode_g1(body[i * width:(i + 1) * width],
                        check_subgroup=check_subgroup)
        for i in range(count)
    ]


# -- UserPublicKey ------------------------------------------------------------

def encode_user_public_key(key: UserPublicKey) -> bytes:
    return _pack({"kind": "upk", "uid": key.uid}, key.element.to_bytes())


def decode_user_public_key(group: PairingGroup, data: bytes) -> UserPublicKey:
    header, body = _unpack(data)
    if header.get("kind") != "upk":
        raise SchemeError("not a user public key encoding")
    (element,) = _split_elements(group, body, 1)
    return UserPublicKey(uid=_header_str(header, "uid"), element=element)


# -- OwnerSecretKey -------------------------------------------------------------

def encode_owner_secret_key(group: PairingGroup, key: OwnerSecretKey) -> bytes:
    body = key.g_inv_beta.to_bytes() + group.encode_scalar(key.r_over_beta)
    return _pack({"kind": "osk", "owner": key.owner_id}, body)


def decode_owner_secret_key(group: PairingGroup, data: bytes) -> OwnerSecretKey:
    header, body = _unpack(data)
    if header.get("kind") != "osk":
        raise SchemeError("not an owner secret key encoding")
    width = group.g1_bytes
    if len(body) != width + group.scalar_bytes:
        raise SchemeError("owner secret key body has the wrong length")
    return OwnerSecretKey(
        owner_id=_header_str(header, "owner"),
        g_inv_beta=group.decode_g1(body[:width]),
        r_over_beta=group.decode_scalar(body[width:]),
    )


# -- AuthorityPublicKey ------------------------------------------------------------

def encode_authority_public_key(key: AuthorityPublicKey) -> bytes:
    return _pack(
        {"kind": "apk", "aid": key.aid, "version": key.version},
        key.value.to_bytes(),
    )


def decode_authority_public_key(group: PairingGroup,
                                data: bytes) -> AuthorityPublicKey:
    header, body = _unpack(data)
    if header.get("kind") != "apk":
        raise SchemeError("not an authority public key encoding")
    if len(body) != group.gt_bytes:
        raise SchemeError("authority public key body has the wrong length")
    return AuthorityPublicKey(
        aid=_header_str(header, "aid"),
        value=group.decode_gt(body),
        version=_header_int(header, "version"),
    )


# -- PublicAttributeKeys --------------------------------------------------------------

def encode_public_attribute_keys(key: PublicAttributeKeys) -> bytes:
    names = sorted(key.elements)
    body = b"".join(key.elements[name].to_bytes() for name in names)
    return _pack(
        {"kind": "pak", "aid": key.aid, "version": key.version,
         "attrs": names},
        body,
    )


def decode_public_attribute_keys(group: PairingGroup,
                                 data: bytes) -> PublicAttributeKeys:
    header, body = _unpack(data)
    if header.get("kind") != "pak":
        raise SchemeError("not a public attribute key encoding")
    names = _header_str_list(header, "attrs")
    elements = dict(zip(names, _split_elements(group, body, len(names))))
    return PublicAttributeKeys(
        aid=_header_str(header, "aid"),
        elements=elements,
        version=_header_int(header, "version"),
    )


# -- UserSecretKey ---------------------------------------------------------------------

def encode_user_secret_key(key: UserSecretKey) -> bytes:
    names = sorted(key.attribute_keys)
    body = key.k.to_bytes() + b"".join(
        key.attribute_keys[name].to_bytes() for name in names
    )
    return _pack(
        {
            "kind": "usk",
            "uid": key.uid,
            "aid": key.aid,
            "owner": key.owner_id,
            "version": key.version,
            "attrs": names,
        },
        body,
    )


def decode_user_secret_key(group: PairingGroup, data: bytes) -> UserSecretKey:
    header, body = _unpack(data)
    if header.get("kind") != "usk":
        raise SchemeError("not a user secret key encoding")
    names = _header_str_list(header, "attrs")
    elements = _split_elements(group, body, 1 + len(names))
    return UserSecretKey(
        uid=_header_str(header, "uid"),
        aid=_header_str(header, "aid"),
        owner_id=_header_str(header, "owner"),
        k=elements[0],
        attribute_keys=dict(zip(names, elements[1:])),
        version=_header_int(header, "version"),
    )


# -- TransformKey ----------------------------------------------------------------------

def encode_transform_key(key) -> bytes:
    """Wire form of a :class:`repro.core.outsourcing.TransformKey`.

    One user-secret-key-shaped block per authority (sorted by AID),
    prefixed by the transformed public element; headers carry the
    per-authority versions so the server can index its transform-key
    cache without decoding any group element.
    """
    aids = sorted(key.transformed_secret)
    per_aid = {}
    body = key.transformed_public.element.to_bytes()
    for aid in aids:
        secret = key.transformed_secret[aid]
        names = sorted(secret.attribute_keys)
        per_aid[aid] = {"version": secret.version, "attrs": names}
        body += secret.k.to_bytes() + b"".join(
            secret.attribute_keys[name].to_bytes() for name in names
        )
    return _pack(
        {
            "kind": "tk",
            "uid": key.uid,
            "owner": key.owner_id,
            "aids": aids,
            "keys": per_aid,
        },
        body,
    )


def peek_transform_key(data: bytes) -> dict:
    """Header fields of a TK encoding without decoding any element.

    Returns ``{"uid", "owner", "versions": {aid: version}}`` — what the
    service needs to key and invalidate its transform-key cache.
    """
    header, _ = _unpack(data)
    if header.get("kind") != "tk":
        raise SchemeError("not a transform key encoding")
    _, per_aid = _transform_key_layout(header)
    return {
        "uid": _header_str(header, "uid"),
        "owner": _header_str(header, "owner"),
        "versions": {aid: meta[0] for aid, meta in per_aid.items()},
    }


def _transform_key_layout(header: dict) -> tuple:
    """Validated ``(aids, {aid: (version, attrs)})`` of a TK header."""
    aids = _header_str_list(header, "aids")
    per_aid_raw = header.get("keys")
    if not isinstance(per_aid_raw, dict) or set(per_aid_raw) != set(aids):
        raise SchemeError(
            "transform key header field 'keys' missing or inconsistent "
            "with 'aids'"
        )
    per_aid = {}
    for aid in aids:
        meta = per_aid_raw[aid]
        if not isinstance(meta, dict):
            raise SchemeError("transform key per-authority entry malformed")
        per_aid[aid] = (
            _header_int(meta, "version"),
            _header_str_list(meta, "attrs"),
        )
    return aids, per_aid


def decode_transform_key(group: PairingGroup, data: bytes, *,
                         check_subgroup: bool = True):
    from repro.core.outsourcing import TransformKey

    header, body = _unpack(data)
    if header.get("kind") != "tk":
        raise SchemeError("not a transform key encoding")
    uid = _header_str(header, "uid")
    owner_id = _header_str(header, "owner")
    aids, per_aid = _transform_key_layout(header)
    count = 1 + sum(1 + len(attrs) for _, attrs in per_aid.values())
    elements = iter(_split_elements(group, body, count,
                                    check_subgroup=check_subgroup))
    public = UserPublicKey(uid=uid, element=next(elements))
    transformed_secret = {}
    for aid in aids:
        version, names = per_aid[aid]
        k = next(elements)
        transformed_secret[aid] = UserSecretKey(
            uid=uid,
            aid=aid,
            owner_id=owner_id,
            k=k,
            attribute_keys={name: next(elements) for name in names},
            version=version,
        )
    return TransformKey(
        uid=uid,
        owner_id=owner_id,
        transformed_public=public,
        transformed_secret=transformed_secret,
    )


# -- UpdateKey ----------------------------------------------------------------------------

def encode_update_key(group: PairingGroup, key: UpdateKey) -> bytes:
    owners = sorted(key.uk1)
    body = b"".join(key.uk1[owner].to_bytes() for owner in owners)
    body += group.encode_scalar(key.uk2)
    return _pack(
        {
            "kind": "uk",
            "aid": key.aid,
            "owners": owners,
            "from": key.from_version,
            "to": key.to_version,
        },
        body,
    )


def decode_update_key(group: PairingGroup, data: bytes, *,
                      check_subgroup: bool = True) -> UpdateKey:
    header, body = _unpack(data)
    if header.get("kind") != "uk":
        raise SchemeError("not an update key encoding")
    owners = _header_str_list(header, "owners")
    width = group.g1_bytes
    expected = len(owners) * width + group.scalar_bytes
    if len(body) != expected:
        raise SchemeError("update key body has the wrong length")
    uk1 = {
        owner: group.decode_g1(body[i * width:(i + 1) * width],
                               check_subgroup=check_subgroup)
        for i, owner in enumerate(owners)
    }
    uk2 = group.decode_scalar(body[len(owners) * width:])
    return UpdateKey(
        aid=_header_str(header, "aid"),
        uk1=uk1,
        uk2=uk2,
        from_version=_header_int(header, "from"),
        to_version=_header_int(header, "to"),
    )


# -- CiphertextUpdateInfo ----------------------------------------------------------------------

def encode_update_info(info: CiphertextUpdateInfo) -> bytes:
    names = sorted(info.elements)
    body = b"".join(info.elements[name].to_bytes() for name in names)
    return _pack(
        {
            "kind": "ui",
            "aid": info.aid,
            "ct": info.ciphertext_id,
            "attrs": names,
            "from": info.from_version,
            "to": info.to_version,
        },
        body,
    )


def decode_update_info(group: PairingGroup, data: bytes, *,
                       check_subgroup: bool = True) -> CiphertextUpdateInfo:
    header, body = _unpack(data)
    if header.get("kind") != "ui":
        raise SchemeError("not an update information encoding")
    names = _header_str_list(header, "attrs")
    elements = dict(zip(names, _split_elements(
        group, body, len(names), check_subgroup=check_subgroup
    )))
    return CiphertextUpdateInfo(
        aid=_header_str(header, "aid"),
        ciphertext_id=_header_str(header, "ct"),
        elements=elements,
        from_version=_header_int(header, "from"),
        to_version=_header_int(header, "to"),
    )


def peek_update_info(data: bytes) -> dict:
    """Header fields of a UI encoding without decoding any group element.

    The bulk sweep uses this to match update information to the store's
    ciphertext-id index (and to meter it in Table II units) before the
    expensive element decode happens in a worker. Returns
    ``{"aid", "ct", "from", "to", "attrs"}``.
    """
    header, _ = _unpack(data)
    if header.get("kind") != "ui":
        raise SchemeError("not an update information encoding")
    return {
        "aid": _header_str(header, "aid"),
        "ct": _header_str(header, "ct"),
        "from": _header_int(header, "from"),
        "to": _header_int(header, "to"),
        "attrs": _header_str_list(header, "attrs"),
    }


def decode_update_infos(group: PairingGroup, blobs) -> list:
    """Decode many UI encodings in one pass.

    All element encodings across the batch go through
    :meth:`repro.pairing.group.PairingGroup.decode_g1_batch`, which
    subgroup-checks every point individually (a combined
    random-linear-combination check is unsound against the curve's
    small-order residuals — see that method). Malformed encodings raise
    :class:`SchemeError` exactly as :func:`decode_update_info` would.
    """
    parsed = []
    element_blobs = []
    width = group.g1_bytes
    for data in blobs:
        header, body = _unpack(data)
        if header.get("kind") != "ui":
            raise SchemeError("not an update information encoding")
        names = _header_str_list(header, "attrs")
        if len(body) != len(names) * width:
            raise SchemeError(
                f"key body has {len(body)} bytes; "
                f"expected {len(names) * width}"
            )
        parsed.append((header, names))
        element_blobs.extend(
            body[i * width:(i + 1) * width] for i in range(len(names))
        )
    elements = iter(group.decode_g1_batch(element_blobs))
    infos = []
    for header, names in parsed:
        infos.append(CiphertextUpdateInfo(
            aid=_header_str(header, "aid"),
            ciphertext_id=_header_str(header, "ct"),
            elements={name: next(elements) for name in names},
            from_version=_header_int(header, "from"),
            to_version=_header_int(header, "to"),
        ))
    return infos

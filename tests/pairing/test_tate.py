"""Property tests for the reduced Tate pairing."""

from hypothesis import given
from hypothesis import strategies as st

from repro.ec.curve import INFINITY, SupersingularCurve
from repro.ec.params import TOY80
from repro.math.field import PrimeField
from repro.math.field_ext import QuadraticExtension
from repro.pairing.tate import product_of_pairings, tate_pairing

FIELD = PrimeField(TOY80.p, check_prime=False)
CURVE = SupersingularCurve(FIELD)
EXT = QuadraticExtension(FIELD)
G = TOY80.generator
R = TOY80.r

scalars = st.integers(1, R - 1)


def pair(p, q):
    return tate_pairing(CURVE, EXT, p, q, R)


class TestBilinearity:
    @given(scalars, scalars)
    def test_left_linear(self, a, b):
        pa, pb = CURVE.mul(G, a), CURVE.mul(G, b)
        lhs = pair(CURVE.add(pa, pb), G)
        rhs = EXT.mul(pair(pa, G), pair(pb, G))
        assert lhs == rhs

    @given(scalars, scalars)
    def test_right_linear(self, a, b):
        pa, pb = CURVE.mul(G, a), CURVE.mul(G, b)
        lhs = pair(G, CURVE.add(pa, pb))
        rhs = EXT.mul(pair(G, pa), pair(G, pb))
        assert lhs == rhs

    @given(scalars, scalars)
    def test_exponent_bilinearity(self, a, b):
        lhs = pair(CURVE.mul(G, a), CURVE.mul(G, b))
        rhs = EXT.pow(pair(G, G), a * b % R)
        assert lhs == rhs

    @given(scalars, scalars)
    def test_symmetry(self, a, b):
        pa, pb = CURVE.mul(G, a), CURVE.mul(G, b)
        assert pair(pa, pb) == pair(pb, pa)


class TestStructure:
    def test_non_degenerate(self):
        value = pair(G, G)
        assert value != EXT.one

    def test_order_divides_r(self):
        assert EXT.pow(pair(G, G), R) == EXT.one

    def test_generator_pairing_has_full_order(self):
        # e(g,g) generates GT: its order is exactly r (r prime, value != 1).
        value = pair(G, G)
        assert value != EXT.one
        assert EXT.pow(value, R) == EXT.one

    def test_infinity_inputs(self):
        assert pair(INFINITY, G) == EXT.one
        assert pair(G, INFINITY) == EXT.one
        assert pair(INFINITY, INFINITY) == EXT.one

    @given(scalars)
    def test_inverse_argument(self, a):
        pa = CURVE.mul(G, a)
        assert pair(CURVE.neg(pa), G) == EXT.inv(pair(pa, G))


class TestProductOfPairings:
    @given(scalars, scalars, scalars)
    def test_matches_individual_product(self, a, b, c):
        pairs = [
            (CURVE.mul(G, a), G),
            (CURVE.mul(G, b), CURVE.mul(G, c)),
        ]
        combined = product_of_pairings(CURVE, EXT, pairs, R)
        separate = EXT.mul(
            pair(pairs[0][0], pairs[0][1]), pair(pairs[1][0], pairs[1][1])
        )
        assert combined == separate

    def test_empty_product_is_one(self):
        assert product_of_pairings(CURVE, EXT, [], R) == EXT.one

    def test_skips_infinity_pairs(self):
        pairs = [(INFINITY, G), (G, G)]
        assert product_of_pairings(CURVE, EXT, pairs, R) == pair(G, G)

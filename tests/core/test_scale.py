"""Larger-shape correctness: many authorities, many attributes, one run.

Not a benchmark — one deterministic end-to-end pass at a size the unit
tests never reach (8 authorities × 6 attributes, 48 LSSS rows), to catch
anything that only breaks at scale (index bookkeeping, matrix width,
coefficient pruning).
"""

from repro.analysis.timing import and_policy, build_ours
from repro.ec.params import TOY80


class TestScale:
    def test_large_all_and_roundtrip(self):
        workload = build_ours(TOY80, 8, 6, seed=99)
        ciphertext = workload.encrypt()
        assert ciphertext.n_rows == 48
        assert len(ciphertext.involved_aids) == 8
        assert workload.decrypt(ciphertext) == workload.message

    def test_large_mixed_policy(self):
        workload = build_ours(TOY80, 6, 4, seed=98)
        aids = [f"aa{k}" for k in range(6)]
        # A wide OR of per-authority AND clauses; the user holds all
        # attributes, so the reconstruction picks one branch.
        clauses = [
            "(" + " AND ".join(f"{aid}:attr{i}" for i in range(4)) + ")"
            for aid in aids
        ]
        policy = " OR ".join(clauses)
        message = workload.group.random_gt()
        ciphertext = workload.owner.encrypt(message, policy)
        assert ciphertext.n_rows == 24
        from repro.core.decrypt import decrypt

        recovered = decrypt(
            workload.group, ciphertext, workload.user_public_key,
            workload.secret_keys,
        )
        assert recovered == message

    def test_coefficients_prune_unused_branches(self):
        workload = build_ours(TOY80, 4, 3, seed=97)
        aids = [f"aa{k}" for k in range(4)]
        policy = " OR ".join(f"{aid}:attr0" for aid in aids)
        ciphertext = workload.owner.encrypt(
            workload.group.random_gt(), policy
        )
        weights = ciphertext.matrix.reconstruction_coefficients(
            {f"{aid}:attr0" for aid in aids}, workload.group.order
        )
        # OR: a single row suffices; the solver must not use all four.
        assert len(weights) == 1

"""The reduced Tate pairing e : G × G → GT on type-A curves.

``e(P, Q) = f_{r,P}(φ(Q))^{(p²-1)/r}`` with the distortion map
``φ(x, y) = (-x, i·y)``. On the order-r subgroup this pairing is
*symmetric* (G₁ = G₂ = G), matching the paper's setting ("the bilinear
pairing applied in our proposed scheme is symmetric, where G₁ = G₂ = G").

The heavy lifting lives in :mod:`repro.pairing.miller`; this module adds
the degenerate-input handling and a product-of-pairings helper that
shares one final exponentiation across several Miller loops (used by the
multi-pairing decryption formulas).
"""

from __future__ import annotations

from repro.ec.curve import INFINITY, SupersingularCurve
from repro.math.field_ext import QuadraticExtension
from repro.pairing.miller import final_exponentiation, miller_loop


def tate_pairing(curve: SupersingularCurve, ext: QuadraticExtension,
                 point_p: tuple, point_q: tuple, order: int) -> tuple:
    """e(P, Q) as an F_p² element of multiplicative order dividing r."""
    if point_p is INFINITY or point_q is INFINITY:
        return ext.one
    raw = miller_loop(curve, ext, point_p, point_q, order)
    return final_exponentiation(ext, raw, order)


def product_of_pairings(curve: SupersingularCurve, ext: QuadraticExtension,
                        pairs, order: int) -> tuple:
    """∏ e(P_i, Q_i) with a single shared final exponentiation.

    ``pairs`` is an iterable of ``(P, Q)`` point pairs. This is the
    standard multi-pairing optimization: Miller values multiply before
    the final exponentiation because the latter is a group homomorphism.
    """
    accumulator = ext.one
    nontrivial = False
    for point_p, point_q in pairs:
        if point_p is INFINITY or point_q is INFINITY:
            continue
        accumulator = ext.mul(
            accumulator, miller_loop(curve, ext, point_p, point_q, order)
        )
        nontrivial = True
    if not nontrivial:
        return ext.one
    return final_exponentiation(ext, accumulator, order)

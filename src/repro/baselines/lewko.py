"""Lewko-Waters decentralized CP-ABE (EUROCRYPT 2011), prime-order variant.

This is the comparison scheme of the paper's evaluation (Tables II-IV,
Figures 3-4): "we choose the Lewko's second scheme for comparison"
— the random-oracle construction in prime-order groups from the appendix
of *Decentralizing Attribute-Based Encryption*.

Construction summary (symmetric pairing, G of prime order r):

* Global setup: generator ``g``, random oracle ``H : GID → G``.
* Authority setup: for each attribute ``i`` it manages, pick
  ``α_i, y_i ∈ Z_r``; publish ``e(g,g)^{α_i}`` and ``g^{y_i}``.
* KeyGen(GID, i): ``K_{i,GID} = g^{α_i} · H(GID)^{y_i}``.
* Encrypt(M, (A, ρ)): share ``s`` via ``v = (s, …)`` and ``0`` via
  ``w = (0, …)``; per row x pick ``r_x`` and output
  ``C_0 = M·e(g,g)^s``,
  ``C_{1,x} = e(g,g)^{λ_x}·e(g,g)^{α_{ρ(x)} r_x}``,
  ``C_{2,x} = g^{r_x}``,
  ``C_{3,x} = g^{y_{ρ(x)} r_x}·g^{ω_x}``.
* Decrypt: per used row compute
  ``C_{1,x} · e(H(GID), C_{3,x}) / e(K_{ρ(x),GID}, C_{2,x})
  = e(g,g)^{λ_x} · e(H(GID), g)^{ω_x}``,
  then combine with coefficients ``c_x`` (``Σ c_x A_x = (1,0,…,0)``)
  so the ``ω`` terms vanish and ``e(g,g)^s`` emerges.

There is no central authority and no coordination: a user's key from
one authority works with any other authority's keys through the shared
``H(GID)``; collusion fails because different GIDs hash to different
group elements.

Component sizes (what Tables II-III count): authority secret 2·n_k·|p|;
public key n_k·(|GT|+|G|); user key n_{k,GID}·|G|; ciphertext
(l+1)·|GT| + 2l·|G|.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.attributes import qualify, validate_identifier
from repro.errors import PolicyError, SchemeError
from repro.pairing.group import G1Element, GTElement, PairingGroup
from repro.policy.lsss import LsssMatrix, lsss_from_policy


@dataclass(frozen=True)
class LewkoAttributePublicKey:
    """Published per attribute: (e(g,g)^{α_i}, g^{y_i})."""

    e_alpha: GTElement
    g_y: G1Element


@dataclass(frozen=True)
class LewkoAuthorityPublicKey:
    """All of one authority's per-attribute public keys."""

    aid: str
    elements: dict  # qualified attribute name -> LewkoAttributePublicKey

    def __getitem__(self, name: str) -> LewkoAttributePublicKey:
        return self.elements[name]

    def __len__(self) -> int:
        return len(self.elements)


@dataclass(frozen=True)
class LewkoUserKey:
    """A user's decryption keys from one authority."""

    gid: str
    aid: str
    elements: dict  # qualified attribute name -> G1Element K_{i,GID}

    @property
    def attributes(self) -> frozenset:
        return frozenset(self.elements)


@dataclass(frozen=True)
class LewkoCiphertextRow:
    c1: GTElement
    c2: G1Element
    c3: G1Element


@dataclass(frozen=True)
class LewkoCiphertext:
    c0: GTElement
    rows: tuple          # LewkoCiphertextRow per LSSS row
    matrix: LsssMatrix

    @property
    def n_rows(self) -> int:
        return len(self.rows)

    @property
    def policy_string(self) -> str:
        return str(self.matrix.policy)

    def element_size_bytes(self, group: PairingGroup) -> int:
        """(l+1)·|GT| + 2l·|G| — the Table II ciphertext row."""
        l = self.n_rows
        return (l + 1) * group.gt_bytes + 2 * l * group.g1_bytes


class LewkoAuthority:
    """One decentralized authority: per-attribute (α_i, y_i) secrets."""

    def __init__(self, group: PairingGroup, aid: str, attributes):
        validate_identifier(aid, "authority id")
        self.group = group
        self.aid = aid
        self._secrets = {}
        for name in attributes:
            validate_identifier(name, "attribute name")
            qualified = qualify(aid, name)
            self._secrets[qualified] = (
                group.random_scalar(),  # α_i
                group.random_scalar(),  # y_i
            )
        if not self._secrets:
            raise SchemeError(f"authority {aid!r} must manage at least one attribute")

    @property
    def attributes(self) -> frozenset:
        """Qualified attribute names managed here."""
        return frozenset(self._secrets)

    def public_key(self) -> LewkoAuthorityPublicKey:
        group = self.group
        elements = {}
        for name, (alpha, y) in self._secrets.items():
            elements[name] = LewkoAttributePublicKey(
                e_alpha=group.gt ** alpha, g_y=group.g ** y
            )
        return LewkoAuthorityPublicKey(aid=self.aid, elements=elements)

    def keygen(self, gid: str, attributes) -> LewkoUserKey:
        """Issue K_{i,GID} for each requested (unqualified) attribute."""
        group = self.group
        h_gid = group.hash_to_g1(gid)
        elements = {}
        for name in attributes:
            qualified = qualify(self.aid, name)
            secret = self._secrets.get(qualified)
            if secret is None:
                raise SchemeError(
                    f"authority {self.aid!r} does not manage attribute {name!r}"
                )
            alpha, y = secret
            elements[qualified] = (group.g ** alpha) * (h_gid ** y)
        return LewkoUserKey(gid=gid, aid=self.aid, elements=elements)

    def secret_size_scalars(self) -> int:
        """2·n_k scalars — the Table III 'authority key' entry."""
        return 2 * len(self._secrets)


def encrypt(group: PairingGroup, message: GTElement, policy,
            public_keys: dict) -> LewkoCiphertext:
    """Encrypt under an LSSS policy using the published attribute keys.

    ``public_keys`` maps qualified attribute names to
    :class:`LewkoAttributePublicKey` (merge several authorities'
    ``public_key().elements`` dicts to span domains).
    """
    matrix = lsss_from_policy(policy)
    missing = set(matrix.row_labels) - set(public_keys)
    if missing:
        raise PolicyError(f"no public keys for attributes {sorted(missing)}")
    order = group.order
    rng = group.rng
    s = group.random_scalar()
    lambda_shares = matrix.share(s, order, rng)
    omega_shares = matrix.share(0, order, rng)

    rows = []
    for index, label in enumerate(matrix.row_labels):
        pk = public_keys[label]
        r_x = group.random_scalar()
        c1 = (group.gt ** lambda_shares[index]) * (pk.e_alpha ** r_x)
        c2 = group.g ** r_x
        # g^{y_ρ(x)·r_x} · g^{ω_x} as one two-term multiexp (counted as
        # the same 2 G exponentiations the separate products would be).
        c3 = group.multiexp_g1(
            (pk.g_y, group.g), (r_x, omega_shares[index])
        )
        rows.append(LewkoCiphertextRow(c1=c1, c2=c2, c3=c3))
    c0 = message * (group.gt ** s)
    return LewkoCiphertext(c0=c0, rows=tuple(rows), matrix=matrix)


def decrypt(group: PairingGroup, ciphertext: LewkoCiphertext, gid: str,
            keys: dict) -> GTElement:
    """Decrypt with keys from any combination of authorities.

    ``keys`` maps AID → :class:`LewkoUserKey`; all keys must carry the
    same GID (enforced — mixing GIDs is exactly the collusion the scheme
    defeats). Raises :class:`PolicyNotSatisfiedError` when the union of
    attributes does not satisfy the policy.
    """
    merged = {}
    for key in keys.values():
        if key.gid != gid:
            raise SchemeError(
                f"key from {key.aid!r} belongs to {key.gid!r}, not {gid!r}"
            )
        merged.update(key.elements)
    order = group.order
    coefficients = ciphertext.matrix.reconstruction_coefficients(
        set(merged), order
    )
    h_gid = group.hash_to_g1(gid)
    # H(GID) is the first argument of one pairing per row: cache its
    # Miller lines once. Each row's ratio of pairings becomes a 2-way
    # multi-pairing (e(K, C2)⁻¹ = e(K⁻¹, C2)) with one shared final
    # exponentiation; the counters still record 2 pairings per row.
    group.prepare_pairing(h_gid)
    accumulator = group.identity_gt()
    for index, coefficient in coefficients.items():
        label = ciphertext.matrix.row_labels[index]
        row = ciphertext.rows[index]
        term = row.c1 * group.pair_prod(
            [(h_gid, row.c3), (merged[label].inverse(), row.c2)]
        )
        accumulator = accumulator * (term ** coefficient)
    return ciphertext.c0 / accumulator

"""The load harness: drive a workload mix against a live service.

:class:`LoadHarness` points a simulated fleet at one server (in-process
or remote) and runs either of two arrival disciplines:

* **closed-loop** (:meth:`LoadHarness.run_closed`) — ``concurrency``
  workers each issue operations back-to-back, one outstanding op per
  worker. Offered load adapts to service speed, so this measures
  *capacity*: ops/sec the service sustains at a given worker count.
* **open-loop** (:meth:`LoadHarness.run_open`) — operations arrive on a
  Poisson process at a configured rate regardless of how the service is
  doing, bounded by ``max_outstanding`` (arrivals past the bound are
  *shed* and counted, never silently dropped). Offered load does not
  adapt, so this measures behaviour *under* a load level — the
  coordinated-omission-free view a closed loop cannot give.

Both disciplines separate a warmup window from the measure window,
record per-op-class latency into exact-percentile
:class:`~repro.system.meter.LatencyRecorder` sinks, and sample the
process RSS from ``/proc/self/status`` while the run is in flight.

Operation classes (see :mod:`repro.loadgen.workload`):

* ``fetch`` — raw ``FETCH_RECORD`` of a Zipf-popular record; the reply
  body's SHA-256 is recorded when digest capture is on, which is what
  the serial-vs-pipelined byte-identity check compares.
* ``decrypt`` — the full user read path on a Zipf-popular record:
  component download plus ABE decryption through the surviving user's
  per-policy-shape :class:`repro.fastpath.decrypt.DecryptionSession`
  cache (shared across workers, like a real client's), ending in the
  AEAD open — so the measured latency is what a data consumer sees,
  not just the server's fetch.
* ``upload`` — alternating ``STORE_RECORD``/``DELETE_RECORD`` of one
  pre-encoded per-worker churn record (store of an existing id is an
  error by design, so churn must alternate).
* ``replace`` — a component replacement through the owner's session
  cache (cheap online encrypt); per-record locks serialize workers that
  land on the same record so ledger version suffixes never race.
* ``sweep`` — a Section V-C bulk revocation sweep; rare, heavyweight,
  and serialized by a global lock (two concurrent sweeps would race the
  authority version). Each sweep rolls the reader wallet's keys forward
  with the update key (the reader is *not* the revoked user), which
  also invalidates every cached decryption session — the next decrypt
  op transparently rebuilds against the new version. Errors in
  decrypt/sweep/replace under concurrent version churn are tolerated
  and *counted*, never hidden.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import random
import time
from collections import Counter, OrderedDict

from repro.core.authority import apply_update_key
from repro.core.revocation import rekey_standard
from repro.crypto.hybrid import encrypt_with_session
from repro.pairing.group import PairingGroup
from repro.parallel import gather_bounded
from repro.service import protocol
from repro.service.client import OwnerClient, ServiceConnection, UserClient
from repro.service.protocol import MessageType
from repro.service.retry import RetryPolicy
from repro.service.smoke import TrustFabric
from repro.system.meter import LatencyRecorder
from repro.system.records import StoredComponent, StoredRecord

from repro.loadgen.workload import OP_CLASSES, OpMix, ZipfPopularity

#: Policy every harness record is encrypted under.
POLICY = "hospital:doctor"


async def start_local_service(group: PairingGroup, root, *,
                              max_inflight: int = 32,
                              cache_entries: int = 128,
                              cache_bytes: int = 32 * 1024 * 1024,
                              workers=0, sweep_chunk: int = 16):
    """A running in-process server on an ephemeral localhost port.

    The bench and the ``repro load`` CLI default to this self-hosted
    target; pass an external ``--host/--port`` to measure a real
    deployment instead.
    """
    from repro.service.server import StorageService
    from repro.service.store import RecordStore

    service = StorageService(
        group,
        RecordStore(root, group, cache_entries=cache_entries,
                    cache_bytes=cache_bytes),
        host="127.0.0.1", port=0, max_inflight=max_inflight,
        workers=workers, sweep_chunk=sweep_chunk,
    )
    await service.start()
    return service


def rss_kb():
    """The process's resident set size in kB, or ``None`` off-Linux."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    return None


class _Slot:
    """One connection a worker issues ops through.

    Pipelined connections multiplex naturally; a serial connection is
    one-request-at-a-time by construction, so sharing it across workers
    needs the lock. ``user`` is the reader-role wrapper over the same
    connection — its key wallet and decryption-session cache are shared
    across every slot (one simulated reader, many sockets).
    """

    __slots__ = ("connection", "owner", "user", "lock")

    def __init__(self, connection: ServiceConnection, owner: OwnerClient,
                 user: UserClient, serialize: bool):
        self.connection = connection
        self.owner = owner
        self.user = user
        self.lock = asyncio.Lock() if serialize else None

    def guard(self):
        """The slot's exclusivity context: its lock, or a no-op."""
        if self.lock is not None:
            return self.lock
        return contextlib.nullcontext()

    async def request(self, msg_type, body=b"", expect=None):
        async with self.guard():
            return await self.connection.request(msg_type, body,
                                                 expect=expect)


class _Collector:
    """Per-run sink: latencies, counts, errors, optional fetch digests."""

    def __init__(self, capture_digests: bool = False):
        self.latency = {cls: LatencyRecorder(cls) for cls in OP_CLASSES}
        self.counts = Counter()
        self.errors = Counter()
        self.digests = [] if capture_digests else None

    def note(self, op_class: str, seconds: float, ok: bool) -> None:
        self.counts[op_class] += 1
        if ok:
            self.latency[op_class].record(seconds)
        else:
            self.errors[op_class] += 1

    def note_digest(self, worker: int, op_index: int, digest: str) -> None:
        if self.digests is not None:
            self.digests.append((worker, op_index, digest))


class _RssSampler:
    """Background RSS sampling for the duration of one run."""

    def __init__(self, interval: float = 0.2):
        self.interval = interval
        self.samples = []
        self._task = None

    async def _run(self) -> None:
        while True:
            value = rss_kb()
            if value is not None:
                self.samples.append(value)
            await asyncio.sleep(self.interval)

    def start(self) -> None:
        value = rss_kb()
        if value is not None:
            self.samples.append(value)
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> dict:
        if self._task is not None:
            self._task.cancel()
            await asyncio.gather(self._task, return_exceptions=True)
            self._task = None
        if not self.samples:
            return {"samples": 0}
        return {
            "samples": len(self.samples),
            "max_kb": max(self.samples),
            "mean_kb": round(sum(self.samples) / len(self.samples), 1),
        }


class LoadHarness:
    """One simulated fleet against one server address.

    ``users`` is the registered-population scale being simulated
    (10⁴–10⁶): it shapes the record-id namespace and is reported in
    every result, while ``records`` bounds the physical pool so setup
    cost stays proportional to the benchmark, not the fleet.
    """

    def __init__(self, group: PairingGroup, host: str, port: int, *,
                 users: int = 10_000, records: int = 48,
                 replace_records: int = 16, alpha: float = 1.1,
                 payload_bytes: int = 512, seed: int = 0,
                 timeout: float = 30.0, connections: int = 4,
                 max_inflight: int = 32, retry_attempts: int = 4):
        if users < 1 or records < 1 or replace_records < 1:
            raise ValueError("users/records/replace_records must be >= 1")
        if connections < 1:
            raise ValueError("need at least one connection")
        self.group = group
        self.host = host
        self.port = port
        self.users = users
        self.records = records
        self.replace_records = replace_records
        self.alpha = alpha
        self.payload_bytes = payload_bytes
        self.seed = seed
        self.timeout = timeout
        self.n_connections = connections
        self.max_inflight = max_inflight
        self.retry_attempts = retry_attempts
        self.fabric = None
        self.popularity = ZipfPopularity(records, alpha)
        self.fetch_pool = []
        self.replace_pool = []
        self._slots = []
        self._churn = {}          # worker index -> churn record state
        self._replace_locks = {}  # record id -> asyncio.Lock
        self._sweep_lock = None
        self._sweep_round = 0

    # -- lifecycle ---------------------------------------------------------

    def _record_id(self, kind: str, index: int) -> str:
        # Knuth-hash the index across the simulated user namespace so
        # record ids look like a real fleet's, not an enumeration. The
        # seed namespaces the pool: same-seed harnesses share records
        # (the serial-vs-pipelined pair), different-seed harnesses
        # against one server stay disjoint.
        user = (index * 2654435761) % self.users
        return f"u{user:07d}/{kind}-{self.seed}-{index:05d}"

    async def setup(self, populate: bool = True) -> "LoadHarness":
        """Connect, build the trust fabric, populate the record pools.

        ``populate=False`` skips the uploads: a second harness with the
        same seed/users/records derives the identical pool ids, so it
        can reuse records an earlier harness already put on the server
        (which is how the serial-vs-pipelined comparison shares state).
        """
        self.fabric = TrustFabric(self.group)
        self.fabric.owner_core.learn_authority(
            self.fabric.aa.authority_public_key(),
            self.fabric.aa.public_attribute_keys(),
        )
        self._sweep_lock = asyncio.Lock()
        # One simulated reader (carol — sweeps revoke bob, so her keys
        # roll forward rather than away): wallet and decrypt-session
        # cache shared by reference across every slot's UserClient.
        self._user_keys = {"alice": {
            "hospital": self.fabric.aa.keygen(
                self.fabric.carol_pk, ["doctor", "nurse"], "alice"
            ),
        }}
        self._user_sessions = OrderedDict()
        for index in range(self.n_connections):
            conn = ServiceConnection(
                self.group, self.host, self.port,
                role="owner", name=f"load-{index}",
                timeout=self.timeout, max_inflight=self.max_inflight,
                retry=RetryPolicy(
                    max_attempts=self.retry_attempts,
                    rng=random.Random(f"load:{self.seed}:{index}"),
                ),
            )
            await conn.connect()
            user = UserClient(conn, "carol")
            user.receive_public_key(self.fabric.carol_pk)
            user._secret_keys = self._user_keys          # shared wallet
            user._decrypt_sessions = self._user_sessions  # shared cache
            self._slots.append(_Slot(
                conn, OwnerClient(conn, self.fabric.owner_core), user,
                serialize=not conn.pipelined,
            ))
        self.fetch_pool = [self._record_id("hot", i)
                           for i in range(self.records)]
        self.replace_pool = [self._record_id("mut", i)
                             for i in range(self.replace_records)]
        if not populate:
            return self
        rng = random.Random(f"payload:{self.seed}")
        payloads = {}
        for record_id in self.fetch_pool + self.replace_pool:
            payloads[record_id] = rng.randbytes(self.payload_bytes)

        async def populate(index, record_id):
            slot = self._slots[index % len(self._slots)]
            async with slot.guard():
                await slot.owner.upload(record_id, {
                    "note": (payloads[record_id], POLICY),
                })

        outcomes = await gather_bounded(
            [lambda i=i, rid=rid: populate(i, rid)
             for i, rid in enumerate(self.fetch_pool + self.replace_pool)],
            limit=max(8, self.max_inflight),
        )
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                raise outcome
        return self

    async def close(self) -> None:
        for slot in self._slots:
            await slot.connection.close()
        self._slots = []

    @property
    def pipelined(self) -> bool:
        return any(slot.connection.pipelined for slot in self._slots)

    # -- the five op classes ----------------------------------------------

    async def _op_fetch(self, slot: _Slot, rng: random.Random) -> str:
        record_id = self.fetch_pool[self.popularity.sample(rng)]
        _, body = await slot.request(
            MessageType.FETCH_RECORD,
            protocol.encode_json({"record": record_id}),
            expect=MessageType.RECORD,
        )
        return hashlib.sha256(body).hexdigest()

    async def _op_decrypt(self, slot: _Slot, rng: random.Random) -> str:
        record_id = self.fetch_pool[self.popularity.sample(rng)]
        async with slot.guard():
            plaintext = await slot.user.read(record_id, "note")
        return hashlib.sha256(plaintext).hexdigest()

    def _churn_state(self, worker: int) -> dict:
        state = self._churn.get(worker)
        if state is None:
            record_id = self._record_id("churn", worker)
            core = self.fabric.owner_core
            ciphertext_id = f"{record_id}/note"
            abe_ciphertext, data_ciphertext = encrypt_with_session(
                core.session_for(POLICY), ciphertext_id,
                f"churn payload for worker {worker}".encode("utf-8"),
            )
            record = StoredRecord(
                record_id=record_id, owner_id=core.owner_id,
                components={"note": StoredComponent(
                    name="note", abe_ciphertext=abe_ciphertext,
                    data_ciphertext=data_ciphertext,
                )},
            )
            state = {"id": record_id, "bytes": record.to_bytes(),
                     "present": False}
            self._churn[worker] = state
        return state

    async def _op_upload(self, slot: _Slot, worker: int) -> None:
        state = self._churn_state(worker)
        if state["present"]:
            await slot.request(
                MessageType.DELETE_RECORD,
                protocol.encode_json({"record": state["id"]}),
                expect=MessageType.OK,
            )
            state["present"] = False
        else:
            await slot.request(
                MessageType.STORE_RECORD, state["bytes"],
                expect=MessageType.OK,
            )
            state["present"] = True

    async def _op_replace(self, slot: _Slot, worker: int,
                          rng: random.Random) -> None:
        record_id = self.replace_pool[worker % len(self.replace_pool)]
        lock = self._replace_locks.setdefault(record_id, asyncio.Lock())
        async with lock, slot.guard():
            await slot.owner.update_component(
                record_id, "note", rng.randbytes(self.payload_bytes), POLICY
            )

    async def _op_sweep(self, slot: _Slot) -> None:
        async with self._sweep_lock, slot.guard():
            self._sweep_round += 1
            # Give bob a fresh key to revoke each round: every sweep
            # models one real revocation (issue → revoke → re-encrypt),
            # repeatable for as long as the run lasts.
            self.fabric.aa.keygen(self.fabric.bob_pk, ["doctor"], "alice")
            result = rekey_standard(self.fabric.aa, "bob", ["doctor"])
            await slot.owner.sweep_revocation(result.update_key)
            # Roll the (non-revoked) reader wallet forward so decrypt
            # ops keep succeeding against re-encrypted ciphertexts.
            # Decrypt ops racing the sweep itself may still observe a
            # version mismatch — counted as errors, never hidden.
            for keys in self._user_keys.values():
                key = keys.get(result.update_key.aid)
                if key is not None \
                        and key.version == result.update_key.from_version:
                    keys[result.update_key.aid] = apply_update_key(
                        key, result.update_key
                    )

    async def _one_op(self, op_class: str, slot: _Slot, worker: int,
                      rng: random.Random):
        if op_class == "fetch":
            return await self._op_fetch(slot, rng)
        if op_class == "decrypt":
            return await self._op_decrypt(slot, rng)
        if op_class == "upload":
            return await self._op_upload(slot, worker)
        if op_class == "replace":
            return await self._op_replace(slot, worker, rng)
        return await self._op_sweep(slot)

    # -- closed loop -------------------------------------------------------

    async def run_closed(self, concurrency: int, ops_per_worker: int, *,
                         warmup_ops: int = 0, mix: OpMix = None,
                         capture_digests: bool = False) -> dict:
        """``concurrency`` workers, back-to-back ops, fixed op counts.

        Schedules are deterministic per worker (seeded by the harness
        seed and the worker index), so two runs against servers in the
        same state issue the *same* op sequence — the property the
        serial-vs-pipelined byte-identity comparison stands on.
        """
        if concurrency < 1 or ops_per_worker < 1:
            raise ValueError("concurrency and ops_per_worker must be >= 1")
        mix = mix if mix is not None else OpMix.default()
        collector = _Collector(capture_digests)

        async def phase(worker: int, rng: random.Random, ops: int,
                        recorded: bool) -> None:
            slot = self._slots[worker % len(self._slots)]
            for op_index in range(ops):
                op_class = mix.sample(rng)
                started = time.perf_counter()
                try:
                    outcome = await self._one_op(op_class, slot, worker, rng)
                except Exception:
                    if recorded:
                        collector.note(op_class,
                                       time.perf_counter() - started, False)
                    continue
                if recorded:
                    collector.note(op_class,
                                   time.perf_counter() - started, True)
                    if op_class == "fetch" and isinstance(outcome, str):
                        collector.note_digest(worker, op_index, outcome)

        rngs = [random.Random(f"worker:{self.seed}:{w}")
                for w in range(concurrency)]
        if warmup_ops:
            await asyncio.gather(*(
                phase(w, rngs[w], warmup_ops, False)
                for w in range(concurrency)
            ))
        sampler = _RssSampler()
        sampler.start()
        started = time.perf_counter()
        await asyncio.gather(*(
            phase(w, rngs[w], ops_per_worker, True)
            for w in range(concurrency)
        ))
        wall = time.perf_counter() - started
        rss = await sampler.stop()
        return self._result("closed", collector, wall, rss,
                            concurrency=concurrency,
                            ops_per_worker=ops_per_worker,
                            warmup_ops=warmup_ops, mix=mix)

    # -- open loop ---------------------------------------------------------

    async def run_open(self, rate: float, duration: float, *,
                       warmup: float = 0.0, max_outstanding: int = 256,
                       mix: OpMix = None) -> dict:
        """Poisson arrivals at ``rate`` ops/sec for ``duration`` seconds.

        Arrivals landing while ``max_outstanding`` ops are already in
        flight are shed and counted — an open-loop generator must never
        queue unboundedly inside itself, or it silently turns into a
        closed loop with extra steps.
        """
        if rate <= 0 or duration <= 0:
            raise ValueError("rate and duration must be positive")
        mix = mix if mix is not None else OpMix.default()
        collector = _Collector()
        rng = random.Random(f"open:{self.seed}")
        inflight = set()
        shed = 0
        arrivals = 0

        async def fire(op_class: str, worker: int, recorded: bool) -> None:
            slot = self._slots[worker % len(self._slots)]
            started = time.perf_counter()
            try:
                await self._one_op(op_class, slot, worker, rng)
            except Exception:
                if recorded:
                    collector.note(op_class,
                                   time.perf_counter() - started, False)
                return
            if recorded:
                collector.note(op_class, time.perf_counter() - started, True)

        sampler = _RssSampler()
        sampler.start()
        start = time.monotonic()
        measure_from = start + warmup
        deadline = measure_from + duration
        next_at = start
        while True:
            next_at += rng.expovariate(rate)
            now = time.monotonic()
            if next_at > deadline:
                break
            if next_at > now:
                await asyncio.sleep(next_at - now)
                now = time.monotonic()
            arrivals += 1
            if len(inflight) >= max_outstanding:
                shed += 1
                continue
            # Worker identity cycles over a bounded space so per-worker
            # state (churn records) stays bounded too.
            task = asyncio.get_running_loop().create_task(
                fire(mix.sample(rng), arrivals % max_outstanding,
                     now >= measure_from)
            )
            inflight.add(task)
            task.add_done_callback(inflight.discard)
        if inflight:
            await asyncio.gather(*list(inflight), return_exceptions=True)
        wall = time.monotonic() - measure_from
        rss = await sampler.stop()
        result = self._result("open", collector, wall, rss,
                              rate=rate, duration=duration, warmup=warmup,
                              max_outstanding=max_outstanding, mix=mix)
        result["arrivals"] = arrivals
        result["shed"] = shed
        return result

    # -- result assembly ---------------------------------------------------

    def _result(self, mode: str, collector: _Collector, wall: float,
                rss: dict, *, mix: OpMix, **extra) -> dict:
        wall = max(wall, 1e-9)
        measured = sum(collector.counts.values())
        failed = sum(collector.errors.values())
        per_class = {}
        for op_class in OP_CLASSES:
            count = collector.counts.get(op_class, 0)
            if not count:
                continue
            summary = collector.latency[op_class].summary()
            summary["throughput_ops"] = round(
                len(collector.latency[op_class]) / wall, 2
            )
            summary["errors"] = collector.errors.get(op_class, 0)
            per_class[op_class] = summary
        result = {
            "mode": mode,
            "users": self.users,
            "records": self.records,
            "connections": len(self._slots),
            "max_inflight": self.max_inflight,
            "pipelined": self.pipelined,
            "mix": mix.as_dict(),
            "wall_seconds": round(wall, 4),
            "measured_ops": measured,
            "failed_ops": failed,
            "throughput_ops": round((measured - failed) / wall, 2),
            "per_class": per_class,
            "rss": rss,
        }
        result.update(extra)
        if collector.digests is not None:
            result["fetch_digests"] = sorted(collector.digests)
        return result

"""Tests for the MultiAuthorityABE facade (the docstring example, etc.)."""

import pytest

from repro.core.scheme import MultiAuthorityABE
from repro.ec.params import TOY80
from repro.errors import SchemeError


class TestFacade:
    def test_docstring_example(self):
        scheme = MultiAuthorityABE(TOY80, seed=1)
        hospital = scheme.setup_authority("hospital", ["doctor", "nurse"])
        trial = scheme.setup_authority("trial", ["researcher"])
        owner = scheme.setup_owner("alice", [hospital, trial])
        bob_pk = scheme.register_user("bob")
        bob_keys = {
            "hospital": hospital.keygen(bob_pk, ["doctor"], "alice"),
            "trial": trial.keygen(bob_pk, ["researcher"], "alice"),
        }
        message = scheme.random_message()
        ct = owner.encrypt(message, "hospital:doctor AND trial:researcher")
        assert scheme.decrypt(ct, bob_pk, bob_keys) == message
        assert scheme.decrypt_fast(ct, bob_pk, bob_keys) == message
        assert scheme.can_decrypt(ct, bob_keys)

    def test_authority_registry(self):
        scheme = MultiAuthorityABE(TOY80, seed=2)
        hospital = scheme.setup_authority("hospital", ["doctor"])
        assert scheme.authority("hospital") is hospital
        assert set(scheme.authorities) == {"hospital"}

    def test_duplicate_authority_rejected(self):
        scheme = MultiAuthorityABE(TOY80, seed=3)
        scheme.setup_authority("hospital", ["doctor"])
        with pytest.raises(SchemeError):
            scheme.setup_authority("hospital", ["nurse"])

    def test_setup_owner_defaults_to_all_authorities(self):
        scheme = MultiAuthorityABE(TOY80, seed=4)
        scheme.setup_authority("a", ["x"])
        scheme.setup_authority("b", ["y"])
        owner = scheme.setup_owner("o")
        assert owner.known_authorities() == {"a", "b"}

    def test_facade_revoke_roundtrip(self):
        scheme = MultiAuthorityABE(TOY80, seed=5)
        hospital = scheme.setup_authority("hospital", ["doctor", "nurse"])
        owner = scheme.setup_owner("alice")
        pk = scheme.register_user("u")
        keys = {"hospital": hospital.keygen(pk, ["doctor"], "alice")}
        message = scheme.random_message()
        ct = owner.encrypt(message, "hospital:doctor")
        result = scheme.revoke("hospital", "u", ["doctor"])
        ui = owner.update_info(ct, result.update_key)
        owner.apply_update_key(result.update_key)
        new_ct = scheme.reencrypt(ct, result.update_key, ui)
        assert new_ct.version_of("hospital") == 1
        # A fresh doctor reads the re-encrypted data.
        pk2 = scheme.register_user("u2")
        keys2 = {"hospital": hospital.keygen(pk2, ["doctor"], "alice")}
        assert scheme.decrypt(new_ct, pk2, keys2) == message

    def test_facade_hardened_revoke(self):
        scheme = MultiAuthorityABE(TOY80, seed=6)
        hospital = scheme.setup_authority("hospital", ["doctor"])
        scheme.setup_owner("alice")
        pk = scheme.register_user("u")
        hospital.keygen(pk, ["doctor"], "alice")
        pk2 = scheme.register_user("v")
        hospital.keygen(pk2, ["doctor"], "alice")
        result = scheme.revoke("hospital", "u", ["doctor"], hardened=True)
        assert result.is_hardened
        assert ("v", "alice") in result.reissued_keys

"""The end-to-end smoke cycle against a live server.

Drives the full lifecycle of the paper over a real socket: an authority
publishes keys into the server's directory, an owner learns them from
the server and uploads a multi-component record, users download and
decrypt, an attribute is revoked, the owner pushes update keys so the
server proxy-re-encrypts, and finally the revoked user's read fails
while a surviving user still decrypts bit-identical plaintext.

With ``chaos`` set, the whole cycle runs through a seeded
:class:`repro.service.faults.ChaosProxy` with retrying connections: the
cycle must complete *despite* injected connection drops, delays past
the client timeout, corrupted/truncated/duplicated frames — and the
transcript ends with the injected-fault and retry-log tallies so every
recovery is visible.

Used by ``repro client smoke`` (plus the CI ``chaos`` job) and returns
a process exit code (0 = every step behaved).

:func:`run_sweep_cycle` is the bulk-revocation counterpart used by
``repro client sweep``: it populates many records, revokes once, pushes
the whole revocation through a single ``REENCRYPT_SWEEP`` request
(streamed progress included) and verifies every ciphertext version
bumped — optionally through the same chaos proxy.
"""

from __future__ import annotations

import random
import sys

from repro.core.authority import AttributeAuthority
from repro.core.ca import CertificateAuthority
from repro.core.owner import DataOwner
from repro.core.revocation import rekey_standard
from repro.errors import ReproError
from repro.pairing.group import PairingGroup
from repro.service.client import (
    AuthorityClient,
    OwnerClient,
    ServiceConnection,
    UserClient,
)
from repro.service.faults import ChaosProxy, FaultSpec
from repro.service.retry import RetryPolicy


class SmokeFailure(ReproError):
    """A smoke step did not behave as the protocol requires."""


class TrustFabric:
    """The local trust fabric every smoke cycle shares.

    CA, one AA (``hospital`` with ``doctor``/``nurse``), owner
    ``alice``, users ``bob``/``carol`` — everything that stays
    *off* the server path, exactly as in the paper: only the
    cloud-server role ever lives across a socket. The cluster smoke
    (:mod:`repro.cluster.smoke`) builds the identical fabric, which is
    what makes its byte-identity comparison against a single-node world
    meaningful.
    """

    def __init__(self, group: PairingGroup):
        self.group = group
        self.ca = CertificateAuthority(group)
        self.aa = AttributeAuthority(group, "hospital", ["doctor", "nurse"])
        self.ca.register_authority("hospital")
        self.owner_core = DataOwner(group, "alice")
        self.ca.register_owner("alice")
        self.aa.register_owner(self.owner_core.secret_key)
        self.bob_pk = self.ca.register_user("bob")
        self.carol_pk = self.ca.register_user("carol")


async def run_smoke(params, host: str, port: int, *, out=None, seed=None,
                    chaos: FaultSpec = None, chaos_seed: int = 0,
                    chaos_schedule: dict = None, chaos_replay: dict = None,
                    retry: RetryPolicy = None,
                    timeout: float = 30.0, report: dict = None) -> int:
    """Run upload → read → revoke → re-encrypt → revoked-read-fails."""
    out = out or sys.stdout
    group = PairingGroup(params, seed=seed)

    def step(label: str) -> None:
        print(f"ok: {label}", file=out, flush=True)

    proxy = None
    if chaos_replay is not None:
        # Replay a recorded fault trace: same faults, same frames,
        # zeroed dice (see ChaosProxy.trace / --chaos-trace).
        proxy = ChaosProxy.from_trace(host, port, chaos_replay)
        await proxy.start()
        host, port = proxy.host, proxy.port
        if retry is None:
            retry = RetryPolicy(max_attempts=8,
                                rng=random.Random(chaos_seed))
        step(f"chaos proxy on {host}:{port} replaying a trace of "
             f"{len(proxy.schedule)} scheduled faults")
    elif chaos is not None:
        proxy = ChaosProxy(host, port, spec=chaos, seed=chaos_seed,
                           schedule=chaos_schedule)
        await proxy.start()
        host, port = proxy.host, proxy.port
        if retry is None:
            retry = RetryPolicy(max_attempts=8,
                                rng=random.Random(chaos_seed))
        step(f"chaos proxy on {host}:{port} (seed {chaos_seed}, "
             + ", ".join(f"{k}={v}" for k, v in chaos.rates().items() if v)
             + ")")

    fabric = TrustFabric(group)
    aa = fabric.aa
    owner_core = fabric.owner_core
    bob_pk, carol_pk = fabric.bob_pk, fabric.carol_pk

    async def connection(role, name):
        conn = ServiceConnection(group, host, port, role=role, name=name,
                                 timeout=timeout, retry=retry)
        return await conn.connect()

    clients = []
    try:
        aa_client = AuthorityClient(
            await connection("aa", "AA:hospital"), aa
        )
        clients.append(aa_client)
        owner_client = OwnerClient(
            await connection("owner", "owner:alice"), owner_core
        )
        clients.append(owner_client)
        bob = UserClient(await connection("user", "user:bob"), "bob")
        clients.append(bob)
        carol = UserClient(await connection("user", "user:carol"), "carol")
        clients.append(carol)

        if not await owner_client.ping():
            raise SmokeFailure("server did not answer the ping")
        step(f"connected to {owner_client.connection.server_name} "
             f"at {host}:{port}")

        await aa_client.publish_keys()
        await owner_client.learn_authorities("hospital")
        step("authority keys published and fetched via the server")

        bob.receive_public_key(bob_pk)
        carol.receive_public_key(carol_pk)
        bob.receive_secret_key(aa.keygen(bob_pk, ["doctor"], "alice"))
        carol.receive_secret_key(
            aa.keygen(carol_pk, ["doctor", "nurse"], "alice")
        )
        step("user keys issued (out-of-band, as in the paper)")

        note = b"MRI shows nothing acute."
        plan = b"Rest, fluids, follow-up in two weeks."
        await owner_client.upload("record", {
            "doctor-note": (note, "hospital:doctor"),
            "care-plan": (plan, "hospital:doctor OR hospital:nurse"),
        })
        step("owner uploaded a 2-component record")

        if await bob.read("record", "doctor-note") != note:
            raise SmokeFailure("bob's decryption is not bit-identical")
        if await carol.read("record", "care-plan") != plan:
            raise SmokeFailure("carol's decryption is not bit-identical")
        if await owner_client.read_own("record", "care-plan") != plan:
            raise SmokeFailure("owner self-read failed")
        step("authorized reads recovered bit-identical plaintext")

        result = rekey_standard(aa, "bob", ["doctor"])
        update_key = result.update_key
        for new_key in result.revoked_user_keys.values():
            bob.receive_secret_key(new_key)
        if "alice" not in result.revoked_user_keys:
            bob.drop_keys("hospital", "alice")
        carol.apply_update_key(update_key)
        updated = await owner_client.push_revocation_updates(update_key)
        if not updated:
            raise SmokeFailure("no ciphertexts were re-encrypted")
        step(f"revoked bob's 'doctor'; server re-encrypted "
             f"{len(updated)} ciphertexts")

        try:
            await bob.read("record", "doctor-note")
            raise SmokeFailure("revoked user still decrypts")
        except (ReproError) as exc:
            if isinstance(exc, SmokeFailure):
                raise
        step("revoked user's read now fails")

        if await carol.read("record", "doctor-note") != note:
            raise SmokeFailure("surviving user lost access after ReEncrypt")
        step("surviving user still decrypts bit-identical plaintext")

        stats = await owner_client.stats()
        step(f"server stats: {stats['records']} records, "
             f"{stats['storage_bytes']} payload bytes, "
             f"{stats['wire_bytes']} wire bytes")

        if proxy is not None:
            entries = [entry for client in clients
                       for entry in client.connection.retry_log]
            counts = {}
            for entry in entries:
                counts[entry["event"]] = counts.get(entry["event"], 0) + 1
            for fault in proxy.injected:
                print(f"  fault: conn {fault['conn']} frame "
                      f"{fault['frame']} {fault['fault']} "
                      f"(type 0x{fault['frame_type'] or 0:02x})",
                      file=out, flush=True)
            for entry in entries:
                print(f"  {entry['event']}: {entry['request']} "
                      f"attempt {entry['attempt']} — {entry['cause']}",
                      file=out, flush=True)
            step(f"chaos survived: {len(proxy.injected)} injected faults "
                 f"{proxy.fault_counts()}, retry log {counts or '{}'}")
            if report is not None:
                report["injected"] = list(proxy.injected)
                report["fault_counts"] = proxy.fault_counts()
                report["retry_entries"] = entries
                report["retry_counts"] = counts
                report["chaos_trace"] = proxy.trace()
            if stats["dedup_hits"]:
                step(f"idempotent replay: {stats['dedup_hits']} retried "
                     f"mutations deduplicated server-side")
    except SmokeFailure as exc:
        print(f"FAIL: {exc}", file=out, flush=True)
        return 1
    except (ReproError, OSError) as exc:
        print(f"FAIL: cycle died with {exc!r}", file=out, flush=True)
        return 1
    finally:
        for client in clients:
            await client.close()
        if proxy is not None:
            await proxy.stop()
    print("smoke cycle passed", file=out, flush=True)
    return 0


async def run_sweep_cycle(params, host: str, port: int, *,
                          records: int = 12, out=None, seed=None,
                          chaos: FaultSpec = None, chaos_seed: int = 0,
                          chaos_schedule: dict = None,
                          chaos_replay: dict = None,
                          retry: RetryPolicy = None, timeout: float = 30.0,
                          report: dict = None) -> int:
    """Populate → revoke → one bulk sweep → verify every version bumped."""
    out = out or sys.stdout
    group = PairingGroup(params, seed=seed)

    def step(label: str) -> None:
        print(f"ok: {label}", file=out, flush=True)

    proxy = None
    if chaos_replay is not None:
        proxy = ChaosProxy.from_trace(host, port, chaos_replay)
        await proxy.start()
        host, port = proxy.host, proxy.port
        if retry is None:
            retry = RetryPolicy(max_attempts=8,
                                rng=random.Random(chaos_seed))
        step(f"chaos proxy on {host}:{port} replaying a trace of "
             f"{len(proxy.schedule)} scheduled faults")
    elif chaos is not None:
        proxy = ChaosProxy(host, port, spec=chaos, seed=chaos_seed,
                           schedule=chaos_schedule)
        await proxy.start()
        host, port = proxy.host, proxy.port
        if retry is None:
            retry = RetryPolicy(max_attempts=8,
                                rng=random.Random(chaos_seed))
        step(f"chaos proxy on {host}:{port} (seed {chaos_seed})")

    fabric = TrustFabric(group)
    aa = fabric.aa
    owner_core = fabric.owner_core
    bob_pk, carol_pk = fabric.bob_pk, fabric.carol_pk

    async def connection(role, name):
        conn = ServiceConnection(group, host, port, role=role, name=name,
                                 timeout=timeout, retry=retry)
        return await conn.connect()

    clients = []
    progress_frames = []
    try:
        aa_client = AuthorityClient(
            await connection("aa", "AA:hospital"), aa
        )
        clients.append(aa_client)
        owner_client = OwnerClient(
            await connection("owner", "owner:alice"), owner_core
        )
        clients.append(owner_client)
        bob = UserClient(await connection("user", "user:bob"), "bob")
        clients.append(bob)
        carol = UserClient(await connection("user", "user:carol"), "carol")
        clients.append(carol)

        await aa_client.publish_keys()
        await owner_client.learn_authorities("hospital")
        bob.receive_public_key(bob_pk)
        carol.receive_public_key(carol_pk)
        bob.receive_secret_key(aa.keygen(bob_pk, ["doctor"], "alice"))
        carol.receive_secret_key(
            aa.keygen(carol_pk, ["doctor", "nurse"], "alice")
        )
        step("trust fabric up (1 AA, 1 owner, 2 users)")

        policies = ("hospital:doctor", "hospital:doctor OR hospital:nurse")
        for index in range(records):
            await owner_client.upload(f"rec-{index:04d}", {
                "note": (f"note {index}".encode("utf-8"),
                         policies[index % len(policies)]),
            })
        step(f"owner uploaded {records} records")

        result = rekey_standard(aa, "bob", ["doctor"])
        update_key = result.update_key
        for new_key in result.revoked_user_keys.values():
            bob.receive_secret_key(new_key)
        if "alice" not in result.revoked_user_keys:
            bob.drop_keys("hospital", "alice")
        carol.apply_update_key(update_key)

        def on_progress(frame: dict) -> None:
            progress_frames.append(frame)
            print(f"  sweep progress: {frame['done']}/{frame['total']} "
                  f"records ({frame['updated']} updated)",
                  file=out, flush=True)

        summary = await owner_client.sweep_revocation(
            update_key, on_progress=on_progress
        )
        swept = set(summary.get("updated", ())) | set(
            summary.get("already_current", ())
        )
        if len(swept) != records or summary.get("errors"):
            raise SmokeFailure(
                f"sweep covered {len(swept)}/{records} ciphertexts "
                f"(errors: {summary.get('errors')})"
            )
        step(f"one sweep re-encrypted {len(summary['updated'])} ciphertexts "
             f"across {summary['records']} records "
             f"({len(progress_frames)} progress frames)")

        for index in (0, records // 2, records - 1):
            component = await owner_client._fetch_component(
                f"rec-{index:04d}", "note"
            )
            if component.abe_ciphertext.version_of("hospital") != \
                    update_key.to_version:
                raise SmokeFailure(
                    f"rec-{index:04d} was not rolled to version "
                    f"{update_key.to_version}"
                )
        step("sampled records verified at the new version")

        try:
            await bob.read("rec-0000", "note")
            raise SmokeFailure("revoked user still decrypts after the sweep")
        except ReproError as exc:
            if isinstance(exc, SmokeFailure):
                raise
        if await carol.read("rec-0001", "note") != b"note 1":
            raise SmokeFailure("surviving user lost access after the sweep")
        step("revoked read fails; surviving read is bit-identical")

        if proxy is not None:
            step(f"chaos survived: {len(proxy.injected)} injected faults "
                 f"{proxy.fault_counts()}")
        if report is not None:
            report["summary"] = summary
            report["progress_frames"] = list(progress_frames)
            if proxy is not None:
                report["injected"] = list(proxy.injected)
                report["chaos_trace"] = proxy.trace()
    except SmokeFailure as exc:
        print(f"FAIL: {exc}", file=out, flush=True)
        return 1
    except (ReproError, OSError) as exc:
        print(f"FAIL: sweep cycle died with {exc!r}", file=out, flush=True)
        return 1
    finally:
        for client in clients:
            await client.close()
        if proxy is not None:
            await proxy.stop()
    print("sweep cycle passed", file=out, flush=True)
    return 0


async def run_bench_encrypt(params, host: str, port: int, *,
                            components: int = 8, out=None, seed=None,
                            retry: RetryPolicy = None, timeout: float = 30.0,
                            report: dict = None) -> int:
    """Session-engine encryption cycle against a live server.

    The ``repro client bench-encrypt`` action: builds the local trust
    fabric, issues a user's keys through a bulk
    :class:`repro.fastpath.keygen.KeyGenSession`, times a cold
    ``Encrypt`` baseline against the session engine's offline + online
    split, uploads every session ciphertext as one multi-component
    record through the session-backed :class:`OwnerClient.upload`, and
    verifies one end-to-end read. Reported times are informational
    (the gated benchmark is ``benchmarks/bench_encrypt_session.py``);
    the cycle fails only on correctness violations.
    """
    import time

    out = out or sys.stdout
    group = PairingGroup(params, seed=seed)

    def step(label: str) -> None:
        print(f"ok: {label}", file=out, flush=True)

    fabric = TrustFabric(group)
    aa = fabric.aa
    owner_core = fabric.owner_core
    bob_pk = fabric.bob_pk
    policy = "hospital:doctor"

    clients = []
    try:
        aa_client = AuthorityClient(
            ServiceConnection(group, host, port, role="aa",
                              name="AA:hospital", timeout=timeout,
                              retry=retry), aa
        )
        await aa_client.connection.connect()
        clients.append(aa_client)
        owner_client = OwnerClient(
            ServiceConnection(group, host, port, role="owner",
                              name="owner:alice", timeout=timeout,
                              retry=retry), owner_core
        )
        await owner_client.connection.connect()
        clients.append(owner_client)
        bob = UserClient(
            ServiceConnection(group, host, port, role="user",
                              name="user:bob", timeout=timeout,
                              retry=retry), "bob"
        )
        await bob.connection.connect()
        clients.append(bob)
        step(f"connected to {owner_client.connection.server_name} "
             f"at {host}:{port}")

        await aa_client.publish_keys()
        await owner_client.learn_authorities("hospital")
        step("authority keys published and fetched via the server")

        started = time.perf_counter()
        keygen_session = aa.keygen_session("alice", ["doctor"])
        bob.receive_public_key(bob_pk)
        bob.receive_secret_key(keygen_session.issue(bob_pk))
        keygen_seconds = time.perf_counter() - started
        step(f"user key issued via KeyGenSession "
             f"({keygen_seconds * 1000:.1f} ms)")

        started = time.perf_counter()
        for _ in range(components):
            owner_core.encrypt(group.random_gt(), policy)
        cold_seconds = time.perf_counter() - started
        step(f"cold baseline: {components} Encrypts in "
             f"{cold_seconds:.3f}s ({cold_seconds / components * 1000:.1f} "
             f"ms each)")

        session = owner_core.session_for(policy)
        started = time.perf_counter()
        session.refill(components)
        offline_seconds = time.perf_counter() - started
        started = time.perf_counter()
        payload = {
            f"part-{index:03d}": (f"payload {index}".encode("utf-8"), policy)
            for index in range(components)
        }
        await owner_client.upload("bench-encrypt", payload)
        online_seconds = time.perf_counter() - started
        step(f"session path: offline refill {offline_seconds:.3f}s, "
             f"online encrypt+upload of {components} components "
             f"{online_seconds:.3f}s")

        if session.stats["pool_misses"]:
            raise SmokeFailure(
                f"online phase fell back to inline bundles "
                f"{session.stats['pool_misses']} times"
            )
        if await bob.read("bench-encrypt", "part-000") != b"payload 0":
            raise SmokeFailure("end-to-end read is not bit-identical")
        if await owner_client.read_own("bench-encrypt", "part-001") \
                != b"payload 1":
            raise SmokeFailure("owner self-read failed on a session ct")
        step("session ciphertexts decrypt end-to-end (user + owner paths)")

        if report is not None:
            report.update({
                "components": components,
                "cold_seconds": cold_seconds,
                "offline_seconds": offline_seconds,
                "online_upload_seconds": online_seconds,
                "keygen_session_seconds": keygen_seconds,
            })
    except SmokeFailure as exc:
        print(f"FAIL: {exc}", file=out, flush=True)
        return 1
    except (ReproError, OSError) as exc:
        print(f"FAIL: bench-encrypt cycle died with {exc!r}", file=out,
              flush=True)
        return 1
    finally:
        for client in clients:
            await client.close()
    print("bench-encrypt cycle passed", file=out, flush=True)
    return 0


async def run_bench_decrypt(params, host: str, port: int, *,
                            components: int = 8, out=None, seed=None,
                            retry: RetryPolicy = None, timeout: float = 30.0,
                            report: dict = None) -> int:
    """Session-engine decryption cycle against a live server.

    The ``repro client bench-decrypt`` action, the read-path mirror of
    :func:`run_bench_encrypt`: uploads a multi-component record, times
    a cold per-read baseline (session cache cleared before every read)
    against the warm :meth:`UserClient.read_many` batch, then registers
    a transform key and reads through the server-side transform path —
    asserting that the outsourced reads cost **zero** pairings on this
    client and that all three paths return bit-identical plaintext.
    Reported times are informational (the gated benchmark is
    ``benchmarks/bench_decrypt_session.py``); the cycle fails only on
    correctness violations.
    """
    import time

    out = out or sys.stdout
    group = PairingGroup(params, seed=seed)

    def step(label: str) -> None:
        print(f"ok: {label}", file=out, flush=True)

    fabric = TrustFabric(group)
    aa = fabric.aa
    owner_core = fabric.owner_core
    carol_pk = fabric.carol_pk
    policy = "hospital:doctor OR hospital:nurse"

    clients = []
    try:
        aa_client = AuthorityClient(
            ServiceConnection(group, host, port, role="aa",
                              name="AA:hospital", timeout=timeout,
                              retry=retry), aa
        )
        await aa_client.connection.connect()
        clients.append(aa_client)
        owner_client = OwnerClient(
            ServiceConnection(group, host, port, role="owner",
                              name="owner:alice", timeout=timeout,
                              retry=retry), owner_core
        )
        await owner_client.connection.connect()
        clients.append(owner_client)
        carol = UserClient(
            ServiceConnection(group, host, port, role="user",
                              name="user:carol", timeout=timeout,
                              retry=retry, max_inflight=8), "carol"
        )
        await carol.connection.connect()
        clients.append(carol)
        step(f"connected to {owner_client.connection.server_name} "
             f"at {host}:{port}")

        await aa_client.publish_keys()
        await owner_client.learn_authorities("hospital")
        carol.receive_public_key(carol_pk)
        carol.receive_secret_key(
            aa.keygen(carol_pk, ["doctor", "nurse"], "alice")
        )
        step("authority keys published; user keys issued")

        expected = [f"payload {index}".encode("utf-8")
                    for index in range(components)]
        await owner_client.upload("bench-decrypt", {
            f"part-{index:03d}": (expected[index], policy)
            for index in range(components)
        })
        items = [("bench-decrypt", f"part-{index:03d}")
                 for index in range(components)]
        step(f"owner uploaded {components} components under one policy")

        started = time.perf_counter()
        cold = []
        for record_id, component_name in items:
            carol._decrypt_sessions.clear()  # force a cold session each read
            cold.append(await carol.read(record_id, component_name))
        cold_seconds = time.perf_counter() - started
        if cold != expected:
            raise SmokeFailure("cold reads are not bit-identical")
        step(f"cold baseline: {components} reads in {cold_seconds:.3f}s "
             f"({cold_seconds / components * 1000:.1f} ms each)")

        carol._decrypt_sessions.clear()
        started = time.perf_counter()
        warm = await carol.read_many(items)
        session_seconds = time.perf_counter() - started
        if warm != expected:
            raise SmokeFailure("session reads are not bit-identical")
        step(f"session path: read_many of {components} components in "
             f"{session_seconds:.3f}s "
             f"({session_seconds / components * 1000:.1f} ms each)")

        await carol.register_transform_key("alice")
        before = group.op_counts()["pairings"]
        started = time.perf_counter()
        outsourced = [await carol.read_outsourced(record_id, component_name)
                      for record_id, component_name in items]
        outsourced_seconds = time.perf_counter() - started
        client_pairings = group.op_counts()["pairings"] - before
        if outsourced != expected:
            raise SmokeFailure("outsourced reads are not bit-identical")
        if client_pairings != 0:
            raise SmokeFailure(
                f"outsourced reads cost {client_pairings} client-side "
                f"pairings (want 0 — the server should carry them all)"
            )
        step(f"outsourced path: {components} transformed reads in "
             f"{outsourced_seconds:.3f}s with 0 client-side pairings")

        counters = carol.connection.meter.counter_summary("decrypt.")
        step("client counters: " + ", ".join(
            f"{name}={count}" for name, count in sorted(counters.items())
        ))

        if report is not None:
            report.update({
                "components": components,
                "cold_seconds": cold_seconds,
                "session_seconds": session_seconds,
                "outsourced_seconds": outsourced_seconds,
                "client_pairings_outsourced": client_pairings,
                "counters": counters,
            })
    except SmokeFailure as exc:
        print(f"FAIL: {exc}", file=out, flush=True)
        return 1
    except (ReproError, OSError) as exc:
        print(f"FAIL: bench-decrypt cycle died with {exc!r}", file=out,
              flush=True)
        return 1
    finally:
        for client in clients:
            await client.close()
    print("bench-decrypt cycle passed", file=out, flush=True)
    return 0

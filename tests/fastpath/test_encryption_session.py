"""Behavior of :class:`repro.fastpath.session.EncryptionSession`."""

import pytest

from repro.errors import PolicyError, SchemeError

POLICY = "hospital:doctor AND trial:researcher"


class TestSessionOutput:
    def test_ciphertext_decrypts(self, fabric):
        session = fabric.owner.session_for(POLICY)
        message = fabric.scheme.random_message()
        ciphertext = session.encrypt(message)
        assert fabric.decrypt(ciphertext) == message

    def test_layout_identical_to_cold(self, fabric):
        message = fabric.scheme.random_message()
        cold = fabric.owner.encrypt(message, POLICY, ciphertext_id="ct-cold")
        session = fabric.owner.session_for(POLICY)
        fast = session.encrypt(message, ciphertext_id="ct-fast")
        cold_raw, fast_raw = cold.to_bytes(), fast.to_bytes()
        assert len(fast_raw) == len(cold_raw)
        # Byte-identical layout: header fields, row count, element sizes.
        assert fast.versions == cold.versions
        assert str(fast.matrix.policy) == str(cold.matrix.policy)
        assert len(fast.c_rows) == len(cold.c_rows)
        restored = type(fast).from_bytes(fabric.scheme.group, fast_raw)
        assert restored.c == fast.c
        assert restored.c_rows == fast.c_rows

    def test_ledger_entry_matches_cold_semantics(self, fabric):
        session = fabric.owner.session_for(POLICY)
        message = fabric.scheme.random_message()
        ciphertext = session.encrypt(message, ciphertext_id="ledgered")
        record = fabric.owner.record("ledgered")
        assert record.versions == dict(ciphertext.versions)
        # The recoverable KEM session element is C / blinding^s = message.
        assert ciphertext.c / fabric.owner.recover_session("ledgered") \
            == message

    def test_duplicate_ciphertext_id_rejected(self, fabric):
        session = fabric.owner.session_for(POLICY)
        session.encrypt(fabric.scheme.random_message(), ciphertext_id="dup")
        with pytest.raises(SchemeError):
            session.encrypt(
                fabric.scheme.random_message(), ciphertext_id="dup"
            )
        with pytest.raises(SchemeError):
            fabric.owner.encrypt(
                fabric.scheme.random_message(), POLICY, ciphertext_id="dup"
            )


class TestPool:
    def test_inline_fallback_counts_misses(self, fabric):
        session = fabric.owner.session_for(POLICY)
        session.encrypt(fabric.scheme.random_message())
        assert session.stats["pool_misses"] == 1

    def test_refill_feeds_online_phase(self, fabric):
        session = fabric.owner.session_for(POLICY)
        session.refill(3)
        messages = [fabric.scheme.random_message() for _ in range(3)]
        ciphertexts = [session.encrypt(message) for message in messages]
        assert session.stats == {"offline": 3, "online": 3, "pool_misses": 0}
        for message, ciphertext in zip(messages, ciphertexts):
            assert fabric.decrypt(ciphertext) == message

    def test_pooled_and_inline_bundles_agree(self):
        # Scalars are drawn by the session (seeded group RNG) in the
        # same order whether a bundle is pooled or built inline, so two
        # identically-seeded fabrics must emit identical ciphertexts.
        from tests.fastpath.conftest import Fabric

        pooled_fabric, inline_fabric = Fabric(424242), Fabric(424242)
        pooled_session = pooled_fabric.owner.session_for(POLICY)
        inline_session = inline_fabric.owner.session_for(POLICY)
        pooled_message = pooled_fabric.scheme.random_message()
        inline_message = inline_fabric.scheme.random_message()
        pooled_session.refill(1)
        pooled = pooled_session.encrypt(pooled_message, ciphertext_id="twin")
        inline = inline_session.encrypt(inline_message, ciphertext_id="twin")
        assert pooled_message == inline_message
        assert pooled.to_bytes() == inline.to_bytes()
        assert inline_session.stats["pool_misses"] == 1
        assert pooled_session.stats["pool_misses"] == 0


class TestCaching:
    def test_session_for_returns_cached(self, fabric):
        first = fabric.owner.session_for(POLICY)
        assert fabric.owner.session_for(POLICY) is first

    def test_canonicalized_policies_share_a_session(self, fabric):
        first = fabric.owner.session_for(POLICY)
        spaced = "hospital:doctor  AND  trial:researcher"
        assert fabric.owner.session_for(spaced) is first

    def test_facade_entry_point(self, fabric):
        session = fabric.scheme.encryption_session(fabric.owner, POLICY)
        assert session is fabric.owner.session_for(POLICY)


class TestValidation:
    def test_unknown_authority_rejected(self, fabric):
        with pytest.raises(SchemeError):
            fabric.owner.session_for("elsewhere:doctor")

    def test_non_injective_rho_rejected(self, fabric):
        with pytest.raises(PolicyError):
            fabric.owner.session_for(
                "2 of (hospital:doctor, hospital:nurse, trial:researcher)"
            )

    def test_threshold_via_insert_method(self, fabric):
        session = fabric.owner.session_for(
            "2 of (hospital:doctor, hospital:nurse, trial:researcher)",
            threshold_method="insert",
        )
        message = fabric.scheme.random_message()
        assert fabric.decrypt(session.encrypt(message)) == message

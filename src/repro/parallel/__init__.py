"""Process-pool execution engine for pairing-heavy bulk operations.

The paper's revocation story (Section V-C) makes the cloud server do the
heavy lifting: one attribute revocation re-encrypts *every* ciphertext
involving the authority. :mod:`repro.parallel` turns that from a
one-at-a-time loop into a batch engine:

* :class:`repro.parallel.pool.CryptoPool` — a thin
  ``ProcessPoolExecutor`` wrapper whose size-0 configuration runs
  inline (same code path, no processes), so callers write one code path
  and tests can pin determinism;
* :mod:`repro.parallel.batch` — batch ReEncrypt with amortized pairing:
  the Miller lines of each owner's fixed ``UK1`` are prepared once and
  replayed across all of that owner's ciphertexts, final
  exponentiations share one modular inversion, and wire-sourced update
  information is subgroup-checked in one batched combination.

Workers never receive pickled precomputation tables: a
:class:`repro.pairing.group.PairingGroup` pickles as its parameter
integers and is rebuilt (once, cached) per process.
"""

from repro.parallel.batch import ReencryptOutcome, reencrypt_batch
from repro.parallel.fanout import gather_bounded
from repro.parallel.pool import CryptoPool, chunked

__all__ = [
    "CryptoPool",
    "ReencryptOutcome",
    "chunked",
    "gather_bounded",
    "reencrypt_batch",
]

"""Property-based end-to-end tests: random policies, random attribute sets.

Hypothesis generates random AND/OR formulas over the attributes of two
authorities plus a random attribute subset for the user; the oracle is
plain boolean evaluation of the formula. Decryption must succeed exactly
when the formula evaluates true (given the user holds a key from every
involved authority — the scheme's structural requirement).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheme import MultiAuthorityABE
from repro.ec.params import TOY80
from repro.errors import PolicyNotSatisfiedError
from repro.policy.ast import And, Attribute, Or
from repro.policy.parser import parse

HOSPITAL_ATTRS = ["doctor", "nurse", "surgeon"]
TRIAL_ATTRS = ["researcher", "pi"]
UNIVERSE = [f"hospital:{a}" for a in HOSPITAL_ATTRS] + [
    f"trial:{a}" for a in TRIAL_ATTRS
]


def _policies():
    leaf = st.sampled_from(UNIVERSE).map(Attribute)

    def extend(children):
        pairs = st.lists(children, min_size=2, max_size=3)
        return st.one_of(pairs.map(And), pairs.map(Or))

    return st.recursive(leaf, extend, max_leaves=5)


@pytest.fixture(scope="module")
def world():
    scheme = MultiAuthorityABE(TOY80, seed=90210)
    hospital = scheme.setup_authority("hospital", HOSPITAL_ATTRS)
    trial = scheme.setup_authority("trial", TRIAL_ATTRS)
    owner = scheme.setup_owner("owner", [hospital, trial])
    counter = [0]

    def make_user(attribute_subset):
        counter[0] += 1
        uid = f"pu{counter[0]}"
        public = scheme.register_user(uid)
        hospital_held = [
            name.split(":")[1]
            for name in attribute_subset
            if name.startswith("hospital:")
        ]
        trial_held = [
            name.split(":")[1]
            for name in attribute_subset
            if name.startswith("trial:")
        ]
        keys = {}
        # Always take a key from both authorities so the structural
        # all-involved-authorities requirement never masks the policy
        # check; keys may cover zero *useful* attributes.
        keys["hospital"] = hospital.keygen(
            public, hospital_held or ["nurse"], "owner"
        )
        if not hospital_held:
            # strip the filler attribute so the held set is exact
            keys["hospital"] = type(keys["hospital"])(
                uid=keys["hospital"].uid,
                aid="hospital",
                owner_id="owner",
                k=keys["hospital"].k,
                attribute_keys={},
                version=keys["hospital"].version,
            )
        keys["trial"] = trial.keygen(public, trial_held or ["pi"], "owner")
        if not trial_held:
            keys["trial"] = type(keys["trial"])(
                uid=keys["trial"].uid,
                aid="trial",
                owner_id="owner",
                k=keys["trial"].k,
                attribute_keys={},
                version=keys["trial"].version,
            )
        return public, keys

    return scheme, owner, make_user


@settings(max_examples=20, deadline=None)
@given(policy=_policies(), membership=st.integers(0, 2 ** len(UNIVERSE) - 1))
def test_decryption_matches_boolean_oracle(world, policy, membership):
    scheme, owner, make_user = world
    held = {
        UNIVERSE[i] for i in range(len(UNIVERSE)) if membership >> i & 1
    }
    formula = parse(str(policy))
    message = scheme.random_message()
    ciphertext = owner.encrypt(
        message, policy, require_injective_rho=False
    )
    public, keys = make_user(held)
    if formula.evaluate(held):
        assert scheme.decrypt(ciphertext, public, keys) == message
    else:
        with pytest.raises(PolicyNotSatisfiedError):
            scheme.decrypt(ciphertext, public, keys)


@settings(max_examples=10, deadline=None)
@given(policy=_policies())
def test_full_attribute_set_always_decrypts(world, policy):
    scheme, owner, make_user = world
    message = scheme.random_message()
    ciphertext = owner.encrypt(message, policy, require_injective_rho=False)
    public, keys = make_user(set(UNIVERSE))
    assert scheme.decrypt(ciphertext, public, keys) == message


@settings(max_examples=10, deadline=None)
@given(policy=_policies())
def test_empty_attribute_set_never_decrypts(world, policy):
    scheme, owner, make_user = world
    ciphertext = owner.encrypt(
        scheme.random_message(), policy, require_injective_rho=False
    )
    public, keys = make_user(set())
    with pytest.raises(PolicyNotSatisfiedError):
        scheme.decrypt(ciphertext, public, keys)

"""Persistent blob / record store tests (satellite: store coverage).

Covers the ISSUE checklist explicitly: atomicity under interrupted
writes, LRU eviction bounds, re-opening an existing store directory,
and hash-mismatch detection on read.
"""

import hashlib
import os

import pytest

from repro.errors import StorageError
from repro.service.store import BlobStore, RecordStore
from repro.system.records import StoredRecord


# -- BlobStore basics ---------------------------------------------------------

def test_blob_put_get_roundtrip(tmp_path):
    store = BlobStore(tmp_path)
    digest = store.put(b"hello blob")
    assert digest == hashlib.sha256(b"hello blob").hexdigest()
    assert store.get(digest) == b"hello blob"
    assert store.contains(digest)


def test_blob_put_is_idempotent(tmp_path):
    store = BlobStore(tmp_path)
    assert store.put(b"same") == store.put(b"same")
    assert store.digests() == [hashlib.sha256(b"same").hexdigest()]


def test_blob_layout_is_sharded(tmp_path):
    store = BlobStore(tmp_path)
    digest = store.put(b"sharded")
    path = tmp_path / "objects" / digest[:2] / digest[2:4] / digest
    assert path.is_file()
    assert path.read_bytes() == b"sharded"


def test_blob_missing_digest_raises_storage_error(tmp_path):
    store = BlobStore(tmp_path)
    with pytest.raises(StorageError, match="no blob"):
        store.get("ab" * 32)


def test_blob_delete_then_get_fails(tmp_path):
    store = BlobStore(tmp_path)
    digest = store.put(b"ephemeral")
    store.delete(digest)
    assert not store.contains(digest)
    with pytest.raises(StorageError):
        store.get(digest)
    store.delete(digest)  # deleting twice is fine


# -- hash-mismatch detection --------------------------------------------------

def test_corrupted_blob_detected_on_read(tmp_path):
    store = BlobStore(tmp_path)
    digest = store.put(b"pristine bytes")
    path = tmp_path / "objects" / digest[:2] / digest[2:4] / digest
    path.write_bytes(b"tampered bytes")
    # A fresh instance bypasses the warm LRU cache and must hit disk.
    reopened = BlobStore(tmp_path)
    with pytest.raises(StorageError, match="corrupted"):
        reopened.get(digest)


def test_cached_read_masks_then_fresh_read_detects(tmp_path):
    store = BlobStore(tmp_path)
    digest = store.put(b"cached")
    path = tmp_path / "objects" / digest[:2] / digest[2:4] / digest
    path.write_bytes(b"mangled")
    # Warm cache still serves the original bytes...
    assert store.get(digest) == b"cached"
    # ...but once evicted, the corruption surfaces.
    store._cache_drop(digest)
    with pytest.raises(StorageError, match="corrupted"):
        store.get(digest)


# -- atomicity under interrupted writes ---------------------------------------

def test_interrupted_write_leaves_no_partial_object(tmp_path, monkeypatch):
    store = BlobStore(tmp_path)

    def exploding_replace(src, dst):
        raise OSError("disk pulled mid-rename")

    monkeypatch.setattr(os, "replace", exploding_replace)
    with pytest.raises(OSError):
        store.put(b"never lands")
    monkeypatch.undo()
    digest = hashlib.sha256(b"never lands").hexdigest()
    # No object under the valid name, no tmp litter, and a clean retry
    # (the failed put cached the blob, so force a disk check).
    assert not (tmp_path / "objects" / digest[:2] / digest[2:4]
                / digest).exists()
    assert list((tmp_path / "tmp").iterdir()) == []
    fresh = BlobStore(tmp_path)
    assert not fresh.contains(digest)
    assert fresh.put(b"never lands") == digest
    assert fresh.get(digest) == b"never lands"


def test_leftover_tmp_files_swept_on_open(tmp_path):
    store = BlobStore(tmp_path)
    stray = tmp_path / "tmp" / "orphan-from-a-crash"
    stray.write_bytes(b"half a blob")
    reopened = BlobStore(tmp_path)
    assert not stray.exists()
    assert reopened.digests() == store.digests() == []


# -- LRU bounds ---------------------------------------------------------------

def test_lru_entry_bound(tmp_path):
    store = BlobStore(tmp_path, cache_entries=3)
    digests = [store.put(bytes([i]) * 8) for i in range(6)]
    stats = store.cache_stats()
    assert stats["entries"] == 3
    assert stats["bytes"] == 3 * 8
    # Least-recently-used blobs were evicted; newest survive.
    assert set(store._cache) == set(digests[3:])


def test_lru_byte_bound(tmp_path):
    store = BlobStore(tmp_path, cache_entries=100, cache_bytes=25)
    for i in range(5):
        store.put(bytes([i]) * 10)
    stats = store.cache_stats()
    assert stats["bytes"] <= 25
    assert stats["entries"] == 2


def test_blob_larger_than_cache_is_never_cached(tmp_path):
    store = BlobStore(tmp_path, cache_bytes=4)
    digest = store.put(b"way too large")
    stats = store.cache_stats()
    assert stats["entries"] == 0
    assert stats["bytes"] == 0
    assert store.get(digest) == b"way too large"


def test_lru_recency_order(tmp_path):
    store = BlobStore(tmp_path, cache_entries=2)
    a = store.put(b"aaaa")
    b = store.put(b"bbbb")
    store.get(a)          # refresh a; b is now the eviction victim
    c = store.put(b"cccc")
    assert set(store._cache) == {a, c}
    assert b not in store._cache


def test_cache_hit_miss_eviction_counters(tmp_path):
    store = BlobStore(tmp_path, cache_entries=2)
    a = store.put(b"aaaa")
    b = store.put(b"bbbb")
    store.get(a)                       # hit (put() pre-warms the cache)
    c = store.put(b"cccc")             # evicts b
    store.get(b)                       # miss: read from disk, re-cached
    store.get(c)                       # hit
    stats = store.cache_stats()
    assert stats["hits"] == 2
    assert stats["misses"] == 1
    assert stats["evictions"] >= 1
    assert stats["capacity_entries"] == 2


def test_cache_counters_flow_into_attached_meter(tmp_path, group):
    from repro.system.meter import Meter

    store = BlobStore(tmp_path, cache_entries=1)
    meter = Meter(group)
    store.attach_meter(meter)
    a = store.put(b"aaaa")
    store.put(b"bbbb")                 # evicts a
    store.get(a)                       # miss
    store.get(a)                       # hit (re-cached by the miss)
    counters = meter.counter_summary("store.")
    assert counters.get("store.cache.hit") == 1
    assert counters.get("store.cache.miss") == 1
    assert counters.get("store.cache.eviction", 0) >= 1


# -- RecordStore --------------------------------------------------------------

def test_record_roundtrip(group, scenario, store_root):
    store = RecordStore(store_root, group)
    record = scenario.make_record("patient/1")
    store.put(record)
    assert "patient/1" in store
    assert len(store) == 1
    loaded = store.get("patient/1")
    assert loaded.to_bytes() == record.to_bytes()
    assert store.record_ids() == ["patient/1"]


def test_duplicate_put_requires_replace(group, scenario, store_root):
    store = RecordStore(store_root, group)
    record = scenario.make_record("r")
    store.put(record)
    with pytest.raises(StorageError, match="already exists"):
        store.put(record)
    store.put(record, replace=True)
    assert len(store) == 1


def test_missing_record_raises_storage_error(group, store_root):
    store = RecordStore(store_root, group)
    with pytest.raises(StorageError, match="no record"):
        store.get("ghost")
    with pytest.raises(StorageError, match="no record"):
        store.delete("ghost")


def test_delete_collects_unreferenced_blob(group, scenario, store_root):
    store = RecordStore(store_root, group)
    digest = store.put(scenario.make_record("r"))
    store.delete("r")
    assert len(store) == 0
    assert not store.blobs.contains(digest)
    assert store.ciphertext_ids() == frozenset()


def test_replace_component_repoints_and_collects(group, scenario, store_root):
    store = RecordStore(store_root, group)
    record = scenario.make_record("r")
    old_digest = store.put(record)
    # A replacement component with the same name but a fresh ciphertext
    # (the owner ledger forbids reusing a ciphertext id).
    other = scenario.make_record("r-v2").components["note"]
    updated = store.replace_component("r", other)
    assert updated.components["note"].data_ciphertext == other.data_ciphertext
    assert not store.blobs.contains(old_digest)
    assert store.get("r").to_bytes() == updated.to_bytes()


def test_reopen_rebuilds_indexes(group, scenario, store_root):
    store = RecordStore(store_root, group)
    record = scenario.make_record("reopened/record")
    store.put(record)
    store.put_authority_keys("hospital", b"key-blob")

    reopened = RecordStore(store_root, group)
    assert reopened.record_ids() == ["reopened/record"]
    assert reopened.get("reopened/record").to_bytes() == record.to_bytes()
    assert reopened.locate_ciphertext("reopened/record/note") == (
        "reopened/record", "note"
    )
    assert reopened.get_authority_keys("hospital") == b"key-blob"
    assert reopened.authority_ids() == ["hospital"]


def test_locate_unknown_ciphertext(group, store_root):
    store = RecordStore(store_root, group)
    with pytest.raises(StorageError, match="no ciphertext"):
        store.locate_ciphertext("nope")


def test_missing_authority_keys(group, store_root):
    store = RecordStore(store_root, group)
    with pytest.raises(StorageError, match="no published keys"):
        store.get_authority_keys("nowhere")


def test_record_ids_with_awkward_names(group, scenario, store_root):
    """Ref filenames are percent-quoted, so ids can hold separators."""
    store = RecordStore(store_root, group)
    rid = "dir/../weird name?%41"
    store.put(scenario.make_record(rid))
    assert RecordStore(store_root, group).record_ids() == [rid]


def test_storage_bytes_counts_payload(group, scenario, store_root):
    store = RecordStore(store_root, group)
    record = scenario.make_record("r")
    store.put(record)
    assert store.storage_bytes() == record.payload_size_bytes(group)


# -- replace/gc interleavings & crash-recovery audit (satellite) ---------------

def test_gc_never_collects_referenced_blobs(group, scenario, store_root):
    """An interleaved replace + gc only reclaims true orphans."""
    store = RecordStore(store_root, group)
    keep = store.put(scenario.make_record("keep"))
    old = store.put(scenario.make_record("mutating"))
    replacement = scenario.make_record("mutating-v2").components["note"]
    new = store.put(
        store.get("mutating").with_component(replacement), replace=True
    )
    orphan = store.blobs.put(b"stray bytes no ref points at")
    assert store.gc() == sorted({orphan})
    # Every referenced blob survived the sweep.
    for digest in (keep, new):
        assert store.blobs.contains(digest)
    assert not store.blobs.contains(old)      # collected by the replace
    assert store.get("keep") and store.get("mutating")
    assert store.check()["ok"]


def test_replace_with_identical_bytes_keeps_the_blob(group, scenario,
                                                     store_root):
    store = RecordStore(store_root, group)
    record = scenario.make_record("r")
    digest = store.put(record)
    assert store.put(record, replace=True) == digest
    assert store.blobs.contains(digest)
    assert store.get("r").to_bytes() == record.to_bytes()
    assert store.check()["ok"]


def test_check_flags_orphans_and_gc_clears_them(group, scenario, store_root):
    store = RecordStore(store_root, group)
    store.put(scenario.make_record("r"))
    orphan = store.blobs.put(b"left behind by a crash")
    report = store.check()
    assert not report["ok"]
    assert report["orphan_blobs"] == [orphan]
    assert not report["missing_blobs"] and not report["index_mismatches"]
    assert store.gc() == [orphan]
    assert store.check()["ok"]


def test_check_flags_missing_and_corrupt_blobs(group, scenario, store_root):
    store = RecordStore(store_root, group)
    gone = store.put(scenario.make_record("gone"))
    bad = store.put(scenario.make_record("bad"))
    store.blobs._path(gone).unlink()
    store.blobs._path(bad).write_bytes(b"scrambled")
    store.blobs._cache.clear()
    store.blobs._cache_total = 0
    report = store.check()
    assert report["missing_blobs"] == ["gone"]
    assert report["corrupt_blobs"] == ["bad"]
    assert not report["ok"]


def test_failed_replace_leaves_old_record_readable(group, scenario,
                                                   store_root, monkeypatch):
    """A write failure between blob write and ref repoint is invisible
    to readers: the ref still resolves to the old record, and the only
    residue is an orphaned new blob."""
    from repro.service import store as store_mod

    store = RecordStore(store_root, group)
    record = scenario.make_record("r")
    store.put(record)
    replacement = scenario.make_record("r-v2").components["note"]

    real_write = store_mod._atomic_write

    def failing_ref_write(directory, path, data):
        if path.parent.name == "refs":
            raise OSError("disk died mid-repoint")
        real_write(directory, path, data)

    monkeypatch.setattr(store_mod, "_atomic_write", failing_ref_write)
    with pytest.raises(OSError):
        store.replace_component("r", replacement)
    monkeypatch.undo()

    reopened = RecordStore(store_root, group)
    assert reopened.get("r").to_bytes() == record.to_bytes()
    assert reopened.locate_ciphertext("r/note") == ("r", "note")
    report = reopened.check()
    assert len(report["orphan_blobs"]) == 1
    assert not report["missing_blobs"] and not report["index_mismatches"]
    assert reopened.gc() == report["orphan_blobs"]
    assert reopened.check()["ok"]
    assert reopened.get("r").to_bytes() == record.to_bytes()


# -- digest probes & repair writes (the cluster's building blocks) ------------

def corrupt_on_disk(store, record_id):
    digest = store.digest(record_id)
    path = store.blobs._path(digest)
    path.write_bytes(b"bit rot" + path.read_bytes()[7:])
    store.blobs._cache_drop(digest)
    return digest


def test_digest_and_verify_record(group, scenario, store_root):
    store = RecordStore(store_root, group)
    digest = store.put(scenario.make_record("r"))
    assert store.digest("r") == digest
    assert store.verify_record("r")
    corrupt_on_disk(store, "r")
    assert not store.verify_record("r")
    with pytest.raises(StorageError):
        store.digest("ghost")
    with pytest.raises(StorageError):
        store.verify_record("ghost")


def test_put_record_bytes_repairs_a_corrupt_replica(group, scenario,
                                                    store_root):
    healthy = RecordStore(store_root / "healthy", group)
    damaged = RecordStore(store_root / "damaged", group)
    record = scenario.make_record("r")
    digest = healthy.put(record)
    damaged.put(record)
    corrupt_on_disk(damaged, "r")
    assert not damaged.verify_record("r")

    blob = healthy.get_record_bytes("r")
    # Byte-preserving: the repaired replica lands digest-identical.
    assert damaged.put_record_bytes("r", blob) == digest
    assert damaged.verify_record("r")
    assert damaged.get("r").to_bytes() == blob
    assert damaged.locate_ciphertext("r/note") == ("r", "note")


def test_put_record_bytes_fills_a_missing_replica(group, scenario,
                                                  store_root):
    source = RecordStore(store_root / "a", group)
    target = RecordStore(store_root / "b", group)
    source.put(scenario.make_record("r"))
    target.put_record_bytes("r", source.get_record_bytes("r"))
    assert target.digest("r") == source.digest("r")
    assert target.verify_record("r")


def test_put_record_bytes_rejects_wrong_record_and_garbage(group, scenario,
                                                           store_root):
    store = RecordStore(store_root, group)
    record = scenario.make_record("r")
    store.put(record)
    with pytest.raises(StorageError):
        store.put_record_bytes("r", scenario.make_record("liar").to_bytes())
    with pytest.raises(StorageError):
        store.put_record_bytes("r", b"not a record at all")
    assert store.get("r").to_bytes() == record.to_bytes()

"""Sharded multi-node storage fabric for the paper's cloud-server role.

The paper's server is a single honest-but-curious storage point; this
package scales that role horizontally without changing its trust story.
N independent :class:`repro.service.StorageService` nodes — none
cluster-aware, none holding any key material — are tied together
entirely client-side:

* :mod:`repro.cluster.ring` — deterministic consistent hashing: any
  client with the same topology computes the same placement, so
  placement never crosses the wire;
* :mod:`repro.cluster.topology` — the :class:`ClusterMap` (named
  nodes, replication factor R, write quorum W, ring parameters);
* :mod:`repro.cluster.client` — :class:`ClusterClient` and the role
  wrappers: quorum-acked replicated writes (idempotent per node),
  failover reads with digest-verified read-repair, fleet health/stats,
  and a primary-wins scrub;
* :mod:`repro.cluster.sweep` — :func:`sweep_cluster`, the fleet-wide
  Section V-C revocation: one epoch, every shard, byte-identical
  replicas, stateless partial-failure resume;
* :mod:`repro.cluster.smoke` — the self-contained acceptance cycle
  behind ``repro cluster smoke``.
"""

from repro.cluster.client import (
    ClusterAuthority,
    ClusterClient,
    ClusterOwner,
    ClusterUser,
)
from repro.cluster.ring import HashRing
from repro.cluster.smoke import run_cluster_smoke
from repro.cluster.sweep import sweep_cluster
from repro.cluster.topology import ClusterMap, ClusterNode, parse_node_spec

__all__ = [
    "ClusterAuthority",
    "ClusterClient",
    "ClusterMap",
    "ClusterNode",
    "ClusterOwner",
    "ClusterUser",
    "HashRing",
    "parse_node_spec",
    "run_cluster_smoke",
    "sweep_cluster",
]

"""Bethencourt-Sahai-Waters CP-ABE (IEEE S&P 2007) — single authority.

The classic single-authority scheme the paper's related work starts
from ([2] in its bibliography). Included for two reasons: it is the
reference point that motivates the multi-authority problem (one
authority must manage *all* attributes and can decrypt everything), and
it is the substrate of the Hur-Noh revocation baseline
(:mod:`repro.baselines.hur`).

Construction (symmetric pairing, access *trees* with native threshold
gates, ``H : attribute → G`` in the random-oracle model):

* Setup: ``α, β ← Z_r``; PK = ``(h = g^β, e(g,g)^α)``; MK = ``(β, g^α)``.
* KeyGen(S): ``t ← Z_r``; ``D = g^{(α+t)/β}``; per attribute ``j``:
  ``t_j ← Z_r``, ``D_j = g^t · H(j)^{t_j}``, ``D'_j = g^{t_j}``.
* Encrypt(M, tree): ``s ← Z_r``; ``C̃ = M·e(g,g)^{αs}``, ``C = h^s``;
  Shamir-share ``s`` down the tree; per leaf ``y`` with share ``q_y``:
  ``C_y = g^{q_y}``, ``C'_y = H(att(y))^{q_y}``.
* Decrypt: per usable leaf ``e(D_j, C_y)/e(D'_j, C'_y) = e(g,g)^{t·q_y}``;
  Lagrange-combine to ``A = e(g,g)^{ts}``; recover
  ``M = C̃ · A / e(C, D)``.

Keys are randomized by the per-user ``t``, which is what prevents
collusion in the single-authority setting — and exactly the mechanism
that "cannot be applied" across authorities, motivating the paper's
UID-based alternative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchemeError
from repro.math.integers import invmod
from repro.pairing.group import G1Element, GTElement, PairingGroup
from repro.policy.access_tree import (
    build_tree,
    reconstruction_coefficients,
    share_secret,
    tree_satisfied,
)


@dataclass(frozen=True)
class BswPublicKey:
    h: G1Element          # g^β
    e_gg_alpha: GTElement  # e(g,g)^α


@dataclass(frozen=True)
class BswMasterKey:
    beta: int
    g_alpha: G1Element    # g^α


@dataclass(frozen=True)
class BswUserKey:
    d: G1Element          # g^{(α+t)/β}
    components: dict      # attribute -> (D_j, D'_j)

    @property
    def attributes(self) -> frozenset:
        return frozenset(self.components)


@dataclass(frozen=True)
class BswCiphertext:
    c_tilde: GTElement    # M · e(g,g)^{αs}
    c: G1Element          # h^s
    leaves: tuple         # per tree leaf: (attribute, C_y, C'_y)
    policy: str

    @property
    def n_leaves(self) -> int:
        return len(self.leaves)


class BswScheme:
    """One BSW deployment: setup once, then keygen/encrypt/decrypt."""

    def __init__(self, group: PairingGroup):
        self.group = group
        alpha = group.random_scalar()
        beta = group.random_scalar()
        self.public_key = BswPublicKey(
            h=group.g ** beta, e_gg_alpha=group.gt ** alpha
        )
        self._master = BswMasterKey(beta=beta, g_alpha=group.g ** alpha)

    def _hash_attribute(self, attribute: str) -> G1Element:
        return self.group.hash_to_g1(attribute, domain=b"repro.bsw.attr")

    def keygen(self, attributes) -> BswUserKey:
        """Issue a secret key for an attribute set (fresh user randomness t)."""
        group = self.group
        order = group.order
        t = group.random_scalar()
        inv_beta = invmod(self._master.beta, order)
        d = (self._master.g_alpha * (group.g ** t)) ** inv_beta
        components = {}
        for attribute in set(attributes):
            t_j = group.random_scalar()
            components[attribute] = (
                (group.g ** t) * (self._hash_attribute(attribute) ** t_j),
                group.g ** t_j,
            )
        if not components:
            raise SchemeError("BSW keys need at least one attribute")
        return BswUserKey(d=d, components=components)

    def encrypt(self, message: GTElement, policy) -> BswCiphertext:
        """Encrypt a GT message under an access tree (thresholds native)."""
        group = self.group
        root, tree_leaves = build_tree(policy)
        s = group.random_scalar()
        shares = share_secret(root, s, group.order, group.rng)
        leaves = []
        for leaf in tree_leaves:
            share = shares[leaf.index]
            leaves.append(
                (
                    leaf.attribute,
                    group.g ** share,
                    self._hash_attribute(leaf.attribute) ** share,
                )
            )
        return BswCiphertext(
            c_tilde=message * (self.public_key.e_gg_alpha ** s),
            c=self.public_key.h ** s,
            leaves=tuple(leaves),
            policy=str(policy),
        )

    def decrypt(self, ciphertext: BswCiphertext, key: BswUserKey) -> GTElement:
        """Recover the message; raises PolicyNotSatisfiedError if blocked."""
        group = self.group
        root, _ = build_tree(ciphertext.policy)
        coefficients = reconstruction_coefficients(
            root, key.attributes, group.order
        )
        accumulator = group.identity_gt()
        for index, coefficient in coefficients.items():
            attribute, c_y, c_y_prime = ciphertext.leaves[index]
            d_j, d_j_prime = key.components[attribute]
            term = group.pair(d_j, c_y) / group.pair(d_j_prime, c_y_prime)
            accumulator = accumulator * (term ** coefficient)
        return (
            ciphertext.c_tilde
            * accumulator
            / group.pair(ciphertext.c, key.d)
        )

    def satisfies(self, ciphertext: BswCiphertext, key: BswUserKey) -> bool:
        root, _ = build_tree(ciphertext.policy)
        return tree_satisfied(root, key.attributes)
